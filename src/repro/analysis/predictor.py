"""Loss-predictor evaluation: the methodology behind Figure 18.

Section 4.4 evaluates the Average Loss Interval estimator by "its ability to
predict the immediate future loss rate": for each loss event in a trace of
loss intervals, a predictor computes the estimated loss rate from the
preceding ``history`` intervals and is scored against the realized next
interval.  The paper compares history sizes (2..32 intervals) and constant
vs decreasing weights.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.loss_intervals import ali_weights


def weighted_interval_predictor(
    intervals: Sequence[float], weights: Sequence[float]
) -> float:
    """Predicted loss rate = 1 / weighted average of recent intervals.

    ``intervals`` are newest-first; only ``len(weights)`` newest are used.
    """
    if not intervals:
        raise ValueError("need at least one interval")
    total = 0.0
    total_weight = 0.0
    for value, weight in zip(intervals, weights):
        total += weight * value
        total_weight += weight
    if total_weight == 0 or total == 0:
        return 0.0
    return total_weight / total  # 1 / weighted mean


def make_weights(history: int, decreasing: bool) -> List[float]:
    """Constant weights, or the paper's decreasing-weight profile.

    For odd/other sizes the decreasing profile generalizes the section 3.3
    rule: full weight on the newest half, linear decay on the older half.
    """
    if history < 1:
        raise ValueError("history must be >= 1")
    if not decreasing:
        return [1.0] * history
    if history == 1:
        return [1.0]
    if history % 2 == 0:
        return ali_weights(history)
    # Generalize to odd sizes: newest ceil(h/2) get 1.0, rest decay linearly.
    half = (history + 1) // 2
    weights = [1.0] * half
    tail = history - half
    weights.extend(1.0 - (i + 1) / (tail + 1.0) for i in range(tail))
    return weights


def predictor_errors(
    loss_intervals: Sequence[float],
    history: int,
    decreasing: bool,
) -> Tuple[float, float]:
    """Average prediction error and its std-dev over a loss-interval trace.

    For each position i (with at least ``history`` predecessors), predict the
    loss rate from intervals [i-history, i) and compare with the realized
    rate 1/interval_i.  Returns (mean absolute error, std of error).
    """
    if history < 1:
        raise ValueError("history must be >= 1")
    intervals = [float(v) for v in loss_intervals]
    if len(intervals) <= history:
        raise ValueError(
            f"trace of {len(intervals)} intervals too short for history {history}"
        )
    weights = make_weights(history, decreasing)
    errors = []
    for i in range(history, len(intervals)):
        recent_newest_first = intervals[i - 1 :: -1][:history]
        predicted = weighted_interval_predictor(recent_newest_first, weights)
        actual = 1.0 / max(intervals[i], 1.0)
        errors.append(abs(predicted - actual))
    errs = np.asarray(errors)
    return float(errs.mean()), float(errs.std())
