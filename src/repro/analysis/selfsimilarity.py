"""Self-similarity diagnostics for traffic aggregates.

The paper's ON/OFF background traffic is built on the Willinger et al.
(1995) result that superposed heavy-tailed ON/OFF sources produce
self-similar aggregate traffic.  This module provides the classical
**variance-time** estimator of the Hurst parameter so the traffic substrate
can be *verified* to have the property the paper relies on:

for a self-similar process, the variance of the m-aggregated series decays
as ``Var(X^(m)) ~ m^(2H - 2)``; H = 0.5 for short-range-dependent traffic
(e.g. Poisson), and 0.5 < H < 1 for the self-similar traffic that the
Pareto ON/OFF construction yields (H = (3 - alpha) / 2 for ON/OFF shape
alpha, i.e. H = 0.75 at the customary alpha = 1.5).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def aggregate_series(series: Sequence[float], m: int) -> np.ndarray:
    """Non-overlapping block means of size m (the m-aggregated process)."""
    if m < 1:
        raise ValueError("aggregation level must be >= 1")
    values = np.asarray(series, dtype=float)
    blocks = len(values) // m
    if blocks < 1:
        raise ValueError(f"series of {len(values)} too short for m={m}")
    return values[: blocks * m].reshape(blocks, m).mean(axis=1)


def variance_time_points(
    series: Sequence[float], levels: Sequence[int]
) -> List[Tuple[int, float]]:
    """(m, Var(X^(m))) pairs for the variance-time plot."""
    out = []
    for m in levels:
        aggregated = aggregate_series(series, m)
        if len(aggregated) < 2:
            continue
        out.append((m, float(aggregated.var())))
    if len(out) < 2:
        raise ValueError("need at least two usable aggregation levels")
    return out


def hurst_variance_time(
    series: Sequence[float], levels: Sequence[int] = (1, 2, 4, 8, 16, 32, 64)
) -> float:
    """Hurst parameter estimate from the variance-time slope.

    Fits ``log Var(X^(m)) = beta * log m + c``; ``H = 1 + beta / 2``.
    Returns a value clipped into [0, 1] (estimator noise can stray outside).
    """
    points = variance_time_points(series, levels)
    ms = np.log([m for m, _ in points])
    variances = np.log([max(v, 1e-30) for _, v in points])
    beta = float(np.polyfit(ms, variances, 1)[0])
    hurst = 1.0 + beta / 2.0
    return float(min(1.0, max(0.0, hurst)))


def expected_hurst_for_pareto(shape: float) -> float:
    """Taqqu's formula for ON/OFF sources: H = (3 - alpha) / 2 (1 < a < 2)."""
    if not 1.0 < shape < 2.0:
        raise ValueError("formula holds for tail index in (1, 2)")
    return (3.0 - shape) / 2.0
