"""Cache-contract rules (``cache.*``).

Cache entries, queue payloads, and spec hashes all flow through strict
canonical JSON: ``allow_nan=False``, sorted keys (see
:meth:`repro.scenarios.spec.ScenarioSpec.canonical_json` and
:func:`repro.scenarios.cache.payload_checksum`).  Two things break that
contract silently:

* a scenario result function producing ``NaN``/``Infinity`` -- the cache
  rejects the entry at write time, failing the cell long after the bug;
* a ``json.dump(s)`` call *without* ``allow_nan=False`` -- it happily
  emits ``NaN`` tokens that strict parsers (and the cache's checksum
  canonicalization) reject, so the same value hashes on one path and
  crashes on another.

These rules catch both at audit time instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.audit.engine import (
    AuditConfig,
    Rule,
    SourceFile,
    file_checker,
)
from repro.analysis.audit.records import AuditRecord

RULE_NON_FINITE = Rule(
    id="cache.non-finite-literal",
    summary="NaN/Infinity-capable literal inside a registered scenario",
    hint="scenario results must be strict JSON; clamp or drop the "
    "non-finite value before it reaches the result dict",
)
RULE_LENIENT_DUMP = Rule(
    id="cache.lenient-json-dump",
    summary="json.dump(s) without allow_nan=False",
    hint="pass allow_nan=False so NaN/Infinity fail at the producer "
    "instead of poisoning strict parsers downstream",
)

#: canonical names whose value is non-finite.
_NON_FINITE_NAMES = frozenset(
    {
        "math.nan",
        "math.inf",
        "numpy.nan",
        "numpy.inf",
        "numpy.NaN",
        "numpy.Inf",
        "numpy.NINF",
    }
)

_NON_FINITE_STRINGS = frozenset(
    {"nan", "inf", "infinity", "-inf", "-infinity", "+inf", "+infinity"}
)


def _in_registered_scenario(source: SourceFile, node: ast.AST) -> Optional[str]:
    """The scenario name when ``node`` sits inside a ``@register_scenario``
    function, else None."""
    func = source.enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    while func is not None:
        for decorator in func.decorator_list:  # type: ignore[union-attr]
            if not isinstance(decorator, ast.Call):
                continue
            name = source.qualname(decorator.func)
            bare = (
                decorator.func.id
                if isinstance(decorator.func, ast.Name)
                else None
            )
            if bare == "register_scenario" or (
                name is not None and name.endswith(".register_scenario")
            ):
                return func.name  # type: ignore[union-attr]
        func = source.enclosing(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return None


@file_checker(RULE_NON_FINITE, RULE_LENIENT_DUMP)
def check_cache_contract(
    source: SourceFile, config: AuditConfig
) -> Iterator[AuditRecord]:
    if not source.rel_path.startswith(config.src_prefix):
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            yield from _check_non_finite_call(source, node)
            yield from _check_lenient_dump(source, node)
        elif isinstance(node, (ast.Name, ast.Attribute)):
            qual = source.qualname(node)
            if qual in _NON_FINITE_NAMES:
                scenario_fn = _in_registered_scenario(source, node)
                if scenario_fn is not None:
                    yield _non_finite(source, node, f"{qual} used in "
                                      f"registered scenario {scenario_fn}()")


def _non_finite(source: SourceFile, node: ast.AST, detail: str) -> AuditRecord:
    return AuditRecord(
        rule=RULE_NON_FINITE.id,
        path=source.rel_path,
        line=getattr(node, "lineno", 0),
        severity=RULE_NON_FINITE.severity,
        detail=detail,
        hint=RULE_NON_FINITE.hint,
    )


def _check_non_finite_call(
    source: SourceFile, call: ast.Call
) -> Iterator[AuditRecord]:
    """``float("nan")`` / ``float("inf")`` inside a registered scenario."""
    if not (
        isinstance(call.func, ast.Name)
        and call.func.id == "float"
        and len(call.args) == 1
        and isinstance(call.args[0], ast.Constant)
        and isinstance(call.args[0].value, str)
        and call.args[0].value.strip().lower() in _NON_FINITE_STRINGS
    ):
        return
    scenario_fn = _in_registered_scenario(source, call)
    if scenario_fn is not None:
        yield _non_finite(
            source, call,
            f'float("{call.args[0].value}") used in registered scenario '
            f"{scenario_fn}()",
        )


def _check_lenient_dump(
    source: SourceFile, call: ast.Call
) -> Iterator[AuditRecord]:
    name = source.call_qualname(call)
    if name not in ("json.dump", "json.dumps"):
        return
    for keyword in call.keywords:
        if keyword.arg == "allow_nan":
            value = keyword.value
            if isinstance(value, ast.Constant) and value.value is False:
                return
            break
        if keyword.arg is None:
            return  # **kwargs: cannot see the flag statically
    else:
        value = None
    detail = (
        f"{name}(...) without allow_nan=False"
        if value is None
        else f"{name}(...) with allow_nan not literally False"
    )
    yield AuditRecord(
        rule=RULE_LENIENT_DUMP.id,
        path=source.rel_path,
        line=call.lineno,
        severity=RULE_LENIENT_DUMP.severity,
        detail=detail,
        hint=RULE_LENIENT_DUMP.hint,
    )
