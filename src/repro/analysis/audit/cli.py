"""``tfrc-audit``: the static-analysis entry point.

Usage::

    tfrc-audit [--root DIR] [--json] [--baseline PATH]
               [--check-baseline] [--update-baseline] [--list-rules]

Exit codes: 0 = clean (every finding baselined-with-justification),
1 = new findings (or, with ``--check-baseline``, an unjustified baseline
entry), 2 = configuration problems (bad root, malformed baseline).

``--json`` emits the findings-record schema shared with
``tfrc-sweep-fsck --json`` (see :mod:`repro.analysis.audit.records`), so
one consumer parses both CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.audit import baseline as baseline_mod
from repro.analysis.audit.engine import all_rules, run_audit
from repro.analysis.audit.records import AuditRecord

DEFAULT_BASELINE = "audit_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tfrc-audit",
        description="AST-based invariant analyzer for the repro tree "
        "(determinism, fs-commit protocol, cache contract, registry "
        "coherence, test-tier hygiene).",
    )
    parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="repository root to audit (default: current directory)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON (schema shared with tfrc-sweep-fsck)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="also fail on baseline entries without a justification "
        "(the CI gate mode)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to the current findings, preserving "
        "existing justifications; new entries need one written by hand",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every registered rule and exit",
    )
    return parser


def _print_rules(out) -> None:
    for rule in all_rules():
        print(f"{rule.id:36s} {rule.severity:8s} {rule.summary}", file=out)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        _print_rules(out)
        return 0

    root = Path(args.root).resolve()
    if not (root / "src" / "repro").is_dir():
        print(
            f"tfrc-audit: {root} has no src/repro tree (wrong --root?)",
            file=sys.stderr,
        )
        return 2

    findings = run_audit(root)

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    try:
        entries = baseline_mod.load_baseline(baseline_path)
    except baseline_mod.BaselineError as exc:
        print(f"tfrc-audit: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        count = baseline_mod.write_baseline(baseline_path, findings, entries)
        blank = len(baseline_mod.unjustified(
            baseline_mod.load_baseline(baseline_path)
        ))
        print(
            f"tfrc-audit: wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
            f"to {baseline_path}"
            + (f" ({blank} still need a justification)" if blank else ""),
            file=out,
        )
        return 0

    new, baselined, stale = baseline_mod.apply_baseline(findings, entries)
    unjustified = baseline_mod.unjustified(entries) if args.check_baseline else []

    if args.as_json:
        document = {
            "tool": "tfrc-audit",
            "root": str(root),
            "findings": [record.to_dict() for record in new],
            "baselined": baselined,
            "stale_baseline": stale,
            "unjustified_baseline": unjustified,
        }
        json.dump(document, out, indent=2, sort_keys=True, allow_nan=False)
        out.write("\n")
    else:
        for record in new:
            print(record.render(), file=out)
        summary = (
            f"tfrc-audit: {len(new)} finding(s)"
            + (f", {baselined} baselined" if baselined else "")
            + (f", {len(stale)} stale baseline entr"
               f"{'y' if len(stale) == 1 else 'ies'}" if stale else "")
        )
        print(summary, file=out)
        for fp in stale:
            entry = entries[fp]
            print(
                f"  stale baseline entry {fp} "
                f"({entry.get('rule')} at {entry.get('path')}): finding is "
                "gone; run --update-baseline",
                file=out,
            )
        for fp in unjustified:
            entry = entries[fp]
            print(
                f"  baseline entry {fp} ({entry.get('rule')} at "
                f"{entry.get('path')}) has no justification -- write one "
                "in the baseline file",
                file=out,
            )

    if new or unjustified:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
