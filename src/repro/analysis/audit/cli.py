"""``tfrc-audit``: the static-analysis entry point.

Usage::

    tfrc-audit [--root DIR] [--json] [--baseline PATH]
               [--check-baseline] [--update-baseline]
               [--paths FILE ...] [--annotations]
               [--list-rules | --rules-markdown]

Exit codes: 0 = clean (every finding baselined-with-justification),
1 = new findings (or, with ``--check-baseline``, an unjustified baseline
entry), 2 = configuration problems (bad root, malformed baseline,
incompatible flags).

``--json`` emits the findings-record schema shared with
``tfrc-sweep-fsck --json`` (see :mod:`repro.analysis.audit.records`), so
one consumer parses both CI artifacts.  ``--paths`` restricts per-file
checkers to the listed files for sub-second pre-commit runs (project-wide
checkers still scan the whole tree; baseline/allowlist staleness is not
judged from a partial run).  ``--annotations`` renders findings as
GitHub Actions workflow commands (``::error file=...,line=...``) so they
surface inline on PRs.  ``--rules-markdown`` prints the rule table the
README embeds, so the docs are generated from :func:`all_rules` rather
than maintained by hand.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.audit import baseline as baseline_mod
from repro.analysis.audit.engine import all_rules, run_audit_report

DEFAULT_BASELINE = "audit_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tfrc-audit",
        description="AST-based invariant analyzer for the repro tree "
        "(determinism, fs-commit protocol, cache contract, registry "
        "coherence, test-tier hygiene, scalar/vector twin congruence).",
    )
    parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="repository root to audit (default: current directory)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON (schema shared with tfrc-sweep-fsck)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="also fail on baseline entries without a justification, "
        "and warn on stale allowlist entries (the CI gate mode)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to the current findings, preserving "
        "existing justifications; new entries need one written by hand",
    )
    parser.add_argument(
        "--paths", nargs="+", default=None, metavar="FILE",
        help="restrict per-file checkers to these files (pre-commit "
        "mode); project-wide checkers still scan the whole tree",
    )
    parser.add_argument(
        "--annotations", action="store_true",
        help="also emit GitHub Actions ::error/::warning workflow "
        "commands for each finding",
    )
    parser.add_argument(
        "--list-rules", "--rules", action="store_true", dest="list_rules",
        help="list every registered rule and exit",
    )
    parser.add_argument(
        "--rules-markdown", action="store_true",
        help="print the rule table as markdown (the README embeds this "
        "output) and exit",
    )
    return parser


def _print_rules(out) -> None:
    for rule in all_rules():
        print(f"{rule.id:36s} {rule.severity:8s} {rule.summary}", file=out)


def rules_markdown() -> str:
    """The README's rule table, generated from the registry."""
    lines = [
        "| rule | severity | what it catches |",
        "| --- | --- | --- |",
    ]
    for rule in all_rules():
        lines.append(f"| `{rule.id}` | {rule.severity} | {rule.summary} |")
    return "\n".join(lines) + "\n"


def _annotate(out, level: str, record_dict: dict) -> None:
    """One GitHub Actions workflow command for a finding."""
    title = f"tfrc-audit {record_dict['rule']}"
    detail = str(record_dict["detail"]).replace("\n", " ")
    print(
        f"::{level} file={record_dict['path']},line={record_dict['line']},"
        f"title={title}::{detail}",
        file=out,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        _print_rules(out)
        return 0
    if args.rules_markdown:
        out.write(rules_markdown())
        return 0
    if args.update_baseline and args.paths:
        print(
            "tfrc-audit: --update-baseline needs a whole-tree run; "
            "drop --paths",
            file=sys.stderr,
        )
        return 2

    root = Path(args.root).resolve()
    if not (root / "src" / "repro").is_dir():
        print(
            f"tfrc-audit: {root} has no src/repro tree (wrong --root?)",
            file=sys.stderr,
        )
        return 2

    report = run_audit_report(root, paths=args.paths)
    findings = report.findings

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    try:
        entries = baseline_mod.load_baseline(baseline_path)
    except baseline_mod.BaselineError as exc:
        print(f"tfrc-audit: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        count = baseline_mod.write_baseline(baseline_path, findings, entries)
        blank = len(baseline_mod.unjustified(
            baseline_mod.load_baseline(baseline_path)
        ))
        print(
            f"tfrc-audit: wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
            f"to {baseline_path}"
            + (f" ({blank} still need a justification)" if blank else ""),
            file=out,
        )
        return 0

    new, baselined, stale = baseline_mod.apply_baseline(findings, entries)
    if report.restricted:
        stale = []  # a partial run cannot judge baseline staleness
    unjustified = baseline_mod.unjustified(entries) if args.check_baseline else []
    stale_allowlist = report.stale_allowlist if args.check_baseline else []

    if args.as_json:
        document = {
            "tool": "tfrc-audit",
            "root": str(root),
            "findings": [record.to_dict() for record in new],
            "baselined": baselined,
            "stale_baseline": stale,
            "unjustified_baseline": unjustified,
            "stale_allowlist": stale_allowlist,
        }
        json.dump(document, out, indent=2, sort_keys=True, allow_nan=False)
        out.write("\n")
    else:
        for record in new:
            print(record.render(), file=out)
        summary = (
            f"tfrc-audit: {len(new)} finding(s)"
            + (f", {baselined} baselined" if baselined else "")
            + (f", {len(stale)} stale baseline entr"
               f"{'y' if len(stale) == 1 else 'ies'}" if stale else "")
        )
        print(summary, file=out)
        for fp in stale:
            entry = entries[fp]
            print(
                f"  stale baseline entry {fp} "
                f"({entry.get('rule')} at {entry.get('path')}): finding is "
                "gone; run --update-baseline",
                file=out,
            )
        for fp in unjustified:
            entry = entries[fp]
            print(
                f"  baseline entry {fp} ({entry.get('rule')} at "
                f"{entry.get('path')}) has no justification -- write one "
                "in the baseline file",
                file=out,
            )
        for description in stale_allowlist:
            print(
                f"  stale allowlist entry {description}; delete it from "
                "DEFAULT_ALLOWLIST",
                file=out,
            )

    if args.annotations:
        for record in new:
            _annotate(out, "error", record.to_dict())
        for fp in unjustified:
            entry = entries[fp]
            print(
                f"::warning title=tfrc-audit baseline::entry {fp} "
                f"({entry.get('rule')} at {entry.get('path')}) has no "
                "justification",
                file=out,
            )
        for description in stale_allowlist:
            print(
                f"::warning title=tfrc-audit allowlist::stale entry "
                f"{description}",
                file=out,
            )

    if new or unjustified:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
