"""tfrc-audit: AST-based invariant analysis for the repro tree.

The sweep fabric's correctness story rests on invariants that ordinary
tests only probe dynamically: simulations must be deterministic functions
of their spec, durable queue/cache state must commit through the blessed
atomic-write protocol (:mod:`repro.scenarios._fsio`), cached cell results
must be strict canonical JSON, the scenario/executor registries must agree
with every name written down elsewhere, and expensive tests must carry
``@pytest.mark.slow``.  This package enforces those invariants statically:
it parses the whole ``src/repro`` tree (plus ``tests/``) with :mod:`ast`
and runs a registry of checkers, one per invariant family:

``determinism.*``
    wall-clock reads, global-RNG use, unsorted directory listings, and
    set-order-dependent iteration inside simulation/scenario code paths.
``fsio.*``
    raw ``open(..., "w")`` / ``write_text`` / ``json.dump`` in the
    scenarios tree outside :mod:`repro.scenarios._fsio`.
``cache.*``
    NaN/Infinity-capable expressions inside scenario result functions and
    JSON serialization without ``allow_nan=False``.
``registry.*``
    drift between ``@register_scenario`` names, ``EXECUTOR_NAMES``, CLI
    ``--executor`` choices, and scenario-name references.
``tests.*``
    heavyweight tests (big sweep grids / long simulated durations)
    missing ``@pytest.mark.slow``.
``twin.*``
    scalar/vector kernel lockstep: declared twin pairs whose bodies
    lower to different arithmetic traces, pairwise reductions, dtype
    narrowing, ops outside the blessed float64 set, and vector-named
    functions with no declared scalar twin
    (:mod:`repro.analysis.audit.rules_twins`).

Findings share one record schema (rule / path / line / severity / detail)
with ``tfrc-sweep-fsck --json`` (see :mod:`repro.analysis.audit.records`),
support inline ``# tfrc-audit: ignore[rule]`` suppressions and a
per-layer allowlist table, and gate CI against a committed baseline
(:mod:`repro.analysis.audit.baseline`) whose entries each require a
written justification.

Entry point: ``tfrc-audit`` (:mod:`repro.analysis.audit.cli`).
"""

from repro.analysis.audit.engine import (
    AllowEntry,
    AuditConfig,
    AuditReport,
    run_audit,
    run_audit_report,
)
from repro.analysis.audit.records import (
    AuditRecord,
    finding_record,
    read_findings,
)

__all__ = [
    "AllowEntry",
    "AuditConfig",
    "AuditRecord",
    "AuditReport",
    "finding_record",
    "read_findings",
    "run_audit",
    "run_audit_report",
]
