"""Scalar/vector twin-congruence rules (``twin.*``).

PR 6's vector kernel promises *bit-identical* results to the scalar
reference: same float64 ops, same per-element order.  That contract was
guarded only by runtime property fuzz -- strong for the pairs it covers,
silent for the pair someone forgets to fuzz.  This family makes the
contract declarative and machine-checked:

* A vectorized function declares its scalar reference either with an
  annotation on (or directly above) its ``def`` line::

      # tfrc-audit: twin-of repro.net.redmath.red_drop_probability
      def red_drop_probability_vec(params, avg):

  or through a module-level ``TWINS`` table (for names that want a
  docstring'd registry)::

      TWINS = {
          "run_cells_vector": ("repro.sim.vector_kernel.run_cell_scalar",
                               "runtime"),
      }

  The default mode is ``trace``: both bodies are lowered by
  :mod:`repro.analysis.audit.normalize` to one canonical arithmetic
  trace and any structural difference is a ``twin.op-divergence``.
  Pairs whose congruence is beyond static proof (masked bisection
  loops, full simulation kernels) register in ``runtime`` mode --
  ``# tfrc-audit: twin-of <qualname> [runtime] -- <where it is fuzzed>``
  -- which skips the trace proof but keeps every body lint below.

* Standalone lints run on every registered vector body and on any
  ``*_vec`` / ``*_vector`` function in ``src``:

  - ``twin.nonassoc-reduction``: ``np.sum`` / ``np.dot`` / ``.sum()``
    style pairwise reductions.  numpy is free to reassociate them, so
    they cannot be bit-identical to a scalar accumulation loop; write an
    explicit left fold over columns instead.  (Builtin ``sum()`` *is* a
    left fold and is not flagged.)
  - ``twin.dtype-drift``: float32/float16 dtypes or ``astype``
    narrowing inside a kernel that promises float64.
  - ``twin.forbidden-op``: operators and calls outside the blessed set
    (``+ - * / sqrt`` plus ``min``/``max``/``where`` selection) --
    ``**``, ``np.hypot``, ``np.exp`` and friends evaluate differently
    from their composed scalar spellings.
  - ``twin.unregistered-twin``: a vector-named function with no
    declared scalar twin (the lockstep contract must be opt-out by
    declaration, never by omission).

The analyzer is itself cross-validated: ``tests/test_twin_congruence.py``
plants an operand reorder in a copy of the RED twin (must be flagged)
and fuzzes every live ``trace``-mode pair for bit equality (the static
proof must not be vacuous).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.audit.engine import (
    AuditConfig,
    Rule,
    SourceFile,
    project_checker,
)
from repro.analysis.audit.normalize import (
    first_divergence,
    normalize_function,
)
from repro.analysis.audit.records import AuditRecord

RULE_OP_DIVERGENCE = Rule(
    id="twin.op-divergence",
    summary="scalar and vector twin bodies lower to different "
    "arithmetic traces",
    hint="make the vector body evaluate the same float64 ops in the "
    "same per-element order as its scalar twin, or register the pair "
    "as [runtime] with a pointer to its fuzz coverage",
)
RULE_NONASSOC = Rule(
    id="twin.nonassoc-reduction",
    summary="pairwise reduction (np.sum/np.dot/.sum()) in a vector "
    "twin body",
    hint="numpy reductions may reassociate; accumulate with an "
    "explicit left fold over columns to match the scalar loop order",
)
RULE_DTYPE = Rule(
    id="twin.dtype-drift",
    summary="sub-float64 dtype in a vector twin body",
    hint="twin kernels are a float64 contract; drop the float32/"
    "float16 literal or astype narrowing",
)
RULE_FORBIDDEN = Rule(
    id="twin.forbidden-op",
    summary="operation outside the blessed twin op set "
    "(+ - * / sqrt, min/max/where)",
    hint="fused or transcendental ops (np.hypot, np.exp, **) round "
    "differently from their composed scalar spellings; compose from "
    "the blessed set on both sides",
)
RULE_UNREGISTERED = Rule(
    id="twin.unregistered-twin",
    summary="vector-named function with no declared scalar twin",
    hint="add '# tfrc-audit: twin-of <scalar qualname>' above the def "
    "(or a TWINS table entry); use [runtime] mode when the pair is "
    "fuzz-verified rather than trace-provable",
)

_TWIN_RE = re.compile(
    r"#\s*tfrc-audit:\s*twin-of\s+(?P<scalar>[\w.]+)"
    r"(?:\s*\[(?P<mode>\w+)\])?"
    r"(?:\s*--\s*(?P<reason>.*))?"
)

_MODES = ("trace", "runtime")

#: reductions numpy may reassociate (never bit-stable vs a scalar loop).
_NONASSOC_CALLS = frozenset(
    {
        "numpy.sum", "numpy.nansum", "numpy.dot", "numpy.vdot",
        "numpy.inner", "numpy.matmul", "numpy.einsum", "numpy.prod",
        "numpy.mean", "numpy.average", "numpy.cumsum", "numpy.add.reduce",
        "math.fsum",
    }
)
_NONASSOC_METHODS = frozenset({"sum", "dot", "mean", "prod", "cumsum"})

#: fused / transcendental calls outside the blessed twin op set.
_FORBIDDEN_CALLS = frozenset(
    {
        "numpy.hypot", "numpy.fma", "numpy.exp", "numpy.exp2",
        "numpy.expm1", "numpy.log", "numpy.log2", "numpy.log10",
        "numpy.log1p", "numpy.power", "numpy.float_power", "numpy.square",
        "numpy.reciprocal", "numpy.cbrt", "numpy.sin", "numpy.cos",
        "numpy.tan", "math.exp", "math.expm1", "math.log", "math.log1p",
        "math.log2", "math.log10", "math.pow", "math.hypot",
    }
)
_FORBIDDEN_BINOPS = {
    ast.Pow: "**", ast.FloorDiv: "//", ast.Mod: "%", ast.MatMult: "@",
}

_NARROW_DTYPES = frozenset(
    {"numpy.float32", "numpy.float16", "numpy.half", "numpy.single"}
)
_NARROW_DTYPE_STRINGS = frozenset({"float32", "float16", "half", "single"})


@dataclass(frozen=True)
class TwinPair:
    """One declared vector->scalar twin registration."""

    source: SourceFile
    vector_qual: str  # e.g. "_WaliLanes._fold_average"
    vector_node: ast.FunctionDef
    line: int  # the declaration site (annotation or def line)
    scalar: str  # dotted, e.g. "repro.net.redmath.red_drop_probability"
    mode: str  # "trace" | "runtime"

    @property
    def vector_dotted(self) -> str:
        """Importable dotted path of the vector function."""
        return f"{module_dotted(self.source.rel_path)}.{self.vector_qual}"


def module_dotted(rel_path: str) -> str:
    """``src/repro/net/redmath.py`` -> ``repro.net.redmath``."""
    parts = rel_path.split("/")
    if parts[0] == "src":
        parts = parts[1:]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _function_table(source: SourceFile) -> Dict[str, ast.FunctionDef]:
    """Qualified name -> def node, for every function in the module."""
    table: Dict[str, ast.FunctionDef] = {}

    def visit(body: Sequence[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                table[prefix + node.name] = node  # type: ignore[assignment]
                visit(node.body, prefix + node.name + ".")
            elif isinstance(node, ast.ClassDef):
                visit(node.body, prefix + node.name + ".")

    visit(source.tree.body, "")
    return table


def _anchor_lines(node: ast.FunctionDef) -> Tuple[int, ...]:
    """Lines where a twin-of annotation attaches to this def."""
    start = min(
        [deco.lineno for deco in node.decorator_list] + [node.lineno]
    )
    return tuple(sorted({start - 1, start, node.lineno}))


def _comments(text: str) -> Iterator[Tuple[int, str]]:
    """(line, comment) for every comment token in ``text``."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return  # the file already parsed; treat a tokenizer gap as no comments


def collect_twins(
    src: Sequence[SourceFile],
) -> Tuple[List[TwinPair], List[AuditRecord]]:
    """All declared twin pairs, plus findings for malformed declarations."""
    pairs: List[TwinPair] = []
    problems: List[AuditRecord] = []

    def problem(source: SourceFile, line: int, detail: str) -> None:
        problems.append(
            AuditRecord(
                rule=RULE_UNREGISTERED.id,
                path=source.rel_path,
                line=line,
                severity=RULE_UNREGISTERED.severity,
                detail=detail,
                hint=RULE_UNREGISTERED.hint,
            )
        )

    for source in src:
        functions = _function_table(source)
        anchors: Dict[int, Tuple[str, ast.FunctionDef]] = {}
        for qual, node in functions.items():
            for line in _anchor_lines(node):
                anchors.setdefault(line, (qual, node))

        # ---------------------------------------------- inline annotations
        # Scanned as real comment tokens (not raw lines) so that
        # annotation syntax quoted in docstrings is not a declaration.
        for lineno, comment in _comments(source.text):
            match = _TWIN_RE.search(comment)
            if not match:
                continue
            mode = match.group("mode") or "trace"
            if mode not in _MODES:
                problem(
                    source, lineno,
                    f"twin-of mode [{mode}] is not one of {_MODES}",
                )
                continue
            if mode == "runtime" and not (match.group("reason") or "").strip():
                problem(
                    source, lineno,
                    "[runtime] twin registration needs a '-- reason' "
                    "pointing at its fuzz coverage",
                )
                continue
            anchored = anchors.get(lineno)
            if anchored is None:
                problem(
                    source, lineno,
                    "dangling twin-of annotation: not attached to any "
                    "function definition",
                )
                continue
            qual, node = anchored
            pairs.append(
                TwinPair(
                    source=source,
                    vector_qual=qual,
                    vector_node=node,
                    line=lineno,
                    scalar=match.group("scalar"),
                    mode=mode,
                )
            )

        # -------------------------------------------------- TWINS tables
        for stmt in source.tree.body:
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "TWINS"
                and isinstance(stmt.value, ast.Dict)
            ):
                continue
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                ):
                    problem(source, stmt.lineno,
                            "TWINS table key is not a string literal")
                    continue
                scalar: Optional[str] = None
                mode = "trace"
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    scalar = value.value
                elif (
                    isinstance(value, (ast.Tuple, ast.List))
                    and len(value.elts) == 2
                    and all(
                        isinstance(e, ast.Constant)
                        and isinstance(e.value, str)
                        for e in value.elts
                    )
                ):
                    scalar = value.elts[0].value  # type: ignore[union-attr]
                    mode = value.elts[1].value  # type: ignore[union-attr]
                if scalar is None or mode not in _MODES:
                    problem(
                        source, value.lineno if value else stmt.lineno,
                        f"TWINS entry for {key.value!r} must be "
                        "'<scalar qualname>' or ('<scalar qualname>', "
                        f"{'|'.join(_MODES)!r})".replace("'|'", "' | '"),
                    )
                    continue
                node = functions.get(key.value)
                if node is None:
                    problem(
                        source, key.lineno,
                        f"TWINS key {key.value!r} names no function in "
                        "this module",
                    )
                    continue
                pairs.append(
                    TwinPair(
                        source=source,
                        vector_qual=key.value,
                        vector_node=node,
                        line=node.lineno,
                        scalar=scalar,
                        mode=mode,
                    )
                )

    return pairs, problems


def collect_repo_twins(
    repo_root: "str | Path", config: Optional[AuditConfig] = None
) -> Tuple[List[TwinPair], List[AuditRecord]]:
    """Parse a repo tree and collect its twin pairs (for the fuzz tier)."""
    from repro.analysis.audit.engine import iter_source_paths

    root = Path(repo_root).resolve()
    cfg = config or AuditConfig()
    src: List[SourceFile] = []
    for path in iter_source_paths(root, cfg):
        rel = path.relative_to(root).as_posix()
        if not rel.startswith(cfg.src_prefix):
            continue
        src.append(SourceFile(rel, path.read_text(encoding="utf-8")))
    return collect_twins(src)


def _resolve_scalar(
    dotted: str, by_path: Dict[str, SourceFile]
) -> Tuple[Optional[SourceFile], Optional[ast.FunctionDef]]:
    """Find the def node for a dotted scalar qualname, if it is in src."""
    parts = dotted.split(".")
    for split in range(len(parts) - 1, 0, -1):
        rel = "src/" + "/".join(parts[:split]) + ".py"
        source = by_path.get(rel)
        if source is None:
            continue
        qual = ".".join(parts[split:])
        return source, _function_table(source).get(qual)
    return None, None


def _record(
    rule: Rule, source: SourceFile, line: int, detail: str
) -> AuditRecord:
    return AuditRecord(
        rule=rule.id,
        path=source.rel_path,
        line=line,
        severity=rule.severity,
        detail=detail,
        hint=rule.hint,
    )


# ------------------------------------------------------------------- lints


def _lint_vector_body(
    source: SourceFile, func: ast.FunctionDef
) -> Iterator[AuditRecord]:
    """Blessed-op hygiene lints over one vector twin body."""
    for node in ast.walk(func):
        if isinstance(node, ast.BinOp):
            symbol = _FORBIDDEN_BINOPS.get(type(node.op))
            if symbol is not None:
                yield _record(
                    RULE_FORBIDDEN, source, node.lineno,
                    f"operator {symbol!r} in twin body {func.name!r}",
                )
        elif isinstance(node, ast.Call):
            qual = source.call_qualname(node)
            if qual in _NONASSOC_CALLS:
                yield _record(
                    RULE_NONASSOC, source, node.lineno,
                    f"{qual}() in twin body {func.name!r}",
                )
            elif qual in _FORBIDDEN_CALLS:
                yield _record(
                    RULE_FORBIDDEN, source, node.lineno,
                    f"{qual}() in twin body {func.name!r}",
                )
            elif (
                qual is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _NONASSOC_METHODS
            ):
                yield _record(
                    RULE_NONASSOC, source, node.lineno,
                    f".{node.func.attr}() method reduction in twin "
                    f"body {func.name!r}",
                )
        elif isinstance(node, (ast.Name, ast.Attribute)):
            qual = source.qualname(node)
            if qual in _NARROW_DTYPES:
                yield _record(
                    RULE_DTYPE, source, node.lineno,
                    f"{qual} in twin body {func.name!r}",
                )
        elif (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in _NARROW_DTYPE_STRINGS
        ):
            yield _record(
                RULE_DTYPE, source, node.lineno,
                f"dtype string {node.value!r} in twin body {func.name!r}",
            )


# --------------------------------------------------------------- the checker


@project_checker(
    RULE_OP_DIVERGENCE,
    RULE_NONASSOC,
    RULE_DTYPE,
    RULE_FORBIDDEN,
    RULE_UNREGISTERED,
)
def check_twin_congruence(
    corpus: Sequence[SourceFile], config: AuditConfig
) -> Iterator[AuditRecord]:
    src = [s for s in corpus if s.rel_path.startswith(config.src_prefix)]
    by_path = {s.rel_path: s for s in src}
    pairs, problems = collect_twins(src)
    yield from problems

    registered = {(pair.source.rel_path, pair.vector_qual) for pair in pairs}
    suffixes = config.twin_suffixes

    # Calls to a twin canonicalize to the scalar's bare name on both
    # sides, so a vector body calling a sibling vector twin still
    # compares equal to the scalar body calling the scalar sibling.
    call_map: Dict[str, str] = {}
    for pair in pairs:
        bare_scalar = pair.scalar.rsplit(".", 1)[-1]
        call_map[pair.scalar] = bare_scalar
        call_map[pair.vector_node.name] = bare_scalar
        call_map[pair.vector_dotted] = bare_scalar

    linted: set = set()
    for pair in pairs:
        key = (pair.source.rel_path, pair.vector_qual)
        if key not in linted:
            linted.add(key)
            yield from _lint_vector_body(pair.source, pair.vector_node)

    for source in src:
        for qual, node in sorted(_function_table(source).items()):
            if not node.name.endswith(suffixes):
                continue
            if (source.rel_path, qual) in registered:
                continue
            yield _record(
                RULE_UNREGISTERED, source, node.lineno,
                f"{qual} looks like a vector kernel but declares no "
                "scalar twin",
            )
            if (source.rel_path, qual) not in linted:
                linted.add((source.rel_path, qual))
                yield from _lint_vector_body(source, node)

    # ------------------------------------------------------ trace proofs
    for pair in pairs:
        if pair.mode != "trace":
            continue
        scalar_source, scalar_node = _resolve_scalar(pair.scalar, by_path)
        if scalar_source is None or scalar_node is None:
            yield _record(
                RULE_UNREGISTERED, pair.source, pair.line,
                f"declared scalar twin {pair.scalar!r} was not found "
                "in the source tree",
            )
            continue
        vector_trace = normalize_function(
            pair.source, pair.vector_node, call_map
        )
        scalar_trace = normalize_function(scalar_source, scalar_node, call_map)
        diverged = False
        for side, trace in (("scalar", scalar_trace), ("vector", vector_trace)):
            if trace.error is not None:
                diverged = True
                yield _record(
                    RULE_OP_DIVERGENCE, pair.source, pair.vector_node.lineno,
                    f"{side} twin of {pair.vector_qual} cannot be "
                    f"trace-lowered: {trace.error}",
                )
            for failure in trace.guard_failures:
                diverged = True
                yield _record(
                    RULE_OP_DIVERGENCE, pair.source, pair.vector_node.lineno,
                    f"{side} twin of {pair.vector_qual}: {failure}",
                )
        if diverged:
            continue
        found = first_divergence(scalar_trace.expr, vector_trace.expr)
        if found is not None:
            where, scalar_render, vector_render = found
            yield _record(
                RULE_OP_DIVERGENCE, pair.source, pair.vector_node.lineno,
                f"normalized traces of {pair.vector_qual} and "
                f"{pair.scalar} diverge at {where}: scalar "
                f"{scalar_render} != vector {vector_render}",
            )
