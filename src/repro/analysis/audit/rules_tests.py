"""Test-tier hygiene rules (``tests.*``).

CI's fast tier runs ``pytest -m "not slow"`` under a wall-time budget;
one unmarked heavyweight test erodes it for every push.  Wall time here
is dominated by *simulated work* -- sweep grid size times simulated
``duration`` seconds -- which is statically visible: grids are dict
literals of list literals, durations are numeric literals.  This rule
estimates each unmarked test's simulated work and flags tests over the
threshold (or with enormous grids regardless of duration), honoring
``@pytest.mark.slow`` on the function, its class, or the module's
``pytestmark``.

The estimate is deliberately conservative: durations only count when a
literal is visible (a test inheriting an unknowable duration is not
guessed at), so the rule has no opinion on tests it cannot read.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.audit.engine import (
    AuditConfig,
    Rule,
    SourceFile,
    file_checker,
)
from repro.analysis.audit.records import AuditRecord

RULE_MISSING_SLOW = Rule(
    id="tests.missing-slow-marker",
    summary="heavyweight test without @pytest.mark.slow",
    hint="mark it @pytest.mark.slow (CI's fast tier runs -m 'not slow') "
    "or shrink the grid/duration",
)

#: call names that execute simulated work, with how many cells one call is.
_SINGLE_CELL_CALLS = frozenset({"run_scenario", "run_single_cell"})


def _is_slow_marker(node: ast.expr) -> bool:
    """``pytest.mark.slow`` (or any ``...mark.slow`` attribute chain)."""
    if isinstance(node, ast.Call):  # pytest.mark.slow(reason=...) form
        node = node.func
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "slow"
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "mark"
    )


def _module_marked_slow(source: SourceFile) -> bool:
    for node in source.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "pytestmark"
            for t in node.targets
        ):
            continue
        values = (
            node.value.elts
            if isinstance(node.value, (ast.List, ast.Tuple))
            else [node.value]
        )
        if any(_is_slow_marker(v) for v in values):
            return True
    return False


def _max_duration_literal(tree: ast.AST) -> Optional[float]:
    """The largest ``duration`` literal visible under ``tree``, if any.

    Looks at ``duration=<number>`` keywords and ``"duration": <number>``
    dict entries -- the two ways specs and override grids spell it.
    """
    best: Optional[float] = None

    def consider(value: ast.expr) -> None:
        nonlocal best
        if isinstance(value, ast.Constant) and isinstance(
            value.value, (int, float)
        ):
            number = float(value.value)
            best = number if best is None else max(best, number)

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == "duration":
                    consider(keyword.value)
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and key.value.split(".")[-1] == "duration"
                ):
                    consider(value)
    return best


def _grid_cells(call: ast.Call) -> int:
    """Statically estimated cell count of a ``SweepRunner(...)`` call."""
    grid: Optional[ast.expr] = None
    if len(call.args) >= 2:
        grid = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "grid":
            grid = keyword.value
    if not isinstance(grid, ast.Dict):
        return 1
    cells = 1
    for value in grid.values:
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            cells *= max(1, len(value.elts))
    return cells


def _loop_multiplier(source: SourceFile, node: ast.AST, stop: ast.AST) -> int:
    """Product of constant ``range(N)`` loops enclosing ``node`` in ``stop``."""
    multiplier = 1
    current = source.parent(node)
    while current is not None and current is not stop:
        if isinstance(current, (ast.For, ast.AsyncFor)):
            it = current.iter
            if (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id == "range"
                and it.args
                and isinstance(it.args[-1 if len(it.args) < 3 else 1], ast.Constant)
            ):
                bound = it.args[-1 if len(it.args) < 3 else 1].value
                if isinstance(bound, int) and bound > 0:
                    multiplier *= bound
        current = source.parent(current)
    return multiplier


def _estimated_cells(source: SourceFile, func: ast.AST) -> int:
    cells = 0
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = (
            node.func.id
            if isinstance(node.func, ast.Name)
            else node.func.attr
            if isinstance(node.func, ast.Attribute)
            else None
        )
        if name == "SweepRunner":
            cells += _grid_cells(node) * _loop_multiplier(source, node, func)
        elif name in _SINGLE_CELL_CALLS:
            cells += _loop_multiplier(source, node, func)
    return cells


@file_checker(RULE_MISSING_SLOW)
def check_test_tiers(
    source: SourceFile, config: AuditConfig
) -> Iterator[AuditRecord]:
    if not source.rel_path.startswith(config.tests_prefix):
        return
    if _module_marked_slow(source):
        return
    # Module default duration: literals in module-level statements only
    # (shared BASE specs), never inside other tests' bodies.
    module_duration: Optional[float] = None
    for stmt in source.tree.body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        found = _max_duration_literal(stmt)
        if found is not None:
            module_duration = (
                found
                if module_duration is None
                else max(module_duration, found)
            )

    def walk(body: List[ast.stmt], class_slow: bool) -> Iterator[AuditRecord]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                slow = class_slow or any(
                    _is_slow_marker(d) for d in node.decorator_list
                )
                yield from walk(node.body, slow)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("test"):
                    continue
                if class_slow or any(
                    _is_slow_marker(d) for d in node.decorator_list
                ):
                    continue
                cells = _estimated_cells(source, node)
                if cells == 0:
                    continue
                duration = _max_duration_literal(node)
                if duration is None:
                    duration = module_duration
                work = cells * duration if duration is not None else None
                heavy = cells >= config.slow_cell_threshold or (
                    work is not None and work >= config.slow_work_threshold
                )
                if heavy:
                    shown_work = (
                        f"~{work:.0f} simulated seconds"
                        if work is not None
                        else "unknown simulated seconds"
                    )
                    yield AuditRecord(
                        rule=RULE_MISSING_SLOW.id,
                        path=source.rel_path,
                        line=node.lineno,
                        severity=RULE_MISSING_SLOW.severity,
                        detail=f"{node.name} runs ~{cells} cell(s) x "
                        f"{duration if duration is not None else '?'}s "
                        f"({shown_work}) without @pytest.mark.slow",
                        hint=RULE_MISSING_SLOW.hint,
                    )

    yield from walk(source.tree.body, False)
