"""Determinism-discipline rules (``determinism.*``).

A scenario cell result must be a pure function of its
:class:`~repro.scenarios.spec.ScenarioSpec` -- that is what makes cache
entries trustworthy, sweeps executor-independent, and the chaos soak's
byte-identity assertion meaningful.  These rules flag the classic ways
nondeterminism leaks into Python code on the simulation/scenario paths:
wall-clock reads, the process-global RNG, unsorted directory listings,
and iteration over hash-ordered sets.

The worker/heartbeat/fault layers *are* wall-clock code; they are exempt
via the engine's allowlist table (with reasons), not via weaker rules.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Sequence

from repro.analysis.audit.engine import (
    AuditConfig,
    Rule,
    SourceFile,
    file_checker,
)
from repro.analysis.audit.records import AuditRecord

RULE_WALL_CLOCK = Rule(
    id="determinism.wall-clock",
    summary="wall-clock read on a simulation/scenario code path",
    hint="thread simulated time (or the fabric's fs_now) through instead; "
    "elapsed-time instrumentation belongs in allowlisted layers",
)
RULE_GLOBAL_RNG = Rule(
    id="determinism.global-rng",
    summary="process-global RNG use (random.* / numpy.random.*)",
    hint="use a random.Random(seed)/numpy Generator seeded from the "
    "spec's seed (see ScenarioSpec.derive_seed)",
)
RULE_UNSORTED_LISTDIR = Rule(
    id="determinism.unsorted-listdir",
    summary="directory listing consumed without sorting",
    hint="wrap the listing in sorted(...) -- os.listdir/glob order is "
    "filesystem-dependent",
)
RULE_SET_ITERATION = Rule(
    id="determinism.set-iteration",
    summary="iteration over a hash-ordered set",
    hint="iterate sorted(the_set) (or keep a list/dict, which preserve "
    "insertion order)",
)

#: canonical dotted names that read the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: order-insensitive (or ordering) consumers that sanitize a listing.
_LISTING_SANITIZERS = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "any", "all", "max", "min"}
)

#: directory-listing producers: canonical names and bare method names.
_LISTING_FUNCS = frozenset({"os.listdir", "os.scandir"})
_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})


def _applies(source: SourceFile, config: AuditConfig) -> bool:
    return source.rel_path.startswith(tuple(config.determinism_prefixes))


def _sanitized(source: SourceFile, node: ast.AST) -> bool:
    """Is ``node`` consumed by an order-insensitive consumer?

    Either directly (``sorted(p.glob(...))``) or as the iterable of a
    comprehension that itself feeds one (``sum(1 for _ in p.glob(...))``).
    """
    parent = source.parent(node)
    if (
        isinstance(parent, ast.Call)
        and node in parent.args
        and isinstance(parent.func, ast.Name)
        and parent.func.id in _LISTING_SANITIZERS
    ):
        return True
    if isinstance(parent, ast.comprehension) and parent.iter is node:
        comp = source.parent(parent)
        return comp is not None and _sanitized(source, comp)
    return False


def _is_set_expr(node: ast.AST) -> bool:
    """A set literal, set comprehension, or a ``set(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _record(rule: Rule, source: SourceFile, node: ast.AST, detail: str) -> AuditRecord:
    return AuditRecord(
        rule=rule.id,
        path=source.rel_path,
        line=getattr(node, "lineno", 0),
        severity=rule.severity,
        detail=detail,
        hint=rule.hint,
    )


@file_checker(
    RULE_WALL_CLOCK, RULE_GLOBAL_RNG, RULE_UNSORTED_LISTDIR, RULE_SET_ITERATION
)
def check_determinism(
    source: SourceFile, config: AuditConfig
) -> Iterator[AuditRecord]:
    if not _applies(source, config):
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            yield from _check_call(source, node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter):
                yield _record(
                    RULE_SET_ITERATION, source, node.iter,
                    "for-loop iterates a set in hash order",
                )
        elif isinstance(node, ast.comprehension):
            if _is_set_expr(node.iter):
                yield _record(
                    RULE_SET_ITERATION, source, node.iter,
                    "comprehension iterates a set in hash order",
                )


def _check_call(source: SourceFile, call: ast.Call) -> Iterator[AuditRecord]:
    name = source.call_qualname(call)

    if name in _WALL_CLOCK_CALLS:
        yield _record(
            RULE_WALL_CLOCK, source, call, f"{name}() reads the wall clock"
        )
        return

    if name is not None:
        rng_detail = _global_rng_detail(name, call)
        if rng_detail:
            yield _record(RULE_GLOBAL_RNG, source, call, rng_detail)
            return

    if _is_listing_call(source, call, name) and not _sanitized(source, call):
        shown = name or f".{call.func.attr}(...)"  # type: ignore[union-attr]
        yield _record(
            RULE_UNSORTED_LISTDIR, source, call,
            f"{shown} result used without sorted(...)",
        )
        return

    # list(set(...)): materializes hash order into a sequence.
    if (
        isinstance(call.func, ast.Name)
        and call.func.id in ("list", "tuple")
        and len(call.args) == 1
        and _is_set_expr(call.args[0])
    ):
        yield _record(
            RULE_SET_ITERATION, source, call,
            f"{call.func.id}(set(...)) materializes hash order",
        )


def _global_rng_detail(name: str, call: ast.Call) -> Optional[str]:
    """Non-None when ``name`` is a process-global RNG entry point."""
    for module in ("random", "numpy.random"):
        prefix = module + "."
        if not name.startswith(prefix):
            continue
        func = name[len(prefix):]
        if "." in func or not func:
            return None
        if func[0].isupper():
            return None  # random.Random(seed) etc.: explicitly seeded
        if func == "default_rng":
            if call.args or call.keywords:
                return None  # default_rng(seed): fine
            return "numpy.random.default_rng() without a seed"
        return f"{name}() draws from the process-global RNG"
    return None


def _is_listing_call(
    source: SourceFile, call: ast.Call, name: Optional[str]
) -> bool:
    if name in _LISTING_FUNCS:
        return True
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _LISTING_METHODS
        # Unresolved receivers count: Path objects are locals, so the
        # method name is all the static evidence there is.
        and name is None
    )
