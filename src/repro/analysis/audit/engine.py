"""The ``tfrc-audit`` analysis engine: parsing, suppression, dispatch.

A :class:`SourceFile` wraps one parsed module: its AST, a child->parent
map (so checkers can look outward from a matched node), resolved import
aliases (``import time as t`` and ``from time import time`` both resolve
to the canonical dotted name ``time.time``), and the inline-suppression
table.  Checkers register themselves with :func:`file_checker` (run once
per file) or :func:`project_checker` (run once over the whole corpus, for
cross-file invariants like registry coherence); :func:`run_audit` walks
``src/repro`` and ``tests``, runs every registered checker, and filters
the raw findings through suppressions and the allowlist.

Suppression syntax (same line as the finding or the line above)::

    x = time.time()  # tfrc-audit: ignore[determinism.wall-clock] -- why

The bracket takes a comma-separated list of rule ids; a bare family name
(``ignore[fsio]``) suppresses every rule in that family.  The allowlist
(:class:`AllowEntry`) is the coarse-grained twin: whole layers where an
invariant family legitimately does not apply (the worker/heartbeat/fault
layers *are* wall-clock code), each entry carrying the reason why.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.audit.records import (
    SEVERITY_ERROR,
    AuditRecord,
)

# --------------------------------------------------------------------- rules


@dataclass(frozen=True)
class Rule:
    """One invariant the auditor enforces (a rule id plus its contract)."""

    id: str
    summary: str
    hint: str = ""
    severity: str = SEVERITY_ERROR

    @property
    def family(self) -> str:
        return self.id.split(".", 1)[0]


# ----------------------------------------------------------------- allowlist


@dataclass(frozen=True)
class AllowEntry:
    """One allowlisted (path prefix, rule family) pair, with its reason.

    ``rules`` entries may be full rule ids or bare families; ``reason``
    is mandatory -- an allowlist hole nobody can explain is a finding in
    itself.
    """

    path_prefix: str
    rules: Tuple[str, ...]
    reason: str

    def __post_init__(self) -> None:
        if not self.reason.strip():
            raise ValueError(
                f"allowlist entry for {self.path_prefix!r} needs a reason"
            )

    def covers(self, rel_path: str, rule_id: str) -> bool:
        if not rel_path.startswith(self.path_prefix):
            return False
        return any(_rule_matches(token, rule_id) for token in self.rules)


def _rule_matches(token: str, rule_id: str) -> bool:
    """Does suppression/allowlist ``token`` cover ``rule_id``?

    A token matches its exact rule id or, when it names a bare family
    (no dot), every rule in that family.
    """
    token = token.strip()
    if not token:
        return False
    return rule_id == token or ("." not in token and rule_id.startswith(token + "."))


#: Layers where the determinism family legitimately does not apply.  The
#: simulation core must be a pure function of the spec, but the fabric
#: *around* it schedules real processes against real clocks.  Layers the
#: checker never visits at all (anything outside
#: ``AuditConfig.determinism_prefixes`` -- rt/, apps/, perf/, wire/)
#: need no entry here: an entry that suppresses nothing is itself
#: flagged as stale under ``--check-baseline``.
DEFAULT_ALLOWLIST: Tuple[AllowEntry, ...] = (
    AllowEntry(
        "src/repro/scenarios/executors.py",
        ("determinism",),
        "queue fabric: lease ages, heartbeats, and poll loops are "
        "wall-clock by design; cell results never depend on them",
    ),
    AllowEntry(
        "src/repro/scenarios/faults.py",
        ("determinism",),
        "fault layer: skewed lease stamps and rename delays manipulate "
        "real time on purpose; fault *decisions* stay pure sha256",
    ),
    AllowEntry(
        "src/repro/scenarios/fsck.py",
        ("determinism",),
        "fsck judges lease staleness against the fabric's clock",
    ),
)


# ---------------------------------------------------------------- source files

_SUPPRESS_RE = re.compile(r"#\s*tfrc-audit:\s*ignore\[([^\]]*)\]")


class SourceFile:
    """One parsed module plus the derived tables checkers need."""

    def __init__(self, rel_path: str, text: str) -> None:
        self.rel_path = rel_path
        self.text = text
        self.tree = ast.parse(text, filename=rel_path)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self._aliases = self._collect_aliases()
        self._suppressions = self._collect_suppressions(text)

    # ------------------------------------------------------------ alias maps

    def _collect_aliases(self) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else local
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue  # relative imports never hide stdlib modules
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = f"{node.module}.{alias.name}"
        # `from datetime import datetime` canonicalizes to datetime.datetime
        return aliases

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name for a Name/Attribute chain, or None.

        Resolution is rooted in the module's imports: a bare local
        variable (or an attribute on one) resolves to None, so checkers
        matching ``time.time`` never fire on ``self.time`` or on an
        instance that merely shares a method name.
        """
        if isinstance(node, ast.Name):
            return self._aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.qualname(node.value)
            return f"{base}.{node.attr}" if base else None
        return None

    def call_qualname(self, call: ast.Call) -> Optional[str]:
        return self.qualname(call.func)

    # ---------------------------------------------------------- suppressions

    @staticmethod
    def _collect_suppressions(text: str) -> Dict[int, Set[str]]:
        table: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                tokens = {
                    token.strip()
                    for token in match.group(1).split(",")
                    if token.strip()
                }
                table[lineno] = tokens
        return table

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Is ``rule_id`` suppressed at ``line`` (same line or line above)?"""
        for candidate in (line, line - 1):
            for token in self._suppressions.get(candidate, ()):
                if _rule_matches(token, rule_id):
                    return True
        return False

    # -------------------------------------------------------------- helpers

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def enclosing(
        self, node: ast.AST, kinds: Tuple[type, ...]
    ) -> Optional[ast.AST]:
        """The nearest enclosing ancestor of one of ``kinds``, or None."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, kinds):
                return current
            current = self.parents.get(current)
        return None


# ------------------------------------------------------------------ registry

FileChecker = Callable[[SourceFile, "AuditConfig"], Iterable[AuditRecord]]
ProjectChecker = Callable[
    [Sequence[SourceFile], "AuditConfig"], Iterable[AuditRecord]
]

_FILE_CHECKERS: List[Tuple[FileChecker, Tuple[Rule, ...]]] = []
_PROJECT_CHECKERS: List[Tuple[ProjectChecker, Tuple[Rule, ...]]] = []


def file_checker(*rules: Rule) -> Callable[[FileChecker], FileChecker]:
    """Register a per-file checker enforcing ``rules``."""

    def register(fn: FileChecker) -> FileChecker:
        _FILE_CHECKERS.append((fn, rules))
        return fn

    return register


def project_checker(*rules: Rule) -> Callable[[ProjectChecker], ProjectChecker]:
    """Register a whole-corpus checker (cross-file invariants)."""

    def register(fn: ProjectChecker) -> ProjectChecker:
        _PROJECT_CHECKERS.append((fn, rules))
        return fn

    return register


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    load_builtin_checkers()
    rules: Dict[str, Rule] = {}
    for _, bundle in _FILE_CHECKERS + _PROJECT_CHECKERS:
        for rule in bundle:
            rules[rule.id] = rule
    return [rules[key] for key in sorted(rules)]


_BUILTINS_LOADED = False


def load_builtin_checkers() -> None:
    """Import the built-in rule modules (registering their checkers)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.analysis.audit import (  # noqa: F401  (import = registration)
        rules_cache,
        rules_determinism,
        rules_fsio,
        rules_registry,
        rules_tests,
        rules_twins,
    )


# ------------------------------------------------------------------- config


@dataclass(frozen=True)
class AuditConfig:
    """What to scan and which layer-level exemptions apply."""

    src_prefix: str = "src/repro"
    tests_prefix: str = "tests"
    allowlist: Tuple[AllowEntry, ...] = DEFAULT_ALLOWLIST
    #: prefixes (under the repo root) where the determinism family applies:
    #: the simulation core and everything a scenario cell executes.
    determinism_prefixes: Tuple[str, ...] = (
        "src/repro/sim/",
        "src/repro/core/",
        "src/repro/net/",
        "src/repro/tcp/",
        "src/repro/traffic/",
        "src/repro/multicast/",
        "src/repro/scenarios/",
        "src/repro/experiments/",
        "src/repro/analysis/",
    )
    #: the tree whose durable writes must route through the blessed module.
    fsio_prefix: str = "src/repro/scenarios/"
    #: modules allowed to perform raw content writes.
    fsio_blessed: Tuple[str, ...] = ("src/repro/scenarios/_fsio.py",)
    #: tests.missing-slow-marker: flag unmarked tests whose statically
    #: estimated simulated work (grid cells x duration seconds) reaches
    #: this threshold...
    slow_work_threshold: float = 600.0
    #: ...or whose grid alone reaches this many cells.
    slow_cell_threshold: int = 256
    #: name suffixes that mark a function as a vector kernel; such a
    #: function must declare its scalar twin (twin.unregistered-twin).
    twin_suffixes: Tuple[str, ...] = ("_vec", "_vector")


# ---------------------------------------------------------------- the audit


def iter_source_paths(repo_root: Path, config: AuditConfig) -> List[Path]:
    """Every Python file the audit parses, deterministically ordered."""
    roots = [repo_root / config.src_prefix, repo_root / config.tests_prefix]
    paths: List[Path] = []
    for root in roots:
        if root.is_dir():
            paths.extend(sorted(root.rglob("*.py")))
    return paths


@dataclass
class AuditReport:
    """The outcome of one audit run.

    ``stale_allowlist`` mirrors the stale-baseline warning: a
    :class:`AllowEntry` whose prefix matches no scanned file, or that
    suppressed no finding this run, is a hole nobody needs anymore and
    should be deleted.  It is only computed on whole-tree runs --
    a ``--paths``-restricted run sees too few findings to judge.
    """

    findings: List[AuditRecord]
    stale_allowlist: List[str] = field(default_factory=list)
    restricted: bool = False


def _normalize_paths(
    root: Path, paths: Sequence["str | Path"]
) -> Set[str]:
    """Requested --paths values as root-relative posix strings."""
    rel_set: Set[str] = set()
    for raw in paths:
        candidate = Path(raw)
        if not candidate.is_absolute():
            candidate = root / candidate
        try:
            rel_set.add(candidate.resolve().relative_to(root).as_posix())
        except ValueError:
            rel_set.add(Path(raw).as_posix())
    return rel_set


def run_audit_report(
    repo_root: "str | Path",
    config: Optional[AuditConfig] = None,
    paths: Optional[Sequence["str | Path"]] = None,
) -> AuditReport:
    """Parse the tree, run every checker, filter, and sort the findings.

    With ``paths``, per-file checkers run only on the listed files
    (the sub-second pre-commit mode); project-wide checkers still see
    the whole corpus, since their invariants are cross-file.
    """
    load_builtin_checkers()
    root = Path(repo_root).resolve()
    cfg = config or AuditConfig()
    restricted = paths is not None
    rel_set = _normalize_paths(root, paths) if paths is not None else set()

    corpus: List[SourceFile] = []
    findings: List[AuditRecord] = []
    for path in iter_source_paths(root, cfg):
        rel = path.relative_to(root).as_posix()
        try:
            text = path.read_text(encoding="utf-8")
            corpus.append(SourceFile(rel, text))
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(
                AuditRecord(
                    rule="audit.unparseable",
                    path=rel,
                    line=getattr(exc, "lineno", 0) or 0,
                    severity=SEVERITY_ERROR,
                    detail=f"cannot parse: {exc}",
                )
            )

    for source in corpus:
        if restricted and source.rel_path not in rel_set:
            continue
        for checker, _ in _FILE_CHECKERS:
            findings.extend(checker(source, cfg))
    for checker, _ in _PROJECT_CHECKERS:
        findings.extend(checker(corpus, cfg))

    by_path = {source.rel_path: source for source in corpus}
    allow_hits = [0] * len(cfg.allowlist)
    kept: List[AuditRecord] = []
    for record in findings:
        source = by_path.get(record.path)
        if source is not None and source.suppressed(record.line, record.rule):
            continue
        matched = next(
            (
                i
                for i, entry in enumerate(cfg.allowlist)
                if entry.covers(record.path, record.rule)
            ),
            None,
        )
        if matched is not None:
            allow_hits[matched] += 1
            continue
        kept.append(record)
    kept.sort(key=lambda r: (r.path, r.line, r.rule, r.detail))

    stale: List[str] = []
    if not restricted:
        for entry, hits in zip(cfg.allowlist, allow_hits):
            label = f"{entry.path_prefix} ({', '.join(entry.rules)})"
            if not any(
                s.rel_path.startswith(entry.path_prefix) for s in corpus
            ):
                stale.append(f"{label}: matches no scanned file")
            elif hits == 0:
                stale.append(f"{label}: suppresses no finding")
    return AuditReport(findings=kept, stale_allowlist=stale,
                       restricted=restricted)


def run_audit(
    repo_root: "str | Path", config: Optional[AuditConfig] = None
) -> List[AuditRecord]:
    """The findings of a whole-tree audit run (see :func:`run_audit_report`)."""
    return run_audit_report(repo_root, config).findings
