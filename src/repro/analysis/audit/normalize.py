"""Lowering scalar/vector twin bodies to one normalized arithmetic trace.

The twin-congruence rules (:mod:`repro.analysis.audit.rules_twins`) must
decide, statically, whether a scalar reference function and its vectorized
twin evaluate *the same float64 operations in the same per-element order*.
This module does the language-level half of that job: it symbolically
executes a function body into a canonical expression tree over the blessed
op set (``+ - * /``, ``sqrt``, ``min``/``max``, comparisons, ``select``)
in which the scalar and vector idioms that are bit-identical by
construction become literally equal:

* **Branches** -- a scalar ``if c: return a`` / ``return b`` chain, a
  conditional expression, and ``np.where(c, a, b)`` all lower to
  ``(select c a b)``.  Boolean conjunctions distribute
  (``select(a and b, x, y)`` == ``select(a, select(b, x, y), y)``), so
  the vector idiom of splitting a Python-level flag from an element-wise
  mask compares equal to the scalar's fused ``and``.
* **Folds** -- a scalar accumulation loop (``acc = 0.0; for ...:
  acc += term``) and a vector left-fold over matrix columns
  (``acc = t[:, 0] + t[:, 1]; for j in range(2, N): acc += t[:, j]``)
  both lower to ``(fold + term)``, with the loop variable abstracted to a
  symbolic element index and any concretely-unrolled leading terms
  absorbed (their count must match the loop's start index).  Fold
  *lengths* are a runtime property: absent columns must contribute exact
  ``0.0`` terms, which the runtime fuzz tier verifies.
* **Fast-path guards** -- ``if mask.all(): return early`` is lowered as a
  proof obligation: the early expression must equal the fall-through
  expression specialized under ``mask == True``.  A guard whose early
  return computes something else is itself an op-divergence.
* **Value-preserving wrappers** -- ``np.asarray`` / ``np.float64`` /
  ``float`` casts, ``np.full_like(x, c)`` broadcasts, ``math.sqrt`` vs
  ``np.sqrt``, ``min`` vs ``np.minimum`` all canonicalize away.
  Domain-check ``if ...: raise`` guards and ``with np.errstate(...)``
  wrappers (vector code's way of tolerating masked-lane artifacts) are
  transparent.

Anything outside this vocabulary (``while`` loops, subscript stores,
data-dependent trip counts) raises :class:`UnsupportedConstruct`: such a
pair cannot be *trace*-certified and must be registered in ``runtime``
mode, where congruence is delegated to the seeded fuzz tier.

Constants are normalized by float value (``0`` == ``0.0``); comparisons
by direction (``a > b`` == ``b < a``).  The canonical tree renders to a
stable S-expression, and :func:`first_divergence` walks two trees in
lockstep to name the innermost point where they disagree -- that path is
what a ``twin.op-divergence`` finding shows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

# Normalized expressions are nested tuples, compared structurally:
#   ("const", 2.0)          ("sym", "arg0.gentle")        ("op", "+", a, b)
#   ("select", c, a, b)     ("fold", "+", term)           ("elem", seq)
#   ("elem@", seq, idx)     ("call", "name", *args)       ("not"|"and"|"or", ...)
Expr = Tuple[Any, ...]

_SELF_NAMES = ("self", "cls")

#: calls that evaluate to their (single meaningful) argument bit-for-bit.
_TRANSPARENT_CALLS = {
    "float", "numpy.float64", "numpy.asarray", "numpy.ascontiguousarray",
}

#: calls mapped onto blessed ops, by canonical qualname or builtin name.
_OP_CALLS = {
    "math.sqrt": "sqrt",
    "numpy.sqrt": "sqrt",
    "abs": "abs",
    "numpy.abs": "abs",
    "numpy.absolute": "abs",
    "math.fabs": "abs",
    "min": "min",
    "numpy.minimum": "min",
    "max": "max",
    "numpy.maximum": "max",
}

_BINOPS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.Pow: "pow", ast.FloorDiv: "floordiv", ast.Mod: "mod",
    ast.MatMult: "matmul",
}

#: comparisons canonicalized left-to-right (Gt/GtE swap operands).
_CMPOPS = {ast.Lt: "lt", ast.LtE: "le", ast.Eq: "eq", ast.NotEq: "ne"}
_SWAPPED_CMPOPS = {ast.Gt: "lt", ast.GtE: "le"}


class UnsupportedConstruct(Exception):
    """The body uses something the trace vocabulary cannot express."""


@dataclass
class NormalizedTrace:
    """The outcome of lowering one function body."""

    expr: Optional[Expr]
    error: Optional[str] = None
    #: human-readable failures of ``.all()`` fast-path guard obligations.
    guard_failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and not self.guard_failures


def module_numeric_constants(tree: ast.Module) -> Dict[str, float]:
    """Module-level ``NAME = <number>`` constants (for range bounds etc.)."""
    constants: Dict[str, float] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not (
            isinstance(value, ast.Constant)
            and isinstance(value.value, (int, float))
            and not isinstance(value.value, bool)
        ):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = float(value.value)
    return constants


def normalize_function(
    source: Any,
    func: ast.FunctionDef,
    call_map: Optional[Dict[str, str]] = None,
) -> NormalizedTrace:
    """Lower ``func`` into a canonical trace (``source`` is a SourceFile)."""
    normalizer = _Normalizer(source, func, call_map or {})
    try:
        expr = normalizer.run()
    except UnsupportedConstruct as exc:
        return NormalizedTrace(expr=None, error=str(exc))
    failures = normalizer.check_guards(expr)
    return NormalizedTrace(expr=expr, guard_failures=failures)


# ---------------------------------------------------------------- rendering


def render(expr: Expr) -> str:
    """Stable S-expression form of a normalized expression."""
    tag = expr[0]
    if tag == "const":
        return repr(expr[1])
    if tag == "sym":
        return expr[1]
    if tag == "elem":
        return f"{render(expr[1])}[@]"
    if tag == "elem@":
        return f"{render(expr[1])}[{render(expr[2])}]"
    if tag == "fold":
        return f"(fold {expr[1]} {render(expr[2])})"
    if tag in ("select", "op", "call", "and", "or", "not"):
        head = expr[1] if tag in ("op", "call") else tag
        args = expr[2:] if tag in ("op", "call") else expr[1:]
        rendered = " ".join(render(arg) for arg in args)
        return f"({head} {rendered})" if rendered else f"({head})"
    return f"({tag} ...)"  # pragma: no cover - no other tags are built


def _clip(text: str, limit: int = 90) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."


def first_divergence(
    scalar: Expr, vector: Expr, path: str = "result"
) -> Optional[Tuple[str, str, str]]:
    """``(path, scalar_render, vector_render)`` at the innermost mismatch."""
    if scalar == vector:
        return None
    composite = ("select", "op", "call", "and", "or", "not", "fold",
                 "elem", "elem@")
    if (
        scalar[0] == vector[0]
        and scalar[0] in composite
        and len(scalar) == len(vector)
    ):
        start = 2 if scalar[0] in ("op", "call", "fold") else 1
        if scalar[1:start] == vector[1:start]:
            label = scalar[1] if scalar[0] in ("op", "call") else scalar[0]
            for i in range(start, len(scalar)):
                child_s, child_v = scalar[i], vector[i]
                if isinstance(child_s, tuple) and isinstance(child_v, tuple):
                    found = first_divergence(
                        child_s, child_v, f"{path}.{label}[{i - start}]"
                    )
                    if found is not None:
                        return found
                elif child_s != child_v:
                    break
    return (path, _clip(render(scalar)), _clip(render(vector)))


# ------------------------------------------------------------- the normalizer


class _Undefined:
    """Sentinel for a name bound on only one side of a branch."""


_UNDEF: Expr = ("sym", "<undefined>")


class _Normalizer:
    def __init__(
        self, source: Any, func: ast.FunctionDef, call_map: Dict[str, str]
    ) -> None:
        self.source = source
        self.func = func
        self.call_map = call_map
        self.constants = module_numeric_constants(source.tree)
        self.guards: List[Tuple[Expr, Expr, int]] = []  # (mask, early, line)
        self.env: Dict[str, Expr] = {}
        args = func.args
        params = list(getattr(args, "posonlyargs", [])) + list(args.args)
        if params and params[0].arg in _SELF_NAMES:
            self.env[params[0].arg] = ("sym", params[0].arg)
            params = params[1:]
        for index, param in enumerate(params):
            self.env[param.arg] = ("sym", f"arg{index}")

    # ------------------------------------------------------------- top level

    def run(self) -> Expr:
        expr = self.eval_block(list(self.func.body), self.env)
        return _canon(expr)

    def check_guards(self, final: Expr) -> List[str]:
        failures = []
        for mask, early, line in self.guards:
            specialized = _canon(_specialize(final, _canon(mask)))
            early = _canon(early)
            if specialized != early:
                failures.append(
                    f"line {line}: .all() fast-path guard returns "
                    f"{_clip(render(early))} but the general trace "
                    f"specializes to {_clip(render(specialized))}"
                )
        return failures

    def fail(self, node: ast.AST, what: str) -> UnsupportedConstruct:
        line = getattr(node, "lineno", self.func.lineno)
        return UnsupportedConstruct(
            f"{what} at line {line} is outside the trace vocabulary; "
            "register this pair in [runtime] mode if the congruence is "
            "fuzz-verified instead"
        )

    # ------------------------------------------------------------ statements

    def eval_block(self, stmts: List[ast.stmt], env: Dict[str, Expr]) -> Expr:
        """The value the block returns (``None`` constant if it falls off)."""
        for index, stmt in enumerate(stmts):
            rest = stmts[index + 1:]
            if isinstance(stmt, ast.Return):
                if stmt.value is None:
                    return ("const", None)
                return self.eval_expr(stmt.value, env)
            if isinstance(stmt, ast.Expr):
                if isinstance(stmt.value, ast.Constant):
                    continue  # docstring
                raise self.fail(stmt, "expression statement with effects")
            if isinstance(stmt, ast.Assert):
                continue
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Assign):
                self._do_assign(stmt, env)
                continue
            if isinstance(stmt, ast.AnnAssign):
                if stmt.value is None:
                    continue
                if not isinstance(stmt.target, ast.Name):
                    raise self.fail(stmt, "annotated non-name assignment")
                env[stmt.target.id] = self.eval_expr(stmt.value, env)
                continue
            if isinstance(stmt, ast.AugAssign):
                self._do_augassign(stmt, env)
                continue
            if isinstance(stmt, ast.With):
                # errstate-style wrappers are transparent; splice the body.
                for item in stmt.items:
                    if item.optional_vars is not None:
                        raise self.fail(stmt, "with ... as binding")
                return self.eval_block(list(stmt.body) + rest, env)
            if isinstance(stmt, ast.If):
                result = self._do_if(stmt, rest, env)
                if result is not None:
                    return result
                continue
            if isinstance(stmt, ast.For):
                self._do_fold_loop(stmt, env)
                continue
            raise self.fail(stmt, f"{type(stmt).__name__} statement")
        return ("const", None)

    def _do_assign(self, stmt: ast.Assign, env: Dict[str, Expr]) -> None:
        if len(stmt.targets) != 1:
            raise self.fail(stmt, "chained assignment")
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            env[target.id] = self.eval_expr(stmt.value, env)
            return
        if isinstance(target, ast.Tuple) and isinstance(stmt.value, ast.Tuple):
            if len(target.elts) != len(stmt.value.elts) or not all(
                isinstance(t, ast.Name) for t in target.elts
            ):
                raise self.fail(stmt, "irregular tuple assignment")
            values = [self.eval_expr(v, env) for v in stmt.value.elts]
            for t, v in zip(target.elts, values):
                env[t.id] = v  # type: ignore[union-attr]
            return
        raise self.fail(stmt, "assignment to a non-name target")

    def _do_augassign(self, stmt: ast.AugAssign, env: Dict[str, Expr]) -> None:
        if not isinstance(stmt.target, ast.Name):
            raise self.fail(stmt, "augmented assignment to a non-name")
        op = _BINOPS.get(type(stmt.op))
        if op is None:
            raise self.fail(stmt, "augmented assignment operator")
        current = env.get(stmt.target.id)
        if current is None:
            raise self.fail(stmt, "augmented assignment to an unbound name")
        env[stmt.target.id] = (
            "op", op, current, self.eval_expr(stmt.value, env)
        )

    def _do_if(
        self, stmt: ast.If, rest: List[ast.stmt], env: Dict[str, Expr]
    ) -> Optional[Expr]:
        """Handle one If; returns the block's value when it resolves here."""
        # Domain-check guard: ``if bad: raise`` contributes no arithmetic.
        if all(isinstance(s, ast.Raise) for s in stmt.body) and not stmt.orelse:
            return None
        # Fast-path guard: ``if mask.all(): return early`` -- recorded as a
        # specialization obligation against the fall-through trace.
        if (
            not stmt.orelse
            and len(stmt.body) == 1
            and isinstance(stmt.body[0], ast.Return)
            and stmt.body[0].value is not None
            and isinstance(stmt.test, ast.Call)
            and isinstance(stmt.test.func, ast.Attribute)
            and stmt.test.func.attr == "all"
            and not stmt.test.args
            and not stmt.test.keywords
        ):
            mask = self.eval_expr(stmt.test.func.value, env)
            early = self.eval_expr(stmt.body[0].value, env)
            self.guards.append((mask, early, stmt.lineno))
            return None
        cond = self.eval_expr(stmt.test, env)
        body_returns = _block_returns(stmt.body)
        orelse_returns = bool(stmt.orelse) and _block_returns(stmt.orelse)
        if body_returns:
            body_env = dict(env)
            body_value = self.eval_block(list(stmt.body), body_env)
            if orelse_returns:
                orelse_value = self.eval_block(list(stmt.orelse), dict(env))
                return ("select", cond, body_value, orelse_value)
            orelse_value = self.eval_block(list(stmt.orelse) + rest, env)
            return ("select", cond, body_value, orelse_value)
        if orelse_returns:
            orelse_value = self.eval_block(list(stmt.orelse), dict(env))
            self.eval_block(list(stmt.body), env)  # updates env in place
            return ("select", _canon(("not", cond)),
                    orelse_value, self.eval_block(rest, env))
        # Conditional assignment: merge per-branch bindings element-wise.
        body_env = dict(env)
        self.eval_block(list(stmt.body), body_env)
        orelse_env = dict(env)
        if stmt.orelse:
            self.eval_block(list(stmt.orelse), orelse_env)
        for name in set(body_env) | set(orelse_env):
            a = body_env.get(name, _UNDEF)
            b = orelse_env.get(name, _UNDEF)
            if a == b:
                env[name] = a
            else:
                env[name] = ("select", cond, a, b)
        return None

    # ------------------------------------------------------------ fold loops

    def _do_fold_loop(self, stmt: ast.For, env: Dict[str, Expr]) -> None:
        """Lower an accumulation loop into fold() bindings on its accumulators."""
        if stmt.orelse:
            raise self.fail(stmt, "for/else")
        loop_env = dict(env)
        index_var: Optional[str] = None
        start = 0
        iter_node = stmt.iter
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "zip"
        ):
            targets = (
                stmt.target.elts
                if isinstance(stmt.target, ast.Tuple)
                else [stmt.target]
            )
            if len(targets) != len(iter_node.args) or not all(
                isinstance(t, ast.Name) for t in targets
            ):
                raise self.fail(stmt, "zip loop with irregular targets")
            for target, seq in zip(targets, iter_node.args):
                loop_env[target.id] = (  # type: ignore[union-attr]
                    "elem", self.eval_expr(seq, env)
                )
        elif (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "range"
        ):
            if not isinstance(stmt.target, ast.Name):
                raise self.fail(stmt, "range loop with a non-name target")
            index_var = stmt.target.id
            loop_env[index_var] = ("sym", "<index>")
            if len(iter_node.args) >= 2:
                start_val = self._int_value(iter_node.args[0])
                if start_val is None:
                    raise self.fail(stmt, "range loop with opaque start")
                start = start_val
            if len(iter_node.args) == 3:
                step = self._int_value(iter_node.args[2])
                if step != 1:
                    raise self.fail(stmt, "range loop with step != 1")
        elif isinstance(stmt.target, ast.Name):
            loop_env[stmt.target.id] = (
                "elem", self.eval_expr(iter_node, env)
            )
        else:
            raise self.fail(stmt, "loop shape")

        self._index_var = index_var
        try:
            accumulators: List[Tuple[str, str, Expr]] = []
            for inner in stmt.body:
                if isinstance(inner, ast.Assign):
                    self._do_assign(inner, loop_env)
                    continue
                if isinstance(inner, ast.AugAssign) and isinstance(
                    inner.target, ast.Name
                ):
                    name = inner.target.id
                    op = _BINOPS.get(type(inner.op))
                    if op is None or name not in env:
                        raise self.fail(inner, "non-accumulating loop body")
                    term = self.eval_expr(inner.value, loop_env)
                    accumulators.append((name, op, term))
                    continue
                raise self.fail(inner, "non-accumulating loop body")
        finally:
            self._index_var = None
        if not accumulators:
            raise self.fail(stmt, "loop with no accumulator")
        for name, op, term in accumulators:
            env[name] = self._make_fold(stmt, op, _canon(term),
                                        _canon(env[name]), start)

    _index_var: Optional[str] = None

    def _make_fold(
        self, stmt: ast.For, op: str, term: Expr, init: Expr, start: int
    ) -> Expr:
        """Fuse an accumulator's init into its fold.

        The init must be the op-identity (``0.0`` for ``+``) with the loop
        starting at 0, or exactly the first ``start`` unrolled terms
        (``term[0] + term[1]`` with ``range(2, ...)``).
        """
        if init == ("const", 0.0) and op == "+":
            if start != 0:
                raise self.fail(
                    stmt, f"zero-init fold whose loop skips {start} term(s)"
                )
            return ("fold", op, term)
        unrolled: List[Expr] = []
        node = init
        while isinstance(node, tuple) and node[0] == "op" and node[1] == op:
            unrolled.insert(0, node[3])
            node = node[2]
        unrolled.insert(0, node)
        if len(unrolled) == start and all(
            unrolled[i] == _instantiate(term, i) for i in range(start)
        ):
            return ("fold", op, term)
        raise self.fail(
            stmt,
            "fold whose initial value is neither the identity nor the "
            "loop's own leading terms",
        )

    def _int_value(self, node: ast.expr) -> Optional[int]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return int(node.value)
        if isinstance(node, ast.Name) and node.id in self.constants:
            value = self.constants[node.id]
            if value == int(value):
                return int(value)
        return None

    # ----------------------------------------------------------- expressions

    def eval_expr(self, node: ast.expr, env: Dict[str, Expr]) -> Expr:
        if isinstance(node, ast.Constant):
            return _const(node.value)
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in self.constants:
                return ("const", self.constants[node.id])
            return ("sym", f"${node.id}")
        if isinstance(node, ast.Attribute):
            qual = self.source.qualname(node)
            if qual is not None:
                return ("sym", qual)
            base = self.eval_expr(node.value, env)
            if base[0] == "sym":
                return ("sym", f"{base[1]}.{node.attr}")
            raise self.fail(node, "attribute on a computed value")
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise self.fail(node, "binary operator")
            return ("op", op, self.eval_expr(node.left, env),
                    self.eval_expr(node.right, env))
        if isinstance(node, ast.UnaryOp):
            operand = self.eval_expr(node.operand, env)
            if isinstance(node.op, ast.USub):
                if operand[0] == "const" and isinstance(
                    operand[1], float
                ):
                    return ("const", -operand[1])
                return ("op", "neg", operand)
            if isinstance(node.op, ast.UAdd):
                return operand
            if isinstance(node.op, (ast.Not, ast.Invert)):
                return ("not", operand)
            raise self.fail(node, "unary operator")
        if isinstance(node, ast.Compare):
            return self._eval_compare(node, env)
        if isinstance(node, ast.BoolOp):
            tag = "and" if isinstance(node.op, ast.And) else "or"
            return (tag, *[self.eval_expr(v, env) for v in node.values])
        if isinstance(node, ast.IfExp):
            return ("select", self.eval_expr(node.test, env),
                    self.eval_expr(node.body, env),
                    self.eval_expr(node.orelse, env))
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        raise self.fail(node, f"{type(node).__name__} expression")

    def _eval_compare(self, node: ast.Compare, env: Dict[str, Expr]) -> Expr:
        terms: List[Expr] = []
        left = node.left
        for cmp_op, right in zip(node.ops, node.comparators):
            a = self.eval_expr(left, env)
            b = self.eval_expr(right, env)
            if type(cmp_op) in _CMPOPS:
                terms.append(("op", _CMPOPS[type(cmp_op)], a, b))
            elif type(cmp_op) in _SWAPPED_CMPOPS:
                terms.append(("op", _SWAPPED_CMPOPS[type(cmp_op)], b, a))
            else:
                raise self.fail(node, "comparison operator")
            left = right
        return terms[0] if len(terms) == 1 else ("and", *terms)

    def _eval_call(self, node: ast.Call, env: Dict[str, Expr]) -> Expr:
        if any(kw.arg is None for kw in node.keywords):
            raise self.fail(node, "call with **kwargs")
        name = self.source.call_qualname(node)
        bare = node.func.id if isinstance(node.func, ast.Name) else None
        key = name or bare
        args = [self.eval_expr(a, env) for a in node.args]
        if key in _TRANSPARENT_CALLS and args:
            return args[0]
        if key in ("numpy.full_like", "numpy.full") and len(args) >= 2:
            return args[1]
        if key == "numpy.zeros_like":
            return ("const", 0.0)
        if key == "numpy.ones_like":
            return ("const", 1.0)
        if key == "numpy.where" and len(args) == 3:
            return ("select", args[0], args[1], args[2])
        if key in _OP_CALLS:
            return ("op", _OP_CALLS[key], *args)
        if (
            isinstance(node.func, ast.Attribute)
            and name is None
            and node.func.attr in ("all", "any")
            and not args
        ):
            return ("op", node.func.attr,
                    self.eval_expr(node.func.value, env))
        if key is None:
            raise self.fail(node, "call on a computed target")
        canonical = self.call_map.get(key, key)
        kwargs = tuple(
            ("kw", kw.arg, self.eval_expr(kw.value, env))
            for kw in sorted(node.keywords, key=lambda k: k.arg or "")
        )
        return ("call", canonical, *args, *kwargs)

    def _eval_subscript(self, node: ast.Subscript, env: Dict[str, Expr]) -> Expr:
        base = self.eval_expr(node.value, env)
        index = node.slice
        if isinstance(index, ast.Tuple) and len(index.elts) == 2:
            first, second = index.elts
            if (
                isinstance(first, ast.Slice)
                and first.lower is None
                and first.upper is None
                and first.step is None
            ):
                index = second  # x[:, j] -> per-element column j
            else:
                raise self.fail(node, "subscript slice shape")
        if isinstance(index, ast.Slice):
            raise self.fail(node, "slice subscript")
        if (
            isinstance(index, ast.Name)
            and self._index_var is not None
            and index.id == self._index_var
        ):
            return ("elem", base)
        return ("elem@", base, self.eval_expr(index, env))


def _block_returns(stmts: Sequence[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(stmts[-1], ast.Return)


def _const(value: Any) -> Expr:
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return ("const", value)
    if isinstance(value, (int, float)):
        return ("const", float(value))
    return ("const", repr(value))


def _instantiate(term: Expr, index: int) -> Expr:
    """``term`` with the symbolic element index pinned to ``index``."""
    if not isinstance(term, tuple):
        return term
    if term[0] == "elem":
        return ("elem@", _instantiate(term[1], index), ("const", float(index)))
    return tuple(
        _instantiate(part, index) if isinstance(part, tuple) else part
        for part in term
    )


# ------------------------------------------------------- canonicalization


_ELEMENTWISE_OPS = frozenset(
    {"+", "-", "*", "/", "sqrt", "min", "max", "abs", "neg",
     "lt", "le", "eq", "ne", "pow"}
)


def _canon(expr: Expr) -> Expr:
    """Recursive canonicalization to one normal form per semantics."""
    if not isinstance(expr, tuple) or expr[0] in ("const", "sym"):
        return expr
    expr = tuple(
        _canon(part) if isinstance(part, tuple) else part for part in expr
    )
    tag = expr[0]
    # select over a conjunction/disjunction distributes into nested selects,
    # matching how scalar code fuses flag-and-mask conditions.
    if tag == "select":
        cond, then, other = expr[1], expr[2], expr[3]
        if cond[0] == "not":
            return _canon(("select", cond[1], other, then))
        if cond[0] == "and":
            rest = cond[2] if len(cond) == 3 else ("and", *cond[2:])
            return _canon(
                ("select", cond[1], ("select", rest, then, other), other)
            )
        if cond[0] == "or":
            rest = cond[2] if len(cond) == 3 else ("or", *cond[2:])
            return _canon(
                ("select", cond[1], then, ("select", rest, then, other))
            )
        if cond[0] == "const":
            return then if cond[1] is True else other if cond[1] is False else expr
        return ("select", cond, then, other)
    if tag == "not":
        inner = expr[1]
        if inner[0] == "not":
            return inner[1]
        return expr
    # element indexing distributes over element-wise ops and broadcasts
    # through scalars: (x * y)[j] == x[j] * y[j], c[j] == c.
    if tag in ("elem", "elem@"):
        base = expr[1]
        if base[0] == "const":
            return base
        if base[0] == "op" and base[1] in _ELEMENTWISE_OPS:
            return _canon(
                ("op", base[1], *[_rewrap(expr, arg) for arg in base[2:]])
            )
        if base[0] == "select":
            return _canon(
                ("select", *[_rewrap(expr, arg) for arg in base[1:]])
            )
        return expr
    return expr


def _rewrap(elem_expr: Expr, base: Expr) -> Expr:
    """Apply ``elem_expr``'s indexing to a new base."""
    if elem_expr[0] == "elem":
        return ("elem", base)
    return ("elem@", base, elem_expr[2])


def _specialize(expr: Expr, mask: Expr) -> Expr:
    """``expr`` under the assumption that ``mask`` holds everywhere."""
    if not isinstance(expr, tuple) or expr[0] in ("const", "sym"):
        return expr
    if expr == mask:
        return ("const", True)
    if expr[0] == "select" and expr[1] == mask:
        return _specialize(expr[2], mask)
    return tuple(
        _specialize(part, mask) if isinstance(part, tuple) else part
        for part in expr
    )
