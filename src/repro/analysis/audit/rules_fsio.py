"""Fs-commit-protocol rules (``fsio.*``).

The sweep fabric's durability story (PR 7's chaos soak) holds only if
every durable queue/cache file commits through the blessed atomic
helpers in :mod:`repro.scenarios._fsio` -- tmp file, ``allow_nan=False``
JSON, fsync, atomic rename.  A raw ``open(..., "w")`` anywhere in the
scenarios tree reintroduces the torn-write bug class the soak chases
dynamically, so these rules make the protocol a static invariant:
content writes outside ``_fsio.py`` are findings, with inline
suppressions for the deliberate exceptions (the fault injector's
``write_torn`` *is* a simulated torn write).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.audit.engine import (
    AuditConfig,
    Rule,
    SourceFile,
    file_checker,
)
from repro.analysis.audit.records import AuditRecord

RULE_RAW_WRITE = Rule(
    id="fsio.raw-write",
    summary="raw content write in the scenarios tree outside _fsio",
    hint="route the write through repro.scenarios._fsio.atomic_write_json "
    "(tmp + fsync + rename) so a crash can never leave a torn file",
)
RULE_STREAM_DUMP = Rule(
    id="fsio.stream-dump",
    summary="streaming json.dump in the scenarios tree outside _fsio",
    hint="json.dump straight onto a file handle tears on crash; use "
    "repro.scenarios._fsio.atomic_write_json",
)

#: open() modes that create/truncate content at the target path.
_WRITE_MODES = ("w", "x")

_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _write_mode(call: ast.Call) -> Optional[str]:
    """The mode string when ``call`` opens a file for writing, else None.

    Handles ``open(path, "w")`` / ``path.open("w")`` positionally and via
    ``mode=``.  Append mode is not a content write (the queue's clock
    sentinel touches files with ``"a"`` purely for their mtime).
    """
    mode_arg: Optional[ast.expr] = None
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        if len(call.args) >= 2:
            mode_arg = call.args[1]
    elif isinstance(call.func, ast.Attribute) and call.func.attr == "open":
        if len(call.args) >= 1:
            mode_arg = call.args[0]
    else:
        return None
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_arg = keyword.value
    if isinstance(mode_arg, ast.Constant) and isinstance(mode_arg.value, str):
        mode = mode_arg.value
        if any(flag in mode for flag in _WRITE_MODES):
            return mode
    return None


@file_checker(RULE_RAW_WRITE, RULE_STREAM_DUMP)
def check_fsio(source: SourceFile, config: AuditConfig) -> Iterator[AuditRecord]:
    if not source.rel_path.startswith(config.fsio_prefix):
        return
    if source.rel_path in config.fsio_blessed:
        return
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        mode = _write_mode(node)
        if mode is not None:
            yield AuditRecord(
                rule=RULE_RAW_WRITE.id,
                path=source.rel_path,
                line=node.lineno,
                severity=RULE_RAW_WRITE.severity,
                detail=f'raw open(..., "{mode}") outside the blessed '
                "atomic-write helper",
                hint=RULE_RAW_WRITE.hint,
            )
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _WRITE_METHODS
        ):
            yield AuditRecord(
                rule=RULE_RAW_WRITE.id,
                path=source.rel_path,
                line=node.lineno,
                severity=RULE_RAW_WRITE.severity,
                detail=f".{node.func.attr}() outside the blessed "
                "atomic-write helper",
                hint=RULE_RAW_WRITE.hint,
            )
            continue
        if source.call_qualname(node) == "json.dump":
            yield AuditRecord(
                rule=RULE_STREAM_DUMP.id,
                path=source.rel_path,
                line=node.lineno,
                severity=RULE_STREAM_DUMP.severity,
                detail="json.dump streams straight onto a file handle",
                hint=RULE_STREAM_DUMP.hint,
            )
