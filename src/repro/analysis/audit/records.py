"""The findings-record schema shared by ``tfrc-audit`` and ``tfrc-sweep-fsck``.

Both tools report problems as a list of flat JSON records with the same
canonical keys -- ``rule`` (a dotted rule/kind identifier), ``path``
(repo-relative where possible), ``line`` (0 when the finding is not
line-anchored, as fsck's never are), ``severity`` (``error`` or
``warning``), and ``detail`` (one human sentence) -- so dashboards and CI
artifact consumers parse one schema regardless of which tool produced it.
Tool-specific extras ride along as additional keys (``hint`` for audit
fix suggestions, ``repaired`` for fsck repairs) without breaking the
shared core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: the keys every findings record carries, in canonical order.
RECORD_KEYS = ("rule", "path", "line", "severity", "detail")


def finding_record(
    *,
    rule: str,
    path: str,
    detail: str,
    line: int = 0,
    severity: str = SEVERITY_ERROR,
    **extras: Any,
) -> Dict[str, Any]:
    """One canonical findings record (plus tool-specific ``extras``)."""
    record: Dict[str, Any] = {
        "rule": str(rule),
        "path": str(path),
        "line": int(line),
        "severity": str(severity),
        "detail": str(detail),
    }
    for key, value in sorted(extras.items()):
        if value not in (None, ""):
            record[key] = value
    return record


def read_findings(payload: Any) -> List[Dict[str, Any]]:
    """Parse either tool's ``--json`` output into canonical records.

    Accepts the full document (``{"findings": [...]}``) or a bare list;
    raises :class:`ValueError` on records missing a canonical key, so a
    schema regression in either tool fails loudly in whatever consumes
    the CI artifacts.
    """
    findings = payload.get("findings") if isinstance(payload, dict) else payload
    if not isinstance(findings, list):
        raise ValueError("findings payload is not a list")
    records: List[Dict[str, Any]] = []
    for index, entry in enumerate(findings):
        if not isinstance(entry, dict):
            raise ValueError(f"finding #{index} is not an object")
        missing = [key for key in RECORD_KEYS if key not in entry]
        if missing:
            raise ValueError(
                f"finding #{index} is missing canonical keys {missing}"
            )
        records.append(entry)
    return records


@dataclass(frozen=True)
class AuditRecord:
    """One static-analysis finding, ready for text or JSON output."""

    rule: str
    path: str  # repo-root-relative, POSIX separators
    line: int
    severity: str
    detail: str
    hint: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path

    def to_dict(self) -> Dict[str, Any]:
        return finding_record(
            rule=self.rule,
            path=self.path,
            line=self.line,
            severity=self.severity,
            detail=self.detail,
            hint=self.hint,
        )

    def render(self) -> str:
        text = f"{self.location}: {self.severity}: [{self.rule}] {self.detail}"
        return f"{text}\n    hint: {self.hint}" if self.hint else text
