"""Registry-coherence rules (``registry.*``).

The scenario registry (``@register_scenario`` in
:mod:`repro.scenarios.spec`), the executor registry
(``EXECUTOR_NAMES`` in :mod:`repro.scenarios.executors`, the
``SweepExecutor`` subclasses' ``name`` attributes, the CLI's
``--executor`` choices), and every string that *references* those names
are maintained by hand in different files.  They drift silently: a
renamed executor still passes its own tests, but ``--executor vector``
stops resolving; a typo'd ``ScenarioSpec(scenario=...)`` literal only
fails at run time.  This checker cross-references all of them in one
pass over the corpus.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.audit.engine import (
    AuditConfig,
    Rule,
    SourceFile,
    project_checker,
)
from repro.analysis.audit.records import AuditRecord

RULE_DUPLICATE = Rule(
    id="registry.duplicate-scenario",
    summary="two @register_scenario functions claim the same name",
    hint="the second registration overwrites the first at import time; "
    "rename one",
)
RULE_EXECUTOR_DRIFT = Rule(
    id="registry.executor-name-drift",
    summary="executor name tables disagree",
    hint="EXECUTOR_NAMES, the SweepExecutor subclasses' name attributes, "
    "CLI --executor choices, and string comparisons must all agree",
)
RULE_UNREGISTERED = Rule(
    id="registry.unregistered-scenario-ref",
    summary="scenario-name literal not in the @register_scenario registry",
    hint="register the scenario or fix the name; unknown names only "
    "fail when the spec is executed",
)


def _module_constants(source: SourceFile) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` string constants."""
    constants: Dict[str, str] = {}
    for node in source.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = value.value
    return constants


def _resolve_name_literal(
    source: SourceFile, node: ast.expr, constants: Dict[str, str]
) -> Optional[str]:
    """A string literal, or a module constant holding one, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None


def _is_call_to(source: SourceFile, call: ast.Call, bare: str) -> bool:
    """Does ``call`` invoke ``bare`` (directly or as a module attribute)?"""
    if isinstance(call.func, ast.Name) and call.func.id == bare:
        return True
    qual = source.qualname(call.func)
    return qual is not None and qual.endswith("." + bare)


@project_checker(RULE_DUPLICATE, RULE_EXECUTOR_DRIFT, RULE_UNREGISTERED)
def check_registry_coherence(
    corpus: Sequence[SourceFile], config: AuditConfig
) -> Iterator[AuditRecord]:
    src = [s for s in corpus if s.rel_path.startswith(config.src_prefix)]
    constants = {s.rel_path: _module_constants(s) for s in src}

    # ------------------------------------------------ scenario registrations
    registered: Dict[str, Tuple[str, int]] = {}
    for source in src:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for decorator in node.decorator_list:
                if not (
                    isinstance(decorator, ast.Call)
                    and decorator.args
                    and _is_call_to(source, decorator, "register_scenario")
                ):
                    continue
                name = _resolve_name_literal(
                    source, decorator.args[0], constants[source.rel_path]
                )
                if name is None:
                    continue
                if name in registered:
                    prev_path, prev_line = registered[name]
                    yield AuditRecord(
                        rule=RULE_DUPLICATE.id,
                        path=source.rel_path,
                        line=decorator.lineno,
                        severity=RULE_DUPLICATE.severity,
                        detail=f"scenario {name!r} already registered at "
                        f"{prev_path}:{prev_line}",
                        hint=RULE_DUPLICATE.hint,
                    )
                else:
                    registered[name] = (source.rel_path, decorator.lineno)

    # --------------------------------------------------- executor name tables
    executor_names: List[str] = []
    executor_names_at: Tuple[str, int] = ("", 0)
    class_names: Dict[str, Tuple[str, int]] = {}
    for source in src:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "EXECUTOR_NAMES"
                        and isinstance(node.value, (ast.Tuple, ast.List))
                    ):
                        executor_names = [
                            e.value
                            for e in node.value.elts
                            if isinstance(e, ast.Constant)
                            and isinstance(e.value, str)
                        ]
                        executor_names_at = (source.rel_path, node.lineno)
            elif isinstance(node, ast.ClassDef):
                bases = {
                    base.id if isinstance(base, ast.Name) else base.attr
                    for base in node.bases
                    if isinstance(base, (ast.Name, ast.Attribute))
                }
                if "SweepExecutor" not in bases:
                    continue
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.Assign)
                        and any(
                            isinstance(t, ast.Name) and t.id == "name"
                            for t in stmt.targets
                        )
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, str)
                    ):
                        class_names[stmt.value.value] = (
                            source.rel_path,
                            stmt.lineno,
                        )

    table = set(executor_names)
    for name, (path, line) in sorted(class_names.items()):
        if name not in table:
            yield AuditRecord(
                rule=RULE_EXECUTOR_DRIFT.id,
                path=path,
                line=line,
                severity=RULE_EXECUTOR_DRIFT.severity,
                detail=f"SweepExecutor subclass claims name {name!r}, "
                f"absent from EXECUTOR_NAMES "
                f"({executor_names_at[0]}:{executor_names_at[1]})",
                hint=RULE_EXECUTOR_DRIFT.hint,
            )
    for name in executor_names:
        if name not in class_names:
            yield AuditRecord(
                rule=RULE_EXECUTOR_DRIFT.id,
                path=executor_names_at[0],
                line=executor_names_at[1],
                severity=RULE_EXECUTOR_DRIFT.severity,
                detail=f"EXECUTOR_NAMES lists {name!r} but no "
                "SweepExecutor subclass claims it",
                hint=RULE_EXECUTOR_DRIFT.hint,
            )

    # -------------------------------- references to executor/scenario names
    for source in src:
        consts = constants[source.rel_path]
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Compare) and table:
                yield from _check_executor_compare(source, node, table)
            if not isinstance(node, ast.Call):
                continue
            yield from _check_executor_cli(source, node)
            # scenario references
            ref: Optional[str] = None
            if _is_call_to(source, node, "ScenarioSpec"):
                for keyword in node.keywords:
                    if keyword.arg == "scenario":
                        ref = _resolve_name_literal(source, keyword.value, consts)
                if ref is None and node.args:
                    ref = _resolve_name_literal(source, node.args[0], consts)
            elif _is_call_to(source, node, "get_scenario") and node.args:
                ref = _resolve_name_literal(source, node.args[0], consts)
            if ref is not None and ref not in registered:
                yield AuditRecord(
                    rule=RULE_UNREGISTERED.id,
                    path=source.rel_path,
                    line=node.lineno,
                    severity=RULE_UNREGISTERED.severity,
                    detail=f"scenario name {ref!r} has no "
                    "@register_scenario registration",
                    hint=RULE_UNREGISTERED.hint,
                )


def _mentions_executor(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return "executor" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "executor" in node.attr.lower()
    return False


def _check_executor_compare(
    source: SourceFile, node: ast.Compare, table: set
) -> Iterator[AuditRecord]:
    """``something_executor == "literal"`` with an unknown literal."""
    operands = [node.left, *node.comparators]
    if not any(_mentions_executor(op) for op in operands):
        return
    for op in operands:
        if (
            isinstance(op, ast.Constant)
            and isinstance(op.value, str)
            and op.value not in table
        ):
            yield AuditRecord(
                rule=RULE_EXECUTOR_DRIFT.id,
                path=source.rel_path,
                line=node.lineno,
                severity=RULE_EXECUTOR_DRIFT.severity,
                detail=f"executor compared against {op.value!r}, which is "
                "not in EXECUTOR_NAMES",
                hint=RULE_EXECUTOR_DRIFT.hint,
            )


def _check_executor_cli(
    source: SourceFile, node: ast.Call
) -> Iterator[AuditRecord]:
    """``add_argument("--executor", ...)`` must take choices=EXECUTOR_NAMES."""
    if not (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "add_argument"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "--executor"
    ):
        return
    for keyword in node.keywords:
        if keyword.arg == "choices":
            value = keyword.value
            if isinstance(value, ast.Name) and value.id == "EXECUTOR_NAMES":
                return
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "EXECUTOR_NAMES"
            ):
                return
            yield AuditRecord(
                rule=RULE_EXECUTOR_DRIFT.id,
                path=source.rel_path,
                line=node.lineno,
                severity=RULE_EXECUTOR_DRIFT.severity,
                detail="--executor choices is not the shared "
                "EXECUTOR_NAMES table",
                hint=RULE_EXECUTOR_DRIFT.hint,
            )
            return
    yield AuditRecord(
        rule=RULE_EXECUTOR_DRIFT.id,
        path=source.rel_path,
        line=node.lineno,
        severity=RULE_EXECUTOR_DRIFT.severity,
        detail="--executor defined without choices=EXECUTOR_NAMES",
        hint=RULE_EXECUTOR_DRIFT.hint,
    )
