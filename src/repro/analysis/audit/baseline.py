"""The committed findings baseline: the zero-new-findings gate.

``audit_baseline.json`` (committed at the repo root) records every
finding the team has explicitly decided to live with -- each entry
carries a **justification**, and ``--check-baseline`` fails when one is
missing, so a finding can never be waved through by silently editing the
baseline.  Entries are keyed by a line-number-free fingerprint
(rule + path + detail), so unrelated edits shifting a file do not churn
the baseline, while any change to the finding itself (or its file)
surfaces as a *new* finding again.

The intended state of the baseline is empty: fix or suppress findings at
the source, and reserve baseline entries for violations that are real
but deliberately deferred.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.audit.records import AuditRecord

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """A malformed or unjustified baseline file."""


def fingerprint(record: AuditRecord) -> str:
    """Line-number-free identity of a finding."""
    blob = f"{record.rule}\x00{record.path}\x00{record.detail}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: Path) -> Dict[str, Dict[str, Any]]:
    """Baseline entries keyed by fingerprint; {} when the file is absent."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return {}
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise BaselineError(f"unparseable baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(
        payload.get("findings"), list
    ):
        raise BaselineError(f"baseline {path} is not a findings document")
    entries: Dict[str, Dict[str, Any]] = {}
    for index, entry in enumerate(payload["findings"]):
        if not isinstance(entry, dict) or not isinstance(
            entry.get("fingerprint"), str
        ):
            raise BaselineError(
                f"baseline {path}: entry #{index} has no fingerprint"
            )
        entries[entry["fingerprint"]] = entry
    return entries


def unjustified(entries: Dict[str, Dict[str, Any]]) -> List[str]:
    """Fingerprints whose entries lack a written justification."""
    return sorted(
        fp
        for fp, entry in entries.items()
        if not str(entry.get("justification", "")).strip()
    )


def apply_baseline(
    findings: Sequence[AuditRecord], entries: Dict[str, Dict[str, Any]]
) -> Tuple[List[AuditRecord], int, List[str]]:
    """``(new_findings, baselined_count, stale_fingerprints)``."""
    seen: set = set()
    new: List[AuditRecord] = []
    baselined = 0
    for record in findings:
        fp = fingerprint(record)
        if fp in entries:
            seen.add(fp)
            baselined += 1
        else:
            new.append(record)
    stale = sorted(set(entries) - seen)
    return new, baselined, stale


def write_baseline(
    path: Path,
    findings: Sequence[AuditRecord],
    existing: Optional[Dict[str, Dict[str, Any]]] = None,
) -> int:
    """(Re)write the baseline for ``findings``; returns the entry count.

    Justifications from ``existing`` entries are preserved; genuinely new
    entries get an empty justification, which ``--check-baseline``
    rejects until a human writes one -- that is the undocumented-edit
    gate.
    """
    existing = existing or {}
    entries = []
    for record in sorted(
        findings, key=lambda r: (r.path, r.line, r.rule, r.detail)
    ):
        fp = fingerprint(record)
        entries.append(
            {
                "fingerprint": fp,
                "rule": record.rule,
                "path": record.path,
                "detail": record.detail,
                "justification": str(
                    existing.get(fp, {}).get("justification", "")
                ),
            }
        )
    payload = {
        "tool": "tfrc-audit",
        "version": BASELINE_VERSION,
        "findings": entries,
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return len(entries)
