"""Send-rate time series: paper Equation (2).

``R_{tau,F}(t) = (packets sent by F between t and t+tau) * s / tau``

We measure at the receiver (delivered bytes), matching how the paper's
figures are computed from simulator traces.  The series for flow F between
``t0`` and ``t1`` with timescale ``tau`` is the vector of R values at
``t0, t0+tau, t0+2 tau, ...``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def arrivals_to_rate_series(
    arrivals: Sequence[Tuple[float, int]],
    t0: float,
    t1: float,
    tau: float,
) -> np.ndarray:
    """Bin (time, bytes) arrival events into a bytes/second rate series.

    Args:
        arrivals: time-ordered ``(time, size_bytes)`` pairs.
        t0, t1: measurement window; bins cover [t0, t1) in steps of tau.
        tau: timescale in seconds (paper Eq. 2's tau).

    Returns:
        numpy array of length ``floor((t1-t0)/tau)`` with the average rate
        (bytes/second) in each bin.
    """
    if tau <= 0:
        raise ValueError("tau must be positive")
    if t1 <= t0:
        raise ValueError("need t1 > t0")
    n_bins = int((t1 - t0) / tau)
    if n_bins == 0:
        raise ValueError("window shorter than one timescale bin")
    binned = np.zeros(n_bins)
    for time, size in arrivals:
        if time < t0 or time >= t0 + n_bins * tau:
            continue
        binned[int((time - t0) / tau)] += size
    return binned / tau


def rate_series(
    arrivals: Sequence[Tuple[float, int]],
    t0: float,
    t1: float,
    tau: float,
) -> np.ndarray:
    """Alias of :func:`arrivals_to_rate_series` named after paper Eq. (2)."""
    return arrivals_to_rate_series(arrivals, t0, t1, tau)


def normalized_throughputs(
    per_flow_bytes: dict,
    duration: float,
    link_bps: float,
    flow_count: int,
) -> dict:
    """Per-flow throughput normalized so that 1.0 = a fair share of the link.

    Used by the fairness figures: ``normalized = rate / (link / n_flows)``.
    """
    if duration <= 0 or link_bps <= 0 or flow_count <= 0:
        raise ValueError("duration, link_bps and flow_count must be positive")
    fair_share = link_bps / flow_count
    return {
        flow: (total_bytes * 8 / duration) / fair_share
        for flow, total_bytes in per_flow_bytes.items()
    }
