"""Coefficient of variation: the paper's smoothness metric.

"The coefficient of variation (CoV), which is the ratio of standard
deviation to the average, of this time series can be used as a measure of
variability of the sending rate of the flow at timescale tau.  A lower value
implies a smoother flow." (section 4.1.1, citing Jain 1991)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def coefficient_of_variation(series: Sequence[float]) -> float:
    """CoV = std / mean of a rate time series.

    Returns 0 for an all-zero or empty series (a silent flow is trivially
    smooth); population standard deviation is used, matching the customary
    definition.
    """
    values = np.asarray(series, dtype=float)
    if values.size == 0:
        return 0.0
    mean = values.mean()
    if mean == 0:
        return 0.0
    return float(values.std() / mean)


def cov_vs_timescale(
    arrivals,
    t0: float,
    t1: float,
    timescales: Sequence[float],
) -> dict:
    """CoV of one flow's rate series at each requested timescale."""
    from repro.analysis.timeseries import arrivals_to_rate_series

    return {
        tau: coefficient_of_variation(arrivals_to_rate_series(arrivals, t0, t1, tau))
        for tau in timescales
    }
