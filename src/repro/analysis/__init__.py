"""Analysis layer: the paper's measurement methodology.

* :mod:`~repro.analysis.timeseries` -- send-rate time series R_tau (Eq. 2).
* :mod:`~repro.analysis.cov` -- coefficient of variation of a rate series
  (the paper's smoothness metric, Figures 10/13/17).
* :mod:`~repro.analysis.equivalence` -- the equivalence ratio between two
  flows (Eq. 3, Figures 9/12/16).
* :mod:`~repro.analysis.bernoulli` -- loss fraction vs loss-event fraction
  under a Bernoulli loss model (section 3.5.1, Figure 5).
* :mod:`~repro.analysis.predictor` -- loss-predictor error methodology of
  section 4.4 (Figure 18).
* :mod:`~repro.analysis.stats` -- means, confidence intervals.
* :mod:`~repro.analysis.charts` -- plain-text line/bar/sparkline charts
  used by the experiment CLI's ``--plot`` mode.
"""

from repro.analysis.timeseries import arrivals_to_rate_series, rate_series
from repro.analysis.cov import coefficient_of_variation
from repro.analysis.equivalence import equivalence_ratio, equivalence_series
from repro.analysis.bernoulli import (
    loss_event_fraction_analytic,
    simulate_loss_event_fraction,
)
from repro.analysis.predictor import (
    predictor_errors,
    weighted_interval_predictor,
)
from repro.analysis.selfsimilarity import (
    expected_hurst_for_pareto,
    hurst_variance_time,
)
from repro.analysis.stats import (
    confidence_interval,
    jain_fairness_index,
    mean_and_ci,
)
from repro.analysis.charts import histogram, line_chart, sparkline

__all__ = [
    "rate_series",
    "arrivals_to_rate_series",
    "coefficient_of_variation",
    "equivalence_series",
    "equivalence_ratio",
    "loss_event_fraction_analytic",
    "simulate_loss_event_fraction",
    "predictor_errors",
    "weighted_interval_predictor",
    "confidence_interval",
    "mean_and_ci",
    "jain_fairness_index",
    "hurst_variance_time",
    "expected_hurst_for_pareto",
    "line_chart",
    "histogram",
    "sparkline",
]
