"""Equivalence ratio between two flows: paper Equation (3).

``e(t) = min( Ra(t)/Rb(t), Rb(t)/Ra(t) )`` defined when at least one rate is
non-zero; the *equivalence ratio* at timescale tau is the mean of the
defined elements over the measurement window.  A value near 1 means the
two flows received near-identical bandwidth at that timescale.  The paper
uses the mean rather than the median "to capture the impact of any
outliers" (section 4.1.1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def equivalence_series(
    series_a: Sequence[float], series_b: Sequence[float]
) -> List[Optional[float]]:
    """Pointwise equivalence e(t); None where both rates are zero."""
    a = np.asarray(series_a, dtype=float)
    b = np.asarray(series_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"series length mismatch: {a.shape} vs {b.shape}")
    out: List[Optional[float]] = []
    for ra, rb in zip(a, b):
        if ra == 0 and rb == 0:
            out.append(None)  # undefined; excluded from the ratio
        elif ra == 0 or rb == 0:
            out.append(0.0)
        else:
            # min(ra/rb, rb/ra) == min/max; dividing the smaller by the
            # larger also avoids float overflow on extreme rate ratios.
            out.append(float(min(ra, rb) / max(ra, rb)))
    return out


def equivalence_ratio(
    series_a: Sequence[float], series_b: Sequence[float]
) -> float:
    """Mean of the defined pointwise equivalences (paper's metric).

    Returns ``nan`` when no element is defined (both flows silent for the
    entire window) so callers can distinguish "no data" from "unfair".
    """
    values = [e for e in equivalence_series(series_a, series_b) if e is not None]
    if not values:
        return float("nan")
    return float(np.mean(values))


def pairwise_equivalence(
    series_by_flow: dict, pairs: Sequence[tuple]
) -> float:
    """Mean equivalence ratio over a set of flow pairs.

    The paper reports mean equivalence between pairs of TCP flows, pairs of
    TFRC flows, and TCP/TFRC pairs; this helper averages Eq. (3) over any
    such pairing.
    """
    ratios = []
    for flow_a, flow_b in pairs:
        ratio = equivalence_ratio(series_by_flow[flow_a], series_by_flow[flow_b])
        if not np.isnan(ratio):
            ratios.append(ratio)
    if not ratios:
        return float("nan")
    return float(np.mean(ratios))
