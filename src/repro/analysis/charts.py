"""Plain-text charts for experiment output.

The paper's figures are line plots and scatter plots; this environment has
no plotting toolkit, so the experiment runner renders Unicode/ASCII charts
instead.  Charts aim for "readable in a terminal and in EXPERIMENTS.md
code blocks", not publication typography:

* :func:`line_chart` -- one or more ``(x, y)`` series on shared axes,
  each series drawn with its own glyph;
* :func:`histogram` -- horizontal bars for categorical/binned data;
* :func:`sparkline` -- a one-line rate trace for compact summaries.

All functions return strings; nothing prints directly, so callers can
route output to files or stdout as they wish.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

_GLYPHS = "*o+x#@%&"
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _finite_points(series: Series) -> List[Tuple[float, float]]:
    return [
        (float(x), float(y))
        for x, y in series
        if math.isfinite(x) and math.isfinite(y)
    ]


def _axis_bounds(values: Sequence[float]) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        pad = abs(lo) * 0.1 or 1.0
        return lo - pad, hi + pad
    return lo, hi


def line_chart(
    series: Dict[str, Series],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    log_x: bool = False,
) -> str:
    """Render named ``(x, y)`` series as a text scatter/line chart.

    Args:
        series: mapping from series name to its points; each series gets a
            distinct glyph, listed in the legend.
        width, height: plot-area size in character cells.
        log_x: place points on a logarithmic x axis (timescale sweeps).

    Points sharing a cell are drawn with the glyph of the *first* series
    plotted there (legend order).  Empty or all-NaN input yields a chart
    frame with a "no data" note rather than raising, so a failed
    experiment still renders a report.
    """
    if width < 16 or height < 4:
        raise ValueError("chart must be at least 16x4 cells")
    cleaned = {name: _finite_points(pts) for name, pts in series.items()}
    all_points = [p for pts in cleaned.values() for p in pts]
    lines: List[str] = []
    if title:
        lines.append(title)
    if not all_points:
        lines.append("(no data)")
        return "\n".join(lines)

    def x_of(value: float) -> float:
        return math.log10(value) if log_x else value

    xs = [x_of(x) for x, _ in all_points if not log_x or x > 0]
    ys = [y for _, y in all_points]
    if not xs:
        lines.append("(no data on a positive log axis)")
        return "\n".join(lines)
    x_lo, x_hi = _axis_bounds(xs)
    y_lo, y_hi = _axis_bounds(ys)

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(cleaned.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in points:
            if log_x and x <= 0:
                continue
            col = round((x_of(x) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            cell = grid[height - 1 - row][col]
            if cell == " ":
                grid[height - 1 - row][col] = glyph

    y_hi_text = f"{y_hi:.4g}"
    y_lo_text = f"{y_lo:.4g}"
    margin = max(len(y_hi_text), len(y_lo_text)) + 1
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = y_hi_text.rjust(margin - 1)
        elif i == height - 1:
            label = y_lo_text.rjust(margin - 1)
        else:
            label = " " * (margin - 1)
        lines.append(f"{label}|{''.join(row_cells)}")
    lines.append(" " * margin + "-" * width)
    x_lo_text = f"{10 ** x_lo:.4g}" if log_x else f"{x_lo:.4g}"
    x_hi_text = f"{10 ** x_hi:.4g}" if log_x else f"{x_hi:.4g}"
    footer = " " * margin + x_lo_text
    footer += " " * max(1, width - len(x_lo_text) - len(x_hi_text)) + x_hi_text
    lines.append(footer)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, name in enumerate(cleaned)
    )
    caption_parts = [part for part in (y_label, "vs", x_label) if part]
    if x_label or y_label:
        lines.append(" " * margin + " ".join(caption_parts))
    lines.append(" " * margin + legend)
    return "\n".join(lines)


def histogram(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one labelled bar per value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    finite = [v for v in values if math.isfinite(v)]
    peak = max((abs(v) for v in finite), default=0.0)
    label_width = max(len(str(label)) for label in labels)
    for label, value in zip(labels, values):
        if not math.isfinite(value):
            bar, shown = "?", "nan"
        else:
            length = 0 if peak == 0 else round(abs(value) / peak * width)
            bar = "#" * length
            shown = f"{value:.4g}{unit}"
        lines.append(f"{str(label).rjust(label_width)} | {bar} {shown}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Compress a numeric series into one line of block glyphs.

    ``width`` (when given) buckets the series by averaging so long traces
    fit; NaNs render as spaces.
    """
    series = list(values)
    if not series:
        return ""
    if width is not None and width > 0 and len(series) > width:
        bucket = len(series) / width
        condensed = []
        for i in range(width):
            chunk = series[int(i * bucket): int((i + 1) * bucket) or None]
            finite = [v for v in chunk if math.isfinite(v)]
            condensed.append(sum(finite) / len(finite) if finite else math.nan)
        series = condensed
    finite = [v for v in series if math.isfinite(v)]
    if not finite:
        return " " * len(series)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for value in series:
        if not math.isfinite(value):
            chars.append(" ")
            continue
        level = 0 if span == 0 else int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)
