"""Means and confidence intervals for multi-run experiments.

The paper's Figure 9/10 averages 14 runs and shows 90% confidence
intervals; this module provides the same aggregation.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

# Two-sided Student-t critical values for 90% confidence, by degrees of
# freedom (1..30).  Hard-coded to avoid a scipy dependency at runtime; the
# scipy-based test suite cross-checks these values.
_T90 = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
    1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
    1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
]


def t_critical_90(dof: int) -> float:
    """Two-sided 90% Student-t critical value (1.645 asymptotically)."""
    if dof < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if dof <= len(_T90):
        return _T90[dof - 1]
    return 1.645


def confidence_interval(samples: Sequence[float], level: float = 0.9) -> float:
    """Half-width of the mean's confidence interval.

    Only the 90% level used by the paper is supported (other levels raise),
    keeping the implementation dependency-free and exact for its one job.
    """
    if level != 0.9:
        raise ValueError("only the paper's 90% level is supported")
    values = np.asarray(samples, dtype=float)
    if values.size < 2:
        return 0.0
    sem = values.std(ddof=1) / math.sqrt(values.size)
    return float(t_critical_90(values.size - 1) * sem)


def mean_and_ci(samples: Sequence[float]) -> Tuple[float, float]:
    """(mean, 90% CI half-width) of a sample set."""
    values = np.asarray(samples, dtype=float)
    if values.size == 0:
        return float("nan"), 0.0
    return float(values.mean()), confidence_interval(values)


def jain_fairness_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 when every flow gets an equal share; ``1/n`` when one flow takes
    everything.  Complements the paper's per-flow normalized-throughput
    scatter (Figure 7) with a single-number summary.  Raises on negative
    allocations; returns 1.0 for the degenerate all-zero case (nobody got
    anything, nobody was treated unequally).
    """
    values = np.asarray(allocations, dtype=float)
    if values.size == 0:
        raise ValueError("allocations must not be empty")
    if (values < 0).any():
        raise ValueError("allocations cannot be negative")
    square_sum = float((values ** 2).sum())
    if square_sum == 0:
        return 1.0
    return float(values.sum() ** 2 / (values.size * square_sum))
