"""Loss fraction vs loss-event fraction under Bernoulli loss (section 3.5.1).

For a flow sending N packets per round-trip time under independent packet
loss with probability ``p_loss``, at most one loss event is charged per RTT,
so the loss-event fraction is::

    p_event = (1 - (1 - p_loss)^N) / N

Figure 5 plots ``p_event`` against ``p_loss`` for a flow whose N follows the
control equation (and for flows at twice / half that rate).  Both the
analytic mapping and a Monte-Carlo packet-level simulation are provided; the
simulation validates the closed form and exercises the estimator machinery.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.core.equations import tcp_response_rate


def packets_per_rtt_from_equation(
    p_event: float,
    packet_size: int = 1000,
    rtt: float = 0.1,
    rate_multiplier: float = 1.0,
) -> float:
    """N: packets per RTT for a flow obeying Eq. (1) at loss-event rate p.

    ``rate_multiplier`` scales the resulting rate (Figure 5 also evaluates
    flows sending at 2x and 0.5x the calculated rate).
    """
    if p_event <= 0:
        raise ValueError("p_event must be positive")
    rate = tcp_response_rate(packet_size, rtt, p_event, t_rto=4 * rtt)
    n = rate_multiplier * rate * rtt / packet_size
    return max(n, 1e-9)


def loss_event_fraction_analytic(p_loss: float, packets_per_rtt: float) -> float:
    """The closed form ``(1 - (1-p)^N) / N`` (section 3.5.1)."""
    if not 0 <= p_loss < 1:
        raise ValueError("p_loss must be in [0, 1)")
    if packets_per_rtt <= 0:
        raise ValueError("packets_per_rtt must be positive")
    if p_loss == 0:
        return 0.0
    n = packets_per_rtt
    return (1.0 - (1.0 - p_loss) ** n) / n


def consistent_loss_event_fraction(
    p_loss: float,
    packet_size: int = 1000,
    rtt: float = 0.1,
    rate_multiplier: float = 1.0,
    iterations: int = 100,
) -> float:
    """Self-consistent p_event for a flow whose *rate* depends on p_event.

    The sending rate is determined by the congestion-control equation
    evaluated at p_event, while p_event depends on the rate through N; the
    paper resolves this circularity implicitly.  Fixed-point iteration
    converges quickly because both maps are monotone.
    """
    if p_loss == 0:
        return 0.0
    p_event = p_loss  # initial guess: no coalescing
    for _ in range(iterations):
        n = packets_per_rtt_from_equation(
            p_event, packet_size=packet_size, rtt=rtt, rate_multiplier=rate_multiplier
        )
        # A window below one packet/RTT cannot coalesce losses.
        n = max(n, 1.0)
        updated = loss_event_fraction_analytic(p_loss, n)
        if abs(updated - p_event) < 1e-12:
            p_event = updated
            break
        p_event = updated
    return p_event


def simulate_loss_event_fraction(
    p_loss: float,
    packets_per_rtt: float,
    total_packets: int = 200_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte-Carlo check: stream Bernoulli losses, charge one event per RTT.

    The stream is divided into consecutive rounds of ``packets_per_rtt``
    packets (fractional boundaries handled by accumulation); a round with at
    least one loss contributes exactly one loss event -- the windowing
    implicit in the paper's closed form ``(1 - (1-p)^N) / N``.  Returns
    events / packets.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if packets_per_rtt <= 0:
        raise ValueError("packets_per_rtt must be positive")
    losses = rng.random(total_packets) < p_loss
    events = 0
    boundary = packets_per_rtt
    loss_in_round = False
    for index in range(total_packets):
        if index >= boundary:
            boundary += packets_per_rtt * math.ceil((index - boundary) / packets_per_rtt + 1)
            loss_in_round = False
        if losses[index] and not loss_in_round:
            events += 1
            loss_in_round = True
    return events / total_packets
