"""TFRC packet headers: pack to and parse from bytes.

Layout (all fields network byte order):

Common prefix (10 bytes)::

    0      2      3      4          6          10
    +------+------+------+----------+----------+
    | 'TF' | ver  | type | checksum | flow_id  |
    +------+------+------+----------+----------+

``type`` is 1 for data, 2 for feedback.  ``checksum`` is the RFC 1071
Internet checksum over the entire datagram with the checksum field zeroed.

Data packet (18 more bytes, 28 total)::

    seq(4) send_ts_us(8) rtt_us(4) flags(1) reserved(1)

``send_ts_us`` is the sender clock in microseconds (echoed back verbatim),
``rtt_us`` the sender's current smoothed RTT estimate, piggybacked so the
receiver can coalesce loss events without its own RTT measurement.  Flag
bit 0 marks the packet ECN-capable.  Any bytes after the header are
application payload (padding, for a paced media source).

Feedback packet (30 more bytes, 40 total -- matching the 40-byte feedback
size the simulator's :class:`~repro.core.receiver.TfrcReceiver` assumes)::

    echo_seq(4) echo_ts_us(8) delay_us(4) p_fixed(4) recv_rate(8) flags(1) reserved(1)

``p_fixed`` is the loss event rate as unsigned 0.32 fixed point
(``round(p * 0xFFFFFFFF)``), ``recv_rate`` the receive rate in bytes per
second.  Flag bit 0 marks an expedited (new-loss-event) report.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.wire.checksum import internet_checksum, verify_checksum

MAGIC = b"TF"
VERSION = 1
TYPE_DATA = 1
TYPE_FEEDBACK = 2

_COMMON = struct.Struct("!2sBBHI")
_DATA = struct.Struct("!IQIBB")
_FEEDBACK = struct.Struct("!IQIIQBB")

DATA_HEADER_SIZE = _COMMON.size + _DATA.size
FEEDBACK_HEADER_SIZE = _COMMON.size + _FEEDBACK.size

_P_SCALE = 0xFFFFFFFF
_MAX_U32 = 0xFFFFFFFF
_MAX_U64 = 0xFFFFFFFFFFFFFFFF

FLAG_ECN_CAPABLE = 0x01
FLAG_EXPEDITED = 0x01


class WireFormatError(ValueError):
    """Base class for malformed-datagram errors."""


class TruncatedPacketError(WireFormatError):
    """Datagram shorter than its header demands."""


class BadMagicError(WireFormatError):
    """Datagram does not start with the TFRC magic."""


class UnsupportedVersionError(WireFormatError):
    """Datagram claims a version this implementation does not speak."""


class ChecksumMismatchError(WireFormatError):
    """Datagram corrupted in flight (checksum failed)."""


def _check_u32(name: str, value: int) -> int:
    if not 0 <= value <= _MAX_U32:
        raise ValueError(f"{name}={value} outside unsigned 32-bit range")
    return value


def _check_u64(name: str, value: int) -> int:
    if not 0 <= value <= _MAX_U64:
        raise ValueError(f"{name}={value} outside unsigned 64-bit range")
    return value


@dataclass(frozen=True)
class DataPacket:
    """Parsed TFRC data packet.

    Attributes:
        flow_id: 32-bit flow identifier.
        seq: 32-bit wrapped sequence number.
        send_ts_us: sender clock at transmission, microseconds.
        rtt_us: sender's smoothed RTT estimate, microseconds.
        ecn_capable: flag bit 0.
        payload: application bytes following the header.
    """

    flow_id: int
    seq: int
    send_ts_us: int
    rtt_us: int
    ecn_capable: bool = False
    payload: bytes = b""

    def encode(self) -> bytes:
        """Serialize, computing the checksum over the whole datagram."""
        _check_u32("flow_id", self.flow_id)
        _check_u32("seq", self.seq)
        _check_u64("send_ts_us", self.send_ts_us)
        _check_u32("rtt_us", self.rtt_us)
        flags = FLAG_ECN_CAPABLE if self.ecn_capable else 0
        body = _DATA.pack(self.seq, self.send_ts_us, self.rtt_us, flags, 0)
        head = _COMMON.pack(MAGIC, VERSION, TYPE_DATA, 0, self.flow_id)
        datagram = head + body + self.payload
        checksum = internet_checksum(datagram)
        head = _COMMON.pack(MAGIC, VERSION, TYPE_DATA, checksum, self.flow_id)
        return head + body + self.payload

    @property
    def wire_size(self) -> int:
        return DATA_HEADER_SIZE + len(self.payload)


@dataclass(frozen=True)
class FeedbackPacket:
    """Parsed TFRC feedback packet.

    Attributes:
        flow_id: 32-bit flow identifier (same as the data direction).
        echo_seq: sequence number of the newest data packet received.
        echo_ts_us: that packet's ``send_ts_us``, echoed.
        delay_us: receiver hold time between receiving that packet and
            sending this report (the sender subtracts it from its RTT
            sample).
        p: loss event rate in [0, 1] (quantized to 0.32 fixed point on the
            wire).
        recv_rate: receive rate over the last RTT, bytes/second (integer).
        expedited: True for a new-loss-event report.
    """

    flow_id: int
    echo_seq: int
    echo_ts_us: int
    delay_us: int
    p: float
    recv_rate: int
    expedited: bool = False

    def encode(self) -> bytes:
        _check_u32("flow_id", self.flow_id)
        _check_u32("echo_seq", self.echo_seq)
        _check_u64("echo_ts_us", self.echo_ts_us)
        _check_u32("delay_us", self.delay_us)
        _check_u64("recv_rate", self.recv_rate)
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"loss event rate {self.p} outside [0, 1]")
        p_fixed = round(self.p * _P_SCALE)
        flags = FLAG_EXPEDITED if self.expedited else 0
        body = _FEEDBACK.pack(
            self.echo_seq, self.echo_ts_us, self.delay_us,
            p_fixed, self.recv_rate, flags, 0,
        )
        head = _COMMON.pack(MAGIC, VERSION, TYPE_FEEDBACK, 0, self.flow_id)
        checksum = internet_checksum(head + body)
        head = _COMMON.pack(MAGIC, VERSION, TYPE_FEEDBACK, checksum, self.flow_id)
        return head + body

    @property
    def wire_size(self) -> int:
        return FEEDBACK_HEADER_SIZE


def decode_packet(data: bytes):
    """Parse a datagram into a :class:`DataPacket` or :class:`FeedbackPacket`.

    Raises a :class:`WireFormatError` subclass describing exactly what was
    wrong; callers on a real network treat any of these as "drop silently"
    but tests and debugging want the distinction.
    """
    if len(data) < _COMMON.size:
        raise TruncatedPacketError(
            f"datagram of {len(data)} bytes shorter than common header"
        )
    magic, version, ptype, _checksum, flow_id = _COMMON.unpack_from(data)
    if magic != MAGIC:
        raise BadMagicError(f"bad magic {magic!r}")
    if version != VERSION:
        raise UnsupportedVersionError(f"unsupported version {version}")
    if not verify_checksum(data):
        raise ChecksumMismatchError("checksum mismatch")
    if ptype == TYPE_DATA:
        if len(data) < DATA_HEADER_SIZE:
            raise TruncatedPacketError(
                f"data packet of {len(data)} bytes, need {DATA_HEADER_SIZE}"
            )
        seq, ts_us, rtt_us, flags, _ = _DATA.unpack_from(data, _COMMON.size)
        return DataPacket(
            flow_id=flow_id,
            seq=seq,
            send_ts_us=ts_us,
            rtt_us=rtt_us,
            ecn_capable=bool(flags & FLAG_ECN_CAPABLE),
            payload=bytes(data[DATA_HEADER_SIZE:]),
        )
    if ptype == TYPE_FEEDBACK:
        if len(data) < FEEDBACK_HEADER_SIZE:
            raise TruncatedPacketError(
                f"feedback packet of {len(data)} bytes, need {FEEDBACK_HEADER_SIZE}"
            )
        echo_seq, echo_ts, delay_us, p_fixed, recv_rate, flags, _ = (
            _FEEDBACK.unpack_from(data, _COMMON.size)
        )
        return FeedbackPacket(
            flow_id=flow_id,
            echo_seq=echo_seq,
            echo_ts_us=echo_ts,
            delay_us=delay_us,
            p=p_fixed / _P_SCALE,
            recv_rate=recv_rate,
            expedited=bool(flags & FLAG_EXPEDITED),
        )
    raise WireFormatError(f"unknown packet type {ptype}")
