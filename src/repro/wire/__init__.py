"""Byte-level wire formats for TFRC.

The paper's evaluation included a real-world (userspace UDP) TFRC
implementation alongside the ns-2 one.  This package provides what that
implementation needs on the wire:

* :mod:`repro.wire.seqnum` -- fixed-width serial-number arithmetic
  (RFC 1982 style) so sequence numbers survive wrap-around;
* :mod:`repro.wire.checksum` -- the ones-complement Internet checksum
  (RFC 1071) protecting every header;
* :mod:`repro.wire.headers` -- pack/unpack for TFRC data and feedback
  packets, mirroring the fields the simulator's
  :class:`~repro.core.sender.TfrcDataInfo` and
  :class:`~repro.core.receiver.TfrcFeedback` carry in-memory.

The encodings are this project's own (the paper predates the standardized
RFC 4342/5348 packet formats and used ad-hoc framing), but follow the same
conventions: network byte order, microsecond timestamps, fixed-point loss
rates.
"""

from repro.wire.checksum import internet_checksum, verify_checksum
from repro.wire.headers import (
    FEEDBACK_HEADER_SIZE,
    DATA_HEADER_SIZE,
    BadMagicError,
    ChecksumMismatchError,
    DataPacket,
    FeedbackPacket,
    TruncatedPacketError,
    UnsupportedVersionError,
    WireFormatError,
    decode_packet,
)
from repro.wire.seqnum import (
    SEQ_SPACE_BITS,
    seq_add,
    seq_diff,
    seq_gt,
    seq_gte,
    seq_lt,
    seq_lte,
    seq_window_iter,
)

__all__ = [
    "internet_checksum",
    "verify_checksum",
    "DataPacket",
    "FeedbackPacket",
    "decode_packet",
    "WireFormatError",
    "TruncatedPacketError",
    "BadMagicError",
    "ChecksumMismatchError",
    "UnsupportedVersionError",
    "DATA_HEADER_SIZE",
    "FEEDBACK_HEADER_SIZE",
    "SEQ_SPACE_BITS",
    "seq_add",
    "seq_diff",
    "seq_lt",
    "seq_lte",
    "seq_gt",
    "seq_gte",
    "seq_window_iter",
]
