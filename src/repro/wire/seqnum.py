"""Fixed-width sequence-number (serial) arithmetic.

On the wire TFRC sequence numbers are 32-bit unsigned integers that wrap.
Comparisons therefore follow RFC 1982 serial-number arithmetic: ``a < b``
when moving *forward* from ``a`` to ``b`` crosses less than half the number
space.  The simulator uses unbounded Python ints internally; these helpers
are used at the wire boundary (:mod:`repro.wire.headers`,
:mod:`repro.rt`) where numbers are truncated to 32 bits.

All functions accept already-wrapped values in ``[0, 2**bits)``; feeding a
value outside that range raises ``ValueError`` rather than silently
masking, because out-of-range values at this layer indicate a bug upstream.
"""

from __future__ import annotations

from typing import Iterator

#: Width of the on-wire sequence-number space.
SEQ_SPACE_BITS = 32

_MOD = 1 << SEQ_SPACE_BITS
_HALF = _MOD // 2


def _check(value: int, bits: int) -> int:
    mod = 1 << bits
    if not isinstance(value, int):
        raise TypeError(f"sequence numbers are ints, got {type(value).__name__}")
    if not 0 <= value < mod:
        raise ValueError(f"sequence number {value} outside [0, 2**{bits})")
    return value


def seq_add(a: int, delta: int, bits: int = SEQ_SPACE_BITS) -> int:
    """``a + delta`` wrapped into the sequence space (delta may be negative)."""
    _check(a, bits)
    return (a + delta) % (1 << bits)


def seq_diff(a: int, b: int, bits: int = SEQ_SPACE_BITS) -> int:
    """Signed forward distance from ``b`` to ``a``.

    Positive when ``a`` is ahead of ``b``; the result is in
    ``[-2**(bits-1), 2**(bits-1))``.  ``seq_diff(seq_add(x, d), x) == d``
    for ``|d| < 2**(bits-1)``.
    """
    _check(a, bits)
    _check(b, bits)
    mod = 1 << bits
    half = mod // 2
    d = (a - b) % mod
    return d - mod if d >= half else d


def seq_lt(a: int, b: int, bits: int = SEQ_SPACE_BITS) -> bool:
    """True when ``a`` precedes ``b`` in serial-number order."""
    return seq_diff(a, b, bits) < 0


def seq_lte(a: int, b: int, bits: int = SEQ_SPACE_BITS) -> bool:
    return seq_diff(a, b, bits) <= 0


def seq_gt(a: int, b: int, bits: int = SEQ_SPACE_BITS) -> bool:
    return seq_diff(a, b, bits) > 0


def seq_gte(a: int, b: int, bits: int = SEQ_SPACE_BITS) -> bool:
    return seq_diff(a, b, bits) >= 0


def seq_window_iter(
    start: int, end: int, bits: int = SEQ_SPACE_BITS
) -> Iterator[int]:
    """Iterate sequence numbers from ``start`` (inclusive) to ``end``
    (exclusive), following the wrap.

    Raises ``ValueError`` when ``end`` is not ahead of or equal to
    ``start`` -- a window that appears to run backwards means the caller
    mixed up its arguments.
    """
    distance = seq_diff(end, start, bits)
    if distance < 0:
        raise ValueError(f"window end {end} precedes start {start}")
    current = start
    for _ in range(distance):
        yield current
        current = seq_add(current, 1, bits)
