"""Ones-complement Internet checksum (RFC 1071).

Every TFRC wire header carries a 16-bit checksum computed the same way as
TCP/UDP/IP checksums: the ones-complement of the ones-complement sum of the
data taken as 16-bit big-endian words, with odd-length input padded by a
trailing zero byte.

The checksum field itself is zeroed during computation, so verification is
"recompute over the datagram with the stored checksum left in place and
expect zero" -- the standard receiver-side trick, exposed here as
:func:`verify_checksum`.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """RFC 1071 checksum of ``data`` as an int in ``[0, 0xFFFF]``."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold carries until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (with its checksum field in place) verifies.

    The ones-complement sum over a datagram whose checksum field holds the
    correct value folds to ``0xFFFF``, making the final complement zero.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
