"""Constant bit rate (CBR) UDP source."""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


class CbrSource:
    """Sends fixed-size packets at a constant rate into a port.

    UDP-like: no feedback, no congestion response.  Used for reverse-path
    filler traffic and as the building block of the ON/OFF sources.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        port,
        rate_bps: float,
        packet_size: int = 1000,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.flow_id = flow_id
        self._port = port
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self._interval = packet_size * 8 / rate_bps
        self._seq = 0
        self.packets_sent = 0
        self._process = PeriodicProcess(sim, self._emit, lambda: self._interval)

    def start(self, at: Optional[float] = None) -> None:
        delay = 0.0 if at is None else max(0.0, at - self.sim.now)
        self._process.start(initial_delay=delay)

    def stop(self) -> None:
        self._process.stop()

    @property
    def running(self) -> bool:
        return self._process.running

    def _emit(self) -> None:
        packet = Packet(
            flow_id=self.flow_id,
            seq=self._seq,
            size=self.packet_size,
            ptype=PacketType.DATA,
            sent_at=self.sim.now,
        )
        self._seq += 1
        self.packets_sent += 1
        self._port.send(packet)
