"""Pareto ON/OFF UDP sources (self-similar background traffic).

The paper's section 4.1.3 scenario: "several ON/OFF UDP sources whose
ON/OFF times are drawn from heavy-tailed distributions such as the Pareto
distribution.  The mean ON time is 1 second and the mean OFF time is 2
seconds, and during ON time each source sends at 500Kbps", with 50-150
simultaneous sources.  Superposing many such sources yields self-similar
aggregate traffic (Willinger et al. 1995).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator


def pareto_draw(rng: np.random.Generator, mean: float, shape: float) -> float:
    """One Pareto variate with the given mean and shape (alpha).

    For shape alpha > 1 the Pareto distribution with scale x_m has mean
    ``alpha * x_m / (alpha - 1)``, so ``x_m = mean * (alpha - 1) / alpha``.
    The heavy tail (infinite variance for alpha <= 2) is what produces
    self-similarity in the aggregate; the customary ns-2 value is 1.5.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if shape <= 1:
        raise ValueError("shape must exceed 1 for a finite mean")
    x_m = mean * (shape - 1.0) / shape
    # numpy's pareto() returns (X - 1) for a Lomax; (1 + draw) * x_m is the
    # classical Pareto with scale x_m.
    return float(x_m * (1.0 + rng.pareto(shape)))


class OnOffSource:
    """A single Pareto ON/OFF source sending at ``peak_rate_bps`` when ON."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        port,
        rng: np.random.Generator,
        peak_rate_bps: float = 500e3,
        mean_on: float = 1.0,
        mean_off: float = 2.0,
        shape: float = 1.5,
        packet_size: int = 1000,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self._port = port
        self._rng = rng
        self.peak_rate_bps = peak_rate_bps
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.shape = shape
        self.packet_size = packet_size
        self._interval = packet_size * 8 / peak_rate_bps
        self._seq = 0
        self._on = False
        self._running = False
        self._send_event = None
        self._phase_event = None
        self.packets_sent = 0

    def start(self, at: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        delay = 0.0 if at is None else max(0.0, at - self.sim.now)
        # Begin in a random phase: OFF with probability mean_off/(on+off).
        p_off = self.mean_off / (self.mean_on + self.mean_off)
        if self._rng.random() < p_off:
            self._phase_event = self.sim.schedule_in(
                delay + pareto_draw(self._rng, self.mean_off, self.shape),
                self._enter_on,
            )
        else:
            self._phase_event = self.sim.schedule_in(delay, self._enter_on)

    def stop(self) -> None:
        self._running = False
        for event in (self._send_event, self._phase_event):
            if event is not None:
                event.cancel()
        self._send_event = self._phase_event = None

    @property
    def is_on(self) -> bool:
        return self._on and self._running

    def _enter_on(self) -> None:
        if not self._running:
            return
        self._on = True
        duration = pareto_draw(self._rng, self.mean_on, self.shape)
        self._phase_event = self.sim.schedule_in(duration, self._enter_off)
        self._emit()

    def _enter_off(self) -> None:
        if not self._running:
            return
        self._on = False
        if self._send_event is not None:
            self._send_event.cancel()
            self._send_event = None
        duration = pareto_draw(self._rng, self.mean_off, self.shape)
        self._phase_event = self.sim.schedule_in(duration, self._enter_on)

    def _emit(self) -> None:
        if not self._on or not self._running:
            return
        packet = Packet(
            flow_id=self.flow_id,
            seq=self._seq,
            size=self.packet_size,
            ptype=PacketType.DATA,
            sent_at=self.sim.now,
        )
        self._seq += 1
        self.packets_sent += 1
        self._port.send(packet)
        self._send_event = self.sim.schedule_in(self._interval, self._emit)


def make_onoff_fleet(
    sim: Simulator,
    count: int,
    port_factory,
    rng: np.random.Generator,
    **kwargs,
) -> List[OnOffSource]:
    """Create ``count`` ON/OFF sources, one port each via ``port_factory(i)``."""
    sources = []
    for i in range(count):
        flow_id = f"onoff-{i}"
        sources.append(
            OnOffSource(sim, flow_id, port_factory(i), rng=rng, **kwargs)
        )
    return sources
