"""Background traffic generators.

* :mod:`~repro.traffic.cbr` -- constant bit rate UDP source.
* :mod:`~repro.traffic.onoff` -- Pareto ON/OFF UDP sources: the paper's
  self-similar web-like background traffic (section 4.1.3, citing
  Willinger et al. 1995).
* :mod:`~repro.traffic.web` -- short TCP connections ("mice") arriving as a
  Poisson process, used for the 20% background load in Figure 14.
"""

from repro.traffic.cbr import CbrSource
from repro.traffic.onoff import OnOffSource, make_onoff_fleet
from repro.traffic.web import WebTrafficSource

__all__ = ["CbrSource", "OnOffSource", "make_onoff_fleet", "WebTrafficSource"]
