"""Web-like short TCP connections ("mice").

Figure 14's scenario reserves "20% of the link bandwidth ... used by
short-lived background TCP traffic".  This source launches short TCP
transfers (Pareto-distributed sizes, Poisson arrivals) that each run our
real TCP implementation, so the background load is congestion-responsive
like real web traffic.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.tcp.flow import TcpFlow
from repro.traffic.onoff import pareto_draw

PortPairFactory = Callable[[str], tuple]


class WebTrafficSource:
    """Poisson arrivals of short TCP transfers.

    Args:
        port_pair_factory: maps a fresh flow id to ``(forward, reverse)``
            ports attached to the topology under test.
        arrival_rate: new connections per second.
        mean_size_packets: mean transfer size (Pareto, shape 1.5 -- heavy
            tails per the web-traffic literature the paper cites).
        max_concurrent: safety valve bounding simultaneous connections.
    """

    def __init__(
        self,
        sim: Simulator,
        port_pair_factory: PortPairFactory,
        rng: np.random.Generator,
        arrival_rate: float = 10.0,
        mean_size_packets: float = 20.0,
        size_shape: float = 1.5,
        variant: str = "sack",
        packet_size: int = 1000,
        max_concurrent: int = 200,
    ) -> None:
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        self.sim = sim
        self._factory = port_pair_factory
        self._rng = rng
        self.arrival_rate = arrival_rate
        self.mean_size_packets = mean_size_packets
        self.size_shape = size_shape
        self.variant = variant
        self.packet_size = packet_size
        self.max_concurrent = max_concurrent
        self._running = False
        self._next_id = 0
        self._active: List[TcpFlow] = []
        self.connections_started = 0
        self.connections_completed = 0
        self._arrival_event = None

    def start(self, at: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        delay = 0.0 if at is None else max(0.0, at - self.sim.now)
        self._arrival_event = self.sim.schedule_in(delay, self._arrive)

    def stop(self) -> None:
        self._running = False
        if self._arrival_event is not None:
            self._arrival_event.cancel()
            self._arrival_event = None
        for flow in self._active:
            flow.stop()
        self._active.clear()

    @property
    def active_count(self) -> int:
        return len(self._active)

    def _arrive(self) -> None:
        if not self._running:
            return
        if len(self._active) < self.max_concurrent:
            self._launch()
        gap = self._rng.exponential(1.0 / self.arrival_rate)
        self._arrival_event = self.sim.schedule_in(gap, self._arrive)

    def _launch(self) -> None:
        flow_id = f"web-{self._next_id}"
        self._next_id += 1
        size = max(1, int(round(pareto_draw(self._rng, self.mean_size_packets, self.size_shape))))
        forward, reverse = self._factory(flow_id)
        flow = TcpFlow(
            self.sim,
            flow_id,
            forward,
            reverse,
            variant=self.variant,
            packet_size=self.packet_size,
            packets_to_send=size,
        )
        flow.sender.on_complete = lambda f=flow: self._finished(f)
        self._active.append(flow)
        self.connections_started += 1
        flow.start()

    def _finished(self, flow: TcpFlow) -> None:
        self.connections_completed += 1
        if flow in self._active:
            self._active.remove(flow)
