"""Declarative scenario specifications and the scenario registry.

A :class:`ScenarioSpec` captures everything needed to reproduce one
simulation cell -- topology, flow mix, queue discipline, loss model, seed,
and duration -- as plain JSON-serializable data.  Registered scenario
functions (see :func:`register_scenario`) map a spec to a JSON-serializable
result dict, which is what lets the sweep runner execute cells in worker
processes and cache results on disk keyed by the spec hash.
"""

from __future__ import annotations

import copy
import hashlib
import json
import zlib
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Mapping, Tuple

JsonDict = Dict[str, Any]

#: A scenario maps a spec to a JSON-serializable result dictionary.
ScenarioFn = Callable[["ScenarioSpec"], JsonDict]


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully specified simulation cell.

    The grouped mappings are free-form parameter namespaces interpreted by
    the registered scenario function; the spec layer only guarantees they
    are JSON-serializable and participate in hashing.  ``extra`` holds
    scenario-specific knobs that fit none of the canonical groups
    (measurement windows, estimator settings, ...).
    """

    scenario: str
    topology: Mapping[str, Any] = field(default_factory=dict)
    flows: Mapping[str, Any] = field(default_factory=dict)
    queue: Mapping[str, Any] = field(default_factory=dict)
    loss: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    duration: float = 60.0
    extra: Mapping[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- serialize

    def to_dict(self) -> JsonDict:
        """Deep plain-dict form, safe to mutate and JSON-dump."""
        return {
            "scenario": self.scenario,
            "topology": copy.deepcopy(dict(self.topology)),
            "flows": copy.deepcopy(dict(self.flows)),
            "queue": copy.deepcopy(dict(self.queue)),
            "loss": copy.deepcopy(dict(self.loss)),
            "seed": self.seed,
            "duration": self.duration,
            "extra": copy.deepcopy(dict(self.extra)),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ScenarioSpec fields: {sorted(unknown)}")
        if "scenario" not in data:
            raise ValueError("ScenarioSpec requires a 'scenario' name")
        return cls(**dict(data))

    def canonical_json(self) -> str:
        """Key-sorted compact JSON -- the hashing/caching representation."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    def spec_hash(self) -> str:
        """Stable 16-hex-digit digest identifying this spec (cache key)."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()[:16]

    # -------------------------------------------------------------- override

    def override(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """A new spec with dotted-path overrides applied.

        Keys address either a top-level field (``"seed"``, ``"duration"``)
        or a nested parameter (``"topology.bandwidth_bps"``,
        ``"queue.type"``).  Used by the sweep runner to expand grids.

        Missing intermediate mappings are created, but a path that would
        descend *through* an existing non-mapping value -- ``"seed.x"``
        against the scalar ``seed`` field, or ``"topology.a.b"`` when
        ``topology.a`` is a scalar -- raises :class:`ValueError` naming the
        offending segment instead of silently clobbering it (which would
        corrupt seeding and spec hashing downstream).
        """
        data = self.to_dict()
        for path, value in overrides.items():
            parts = path.split(".")
            node: Any = data
            for depth, part in enumerate(parts[:-1]):
                if part in node and not isinstance(node[part], dict):
                    where = ".".join(parts[: depth + 1])
                    raise ValueError(
                        f"override path {path!r} descends through {where!r}, "
                        f"which holds the non-mapping value {node[part]!r}"
                    )
                node = node.setdefault(part, {})
            node[parts[-1]] = value
        return ScenarioSpec.from_dict(data)

    def derive_seed(self, overrides: Mapping[str, Any]) -> int:
        """Deterministic per-cell seed from the base seed and cell overrides.

        Stable across runs, platforms, and serial/parallel execution, so a
        sweep cell always sees the same randomness no matter how the grid
        is executed.
        """
        tag = json.dumps(
            {k: overrides[k] for k in sorted(overrides)},
            sort_keys=True, separators=(",", ":"), default=str,
            allow_nan=False,
        )
        return (self.seed * 1_000_003 + zlib.crc32(tag.encode("utf-8"))) & 0x7FFFFFFF


# ----------------------------------------------------------------- registry

_REGISTRY: Dict[str, ScenarioFn] = {}


def register_scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Class-of-scenario decorator: ``@register_scenario("mixed_dumbbell")``.

    Registered functions take a :class:`ScenarioSpec` and return a
    JSON-serializable dict.  Registration is idempotent for the *same*
    function (modules may be re-imported by worker processes) but a name
    collision between different functions is an error.
    """

    def decorator(fn: ScenarioFn) -> ScenarioFn:
        existing = _REGISTRY.get(name)
        if existing is not None and (
            existing.__module__ != fn.__module__
            or existing.__qualname__ != fn.__qualname__
        ):
            raise ValueError(f"scenario {name!r} already registered by {existing}")
        _REGISTRY[name] = fn
        return fn

    return decorator


def get_scenario(name: str) -> ScenarioFn:
    """Look up a registered scenario function by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def list_scenarios() -> List[str]:
    """Sorted names of all registered scenarios."""
    return sorted(_REGISTRY)


def run_scenario(spec: ScenarioSpec) -> JsonDict:
    """Execute ``spec`` with its registered scenario function."""
    return get_scenario(spec.scenario)(spec)
