"""Scenario builders: the paper's reusable simulation setups.

Lifted out of ``repro.experiments.common`` so that the experiments layer,
the sweep runner, and ad-hoc studies all build scenarios from one place:

* :func:`build_mixed_dumbbell` / :func:`run_mixed_dumbbell` -- n TFRC +
  n TCP flows on a dumbbell (Figures 6-10, 14): random base RTTs
  U(80,120) ms, staggered starts U(0,10) s, per the section 4.1.2 footnote.
* :func:`run_single_tfrc_on_lossy_path` -- one TFRC flow on an ideal pipe
  with a programmable loss model (Figures 2, 19, 20, 21).
* :class:`MixedDumbbellResult` -- per-flow arrival series plus monitors.

Two declarative entry points are registered with the scenario registry
(``mixed_dumbbell`` and ``tfrc_lossy_path``) so that sweeps can execute
them from a :class:`~repro.scenarios.spec.ScenarioSpec` alone.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import TfrcFlow
from repro.net import Dumbbell, DumbbellConfig
from repro.net.monitor import FlowMonitor, LinkMonitor
from repro.net.path import (
    LossyPath,
    LossModel,
    bernoulli_loss,
    periodic_loss,
    scheduled_loss,
)
from repro.scenarios.spec import JsonDict, ScenarioSpec, register_scenario
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.tcp.flow import TcpFlow
from repro.traffic.onoff import OnOffSource

#: The paper's per-flow base RTT range (section 4.1.2): U(80, 120) ms.
RTT_RANGE = (0.080, 0.120)
#: Staggered start window: U(0, 10) s.
START_RANGE = (0.0, 10.0)


@dataclass
class MixedDumbbellResult:
    """Everything the analysis layer needs from one dumbbell run."""

    sim: Simulator
    dumbbell: Dumbbell
    flow_monitor: FlowMonitor
    link_monitor: LinkMonitor
    tfrc_flows: List[TfrcFlow] = field(default_factory=list)
    tcp_flows: List[TcpFlow] = field(default_factory=list)
    duration: float = 0.0

    @property
    def tfrc_ids(self) -> List[str]:
        return [flow.flow_id for flow in self.tfrc_flows]

    @property
    def tcp_ids(self) -> List[str]:
        return [flow.flow_id for flow in self.tcp_flows]

    def throughput(self, flow_id: str, t_min: float, t_max: float) -> float:
        return self.flow_monitor.throughput_bps(flow_id, t_min, t_max)

    def normalized_throughput(
        self, flow_id: str, t_min: float, t_max: float
    ) -> float:
        """Throughput normalized so 1.0 = a fair share of the bottleneck."""
        n = len(self.tfrc_flows) + len(self.tcp_flows)
        fair = self.dumbbell.config.bandwidth_bps / max(1, n)
        return self.throughput(flow_id, t_min, t_max) / fair


def build_mixed_dumbbell(
    n_tfrc: int,
    n_tcp: int,
    bandwidth_bps: float = 15e6,
    queue_type: str = "red",
    buffer_packets: Optional[int] = None,
    seed: int = 0,
    tcp_variant: str = "sack",
    interpacket_adjustment: bool = True,
    queue_scaling_bandwidth: Optional[float] = None,
    sample_queue: bool = False,
    endpoint_fastpath: bool = True,
    net_fastpath: bool = True,
    tracer: Optional["Tracer"] = None,
    ecn: bool = False,
) -> MixedDumbbellResult:
    """Construct (without running) the standard mixed-traffic dumbbell.

    Queue sizing follows the paper's Figure 6 methodology ("we scale the
    queue size with the bandwidth"): the buffer is the paper's 100 packets
    scaled by ``bandwidth / 15 Mb/s`` (at least 5 packets), unless
    ``buffer_packets`` is given.  RED thresholds scale with the buffer.

    ``endpoint_fastpath`` selects the PR-2 endpoint hot path (generation
    -counter timers, fast access-segment scheduling, columnar monitors and
    tracer storage); ``False`` pins the PR-1 legacy path.  ``net_fastpath``
    selects the PR-4 network-layer hot path (batched link wake chains,
    fused RED math, incremental TCP-sink SACK state); ``False`` pins the
    per-event legacy network layer.  All flag combinations produce
    byte-identical traces (see ``tests/test_endpoint_fastpath.py`` and
    ``tests/test_net_fastpath.py``).
    ``ecn`` enables marking at a RED bottleneck with ECN-capable TFRC flows.
    """
    if n_tfrc < 0 or n_tcp < 0 or n_tfrc + n_tcp == 0:
        raise ValueError("need at least one flow")
    rng_registry = RngRegistry(seed)
    rng = rng_registry.stream("topology")
    scale_bw = queue_scaling_bandwidth or bandwidth_bps
    if buffer_packets is None:
        buffer_packets = max(5, int(round(100 * scale_bw / 15e6)))
    config = DumbbellConfig(
        bandwidth_bps=bandwidth_bps,
        queue_type=queue_type,
        buffer_packets=buffer_packets,
        red_min_thresh=max(2, buffer_packets // 10),
        red_max_thresh=max(4, buffer_packets // 2),
    )
    sim = Simulator()
    dumbbell = Dumbbell(
        sim, config, queue_rng=rng_registry.stream("red"),
        fast_scheduling=endpoint_fastpath, net_fastpath=net_fastpath,
    )
    if ecn:
        if queue_type != "red":
            raise ValueError("ecn requires a RED bottleneck queue")
        dumbbell.forward_link.queue.ecn = True
    flow_monitor = FlowMonitor(tracer=tracer, columnar=endpoint_fastpath)
    link_monitor = LinkMonitor(
        sim, dumbbell.forward_link, tracer=tracer,
        sample_queue=sample_queue, columnar=endpoint_fastpath,
    )
    result = MixedDumbbellResult(
        sim=sim,
        dumbbell=dumbbell,
        flow_monitor=flow_monitor,
        link_monitor=link_monitor,
    )
    staggered_starts: List[Tuple[float, Callable[[], None], tuple]] = []
    for i in range(n_tfrc):
        flow_id = f"tfrc-{i}"
        fwd, rev = dumbbell.attach_flow(flow_id, rng.uniform(*RTT_RANGE))
        flow = TfrcFlow(
            sim,
            flow_id,
            fwd,
            rev,
            on_data=flow_monitor.on_packet,
            interpacket_adjustment=interpacket_adjustment,
            fast_timers=endpoint_fastpath,
            tracer=tracer,
            ecn=ecn,
        )
        staggered_starts.append((rng.uniform(*START_RANGE), flow.start, ()))
        result.tfrc_flows.append(flow)
    for i in range(n_tcp):
        flow_id = f"tcp-{i}"
        fwd, rev = dumbbell.attach_flow(flow_id, rng.uniform(*RTT_RANGE))
        flow = TcpFlow(
            sim,
            flow_id,
            fwd,
            rev,
            variant=tcp_variant,
            on_data=flow_monitor.on_packet,
            fast_timers=endpoint_fastpath,
            incremental_sack=net_fastpath,
            tracer=tracer,
        )
        staggered_starts.append((rng.uniform(*START_RANGE), flow.start, ()))
        result.tcp_flows.append(flow)
    # Bulk-seed the staggered flow starts in one O(n) heapify.
    sim.schedule_batch(staggered_starts)
    return result


def run_mixed_dumbbell(duration: float = 90.0, **kwargs) -> MixedDumbbellResult:
    """Build and run the standard scenario for ``duration`` seconds."""
    result = build_mixed_dumbbell(**kwargs)
    result.sim.run(until=duration)
    result.duration = duration
    return result


@dataclass
class SingleTfrcResult:
    """One TFRC flow on a controlled-loss pipe."""

    sim: Simulator
    flow: TfrcFlow
    path: LossyPath
    flow_monitor: FlowMonitor
    duration: float

    def rate_history(self) -> List[Tuple[float, float]]:
        """(time, allowed rate bytes/s) samples from the sender."""
        return list(self.flow.sender.rate_history)


def run_single_tfrc_on_lossy_path(
    loss_model: Optional[LossModel],
    duration: float,
    rtt: float = 0.1,
    bandwidth_bps: Optional[float] = None,
    packet_size: int = 1000,
    probe: Optional[Callable[[Simulator, TfrcFlow], None]] = None,
    probe_interval: float = 0.1,
    **flow_kwargs,
) -> SingleTfrcResult:
    """The protocol-mechanics harness (Figures 2, 19-21).

    One TFRC flow runs over an ideal fixed-delay pipe whose only losses come
    from ``loss_model``.  ``probe(sim, flow)``, if given, is invoked every
    ``probe_interval`` simulated seconds -- figure modules use it to sample
    estimator state mid-run.
    """
    sim = Simulator()
    forward = LossyPath(
        sim, delay=rtt / 2.0, loss_model=loss_model,
        bandwidth_bps=bandwidth_bps, name="fwd",
    )
    reverse = LossyPath(sim, delay=rtt / 2.0, name="rev")
    monitor = FlowMonitor()
    flow = TfrcFlow(
        sim, "tfrc", forward, reverse,
        packet_size=packet_size, on_data=monitor.on_packet, **flow_kwargs,
    )
    flow.start()
    if probe is not None:
        def tick() -> None:
            probe(sim, flow)
            if sim.now < duration:
                sim.schedule_in(probe_interval, tick)

        sim.schedule_in(probe_interval, tick)
    sim.run(until=duration)
    return SingleTfrcResult(
        sim=sim, flow=flow, path=forward, flow_monitor=monitor, duration=duration
    )


# ----------------------------------------------------- internet-path builder


@dataclass(frozen=True)
class PathProfile:
    """Synthetic stand-in for one of the paper's measurement paths.

    A single-bottleneck path (bandwidth, base RTT, buffer, queue type)
    carrying heavy uncontrolled ON/OFF cross traffic, plus per-path TCP
    timer quirks (min RTO, granularity, variance multiplier ``rto_k``) that
    reproduce the sender-stack behaviours the paper reports in section 4.3.
    """

    name: str
    bandwidth_bps: float
    base_rtt: float
    buffer_packets: int
    cross_sources: int
    cross_peak_bps: float
    tcp_min_rto: float
    tcp_granularity: float
    tcp_rto_k: float = 4.0
    queue_type: str = "droptail"

    def to_dict(self) -> JsonDict:
        """Plain-dict form, usable as a spec's ``topology`` group."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PathProfile":
        return cls(**dict(data))


@dataclass
class InternetPathRun:
    """One synthetic internet-path run: monitors plus the attached flows."""

    sim: Simulator
    profile: PathProfile
    dumbbell: Dumbbell
    flow_monitor: FlowMonitor
    link_monitor: Optional[LinkMonitor] = None
    tcp_ids: List[str] = field(default_factory=list)
    tfrc_flow: Optional[TfrcFlow] = None
    duration: float = 0.0


def _build_path_bottleneck(
    profile: PathProfile, registry: RngRegistry, sim: Simulator
) -> Dumbbell:
    """The shared single-bottleneck topology of the synthetic paths."""
    config = DumbbellConfig(
        bandwidth_bps=profile.bandwidth_bps,
        delay=profile.base_rtt / 4.0,
        queue_type=profile.queue_type,
        buffer_packets=profile.buffer_packets,
    )
    return Dumbbell(sim, config, queue_rng=registry.stream("red"))


def run_internet_path(
    profile: PathProfile,
    n_tcp: int = 3,
    duration: float = 120.0,
    interpacket_adjustment: bool = True,
    seed: int = 0,
) -> InternetPathRun:
    """Run ``n_tcp`` TCP flows + 1 TFRC flow + cross traffic over one path.

    The topology half of the paper's section 4.3 methodology (Figures
    15-18): construction order (and hence RNG draw order) is fixed, so one
    ``(profile, seed)`` pair always produces the same run.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("topology")
    sim = Simulator()
    dumbbell = _build_path_bottleneck(profile, registry, sim)
    flow_monitor = FlowMonitor()
    link_monitor = LinkMonitor(sim, dumbbell.forward_link, sample_queue=False)

    run = InternetPathRun(
        sim=sim,
        profile=profile,
        dumbbell=dumbbell,
        flow_monitor=flow_monitor,
        link_monitor=link_monitor,
        duration=duration,
    )
    for i in range(n_tcp):
        flow_id = f"tcp-{i}"
        run.tcp_ids.append(flow_id)
        fwd, rev = dumbbell.attach_flow(
            flow_id, profile.base_rtt * rng.uniform(0.95, 1.05)
        )
        TcpFlow(
            sim, flow_id, fwd, rev, variant="sack",
            on_data=flow_monitor.on_packet,
            min_rto=profile.tcp_min_rto,
            rto_granularity=profile.tcp_granularity,
            rto_k=profile.tcp_rto_k,
        ).start(at=rng.uniform(0.0, 2.0))
    fwd, rev = dumbbell.attach_flow("tfrc", profile.base_rtt)
    run.tfrc_flow = TfrcFlow(
        sim, "tfrc", fwd, rev, on_data=flow_monitor.on_packet,
        interpacket_adjustment=interpacket_adjustment,
    )
    run.tfrc_flow.start(at=rng.uniform(0.0, 2.0))

    cross_rng = registry.stream("cross")
    for i in range(profile.cross_sources):
        flow_id = f"cross-{i}"
        port, _ = dumbbell.attach_flow(
            flow_id, profile.base_rtt * rng.uniform(0.8, 1.2)
        )
        OnOffSource(
            sim, flow_id, port, rng=cross_rng,
            peak_rate_bps=profile.cross_peak_bps,
        ).start(at=rng.uniform(0.0, 5.0))

    sim.run(until=duration)
    return run


def run_tfrc_probe_path(
    profile: PathProfile,
    duration: float = 150.0,
    seed: int = 0,
) -> InternetPathRun:
    """One TFRC probe flow over a synthetic path with ON/OFF cross traffic.

    The predictor-scoring harness (Figure 18): the monitored flow starts at
    t=0 and its receiver-side loss-interval history is the product; cross
    sources provide the bursty, non-stationary loss process.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("topology")
    sim = Simulator()
    dumbbell = _build_path_bottleneck(profile, registry, sim)
    monitor = FlowMonitor()
    fwd, rev = dumbbell.attach_flow("tfrc", profile.base_rtt)
    flow = TfrcFlow(sim, "tfrc", fwd, rev, on_data=monitor.on_packet)
    flow.start()
    cross_rng = registry.stream("cross")
    for i in range(profile.cross_sources):
        flow_id = f"cross-{i}"
        port, _ = dumbbell.attach_flow(flow_id, profile.base_rtt)
        OnOffSource(
            sim, flow_id, port, rng=cross_rng,
            peak_rate_bps=profile.cross_peak_bps,
        ).start(at=rng.uniform(0.0, 5.0))
    sim.run(until=duration)
    return InternetPathRun(
        sim=sim,
        profile=profile,
        dumbbell=dumbbell,
        flow_monitor=monitor,
        tfrc_flow=flow,
        duration=duration,
    )


def steady_state_window(duration: float, fraction: float = 0.5) -> Tuple[float, float]:
    """Measurement window skipping the warm-up: the last ``fraction`` of the
    run, mirroring the paper's "last 60 seconds" / "last 100 seconds" usage."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    return duration * (1.0 - fraction), duration


# ------------------------------------------------------ declarative entry points


def _never_drop(packet, now) -> bool:
    return False


def loss_model_from_spec(
    loss: Dict[str, object], rng: Optional[np.random.Generator] = None
) -> Optional[LossModel]:
    """Instantiate a loss model from a spec's ``loss`` mapping.

    Supported: ``{}`` / ``{"model": "none"}`` (lossless),
    ``{"model": "bernoulli", "probability": p}``,
    ``{"model": "periodic", "period": n, "offset": k}``, and the
    time-phased step-loss form the appendix figures use::

        {"model": "scheduled",
         "phases": [{"at": 0.0, "model": "periodic", "period": 100},
                    {"at": 10.0, "model": "none"}]}

    A ``scheduled`` model switches to each phase's inner model once its
    ``at`` time passes (``"none"`` phases drop nothing), which expresses
    Figure 2's 1% -> 10% -> 0.5% pattern and Figures 19-21's loss steps as
    plain spec data.
    """
    model = str(loss.get("model", "none"))
    if model in ("none", ""):
        return None
    if model == "bernoulli":
        if rng is None:
            raise ValueError("bernoulli loss model needs an rng")
        return bernoulli_loss(float(loss.get("probability", 0.01)), rng)
    if model == "periodic":
        return periodic_loss(
            int(loss.get("period", 100)), offset=int(loss.get("offset", 0))
        )
    if model == "scheduled":
        phases = list(loss.get("phases", []))
        if not phases:
            raise ValueError("scheduled loss model needs at least one phase")
        schedule: List[Tuple[float, LossModel]] = []
        for phase in phases:
            inner = {k: v for k, v in dict(phase).items() if k != "at"}
            schedule.append(
                (
                    float(dict(phase).get("at", 0.0)),
                    loss_model_from_spec(inner, rng) or _never_drop,
                )
            )
        return scheduled_loss(schedule)
    raise ValueError(f"unknown loss model {model!r}")


def periodic_phase(at: float, period: int, offset: int = 0) -> JsonDict:
    """One ``scheduled`` phase dropping every ``period``-th packet."""
    return {"at": float(at), "model": "periodic",
            "period": int(period), "offset": int(offset)}


def lossless_phase(at: float) -> JsonDict:
    """One ``scheduled`` phase dropping nothing (loss switched off)."""
    return {"at": float(at), "model": "none"}


@register_scenario("mixed_dumbbell")
def mixed_dumbbell_scenario(spec: ScenarioSpec) -> JsonDict:
    """Declarative mixed dumbbell: summary fairness metrics for one cell.

    Spec layout::

        topology: {bandwidth_bps, queue_scaling_bandwidth?}
        flows:    {n_tfrc, n_tcp, tcp_variant?, interpacket_adjustment?}
        queue:    {type, buffer_packets?}
        extra:    {measure_fraction?}
    """
    result = run_mixed_dumbbell(
        duration=spec.duration,
        n_tfrc=int(spec.flows.get("n_tfrc", 1)),
        n_tcp=int(spec.flows.get("n_tcp", 1)),
        bandwidth_bps=float(spec.topology.get("bandwidth_bps", 15e6)),
        queue_type=str(spec.queue.get("type", "red")),
        buffer_packets=spec.queue.get("buffer_packets"),
        seed=spec.seed,
        tcp_variant=str(spec.flows.get("tcp_variant", "sack")),
        interpacket_adjustment=bool(
            spec.flows.get("interpacket_adjustment", True)
        ),
        queue_scaling_bandwidth=spec.topology.get("queue_scaling_bandwidth"),
        endpoint_fastpath=bool(spec.extra.get("endpoint_fastpath", True)),
        net_fastpath=bool(spec.extra.get("net_fastpath", True)),
    )
    t0, t1 = steady_state_window(
        spec.duration, float(spec.extra.get("measure_fraction", 0.5))
    )
    return {
        "tcp_normalized": [
            result.normalized_throughput(fid, t0, t1) for fid in result.tcp_ids
        ],
        "tfrc_normalized": [
            result.normalized_throughput(fid, t0, t1) for fid in result.tfrc_ids
        ],
        "loss_rate": result.link_monitor.loss_rate(),
        "utilization_seconds": result.dumbbell.forward_link.utilization_seconds,
    }


@register_scenario("tfrc_lossy_path")
def tfrc_lossy_path_scenario(spec: ScenarioSpec) -> JsonDict:
    """Declarative single-TFRC-on-lossy-path: throughput and loss summary.

    Spec layout::

        topology: {rtt?, bandwidth_bps?, packet_size?}
        loss:     {model, ...} (see :func:`loss_model_from_spec`)
    """
    rng = RngRegistry(spec.seed).stream("loss")
    result = run_single_tfrc_on_lossy_path(
        loss_model=loss_model_from_spec(dict(spec.loss), rng),
        duration=spec.duration,
        rtt=float(spec.topology.get("rtt", 0.1)),
        bandwidth_bps=spec.topology.get("bandwidth_bps"),
        packet_size=int(spec.topology.get("packet_size", 1000)),
    )
    t0, t1 = steady_state_window(spec.duration)
    return {
        "throughput_bps": result.flow_monitor.throughput_bps("tfrc", t0, t1),
        "packets_received": result.flow.receiver.detector.packets_received,
        "loss_events": len(result.flow.receiver.detector.events),
    }
