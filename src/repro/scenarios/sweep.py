"""Parameter-grid sweeps over registered scenarios.

The paper's evaluation is a grid of scenario sweeps (link rates x flow
counts x queue disciplines x loss models).  :class:`SweepRunner` expands a
base :class:`~repro.scenarios.spec.ScenarioSpec` against a grid of
dotted-path overrides into cells, then executes the cells on a pluggable
:class:`~repro.scenarios.executors.SweepExecutor` -- serially, on a local
process pool, or across any number of (possibly multi-host) worker
processes coordinated through a shared queue directory -- with

* **deterministic seeding** -- cells either share the base seed
  (``seed_mode="shared"``, the paper's methodology for comparable cells) or
  derive a stable per-cell seed from the base seed plus the cell's
  overrides (``seed_mode="derived"``, for replication studies).  Either
  way, every executor produces byte-identical results for the same sweep:
  each cell's spec (including its seed) is fixed at expansion time.
* **progress reporting** -- an optional callback fired after every cell.
* **result caching** -- an optional on-disk JSON cache keyed by spec hash,
  so re-running a sweep only simulates cells whose spec changed.  The
  file-queue executor requires the cache: workers deliver results through
  it, and the coordinator assembles the sweep purely from cache.
* **failure context** -- a failing cell raises
  :class:`~repro.scenarios.executors.SweepCellError` naming the cell and
  its overrides, with the partial :class:`SweepResult` (every cell that did
  finish, cache hits included) attached as ``.partial``.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.scenarios.cache import ResultCache
from repro.scenarios.executors import (
    EXECUTOR_NAMES,
    ExecutorArg,
    FileQueueExecutor,
    SweepCellError,
    SweepPlan,
    _execute_remote,  # noqa: F401  (re-exported for backward compatibility)
    resolve_executor,
)
from repro.scenarios.spec import (
    JsonDict,
    ScenarioSpec,
    get_scenario,
)

#: progress callback: (cells done, cells total, the cell just finished).
ProgressFn = Callable[[int, int, "SweepCell"], None]


@dataclass
class SweepCell:
    """One grid point: its overrides, expanded spec, and (later) result."""

    index: int
    overrides: Dict[str, Any]
    spec: ScenarioSpec
    key: str
    result: Optional[JsonDict] = None
    from_cache: bool = False
    elapsed_seconds: float = 0.0
    #: the cell exhausted its retry budget and was dead-lettered (queue
    #: executor with ``on_poison="quarantine"``); ``result`` is None and
    #: ``failure`` summarizes the last recorded error.
    quarantined: bool = False
    failure: str = ""

    def describe(self) -> str:
        def short(value: Any) -> str:
            text = str(value)
            return text if len(text) <= 48 else text[:45] + "..."

        inner = ", ".join(f"{k}={short(v)}" for k, v in self.overrides.items())
        return f"{self.spec.scenario}[{inner}]" if inner else self.spec.scenario


@dataclass
class SweepResult:
    """All cells of a sweep, in grid-expansion order."""

    cells: List[SweepCell] = field(default_factory=list)

    def results(self) -> List[JsonDict]:
        return [cell.result for cell in self.cells if cell.result is not None]

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.from_cache)

    @property
    def quarantined(self) -> List[SweepCell]:
        """Poison cells dead-lettered instead of finishing (no result)."""
        return [cell for cell in self.cells if cell.quarantined]


class SweepRunner:
    """Expand a parameter grid over a base spec and execute every cell."""

    def __init__(
        self,
        base: ScenarioSpec,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        *,
        parallel: int = 1,
        cache_dir: Optional[str] = None,
        progress: Optional[ProgressFn] = None,
        seed_mode: str = "shared",
        executor: Optional[ExecutorArg] = None,
        queue_dir: Optional[str] = None,
    ) -> None:
        wants_queue = executor == "queue" or isinstance(
            executor, FileQueueExecutor
        )
        if parallel < (0 if wants_queue else 1):
            raise ValueError(
                "parallel must be >= 1 (>= 0 with the queue executor, "
                "where 0 means 'externally started workers only')"
            )
        if seed_mode not in ("shared", "derived"):
            raise ValueError("seed_mode must be 'shared' or 'derived'")
        if isinstance(executor, str) and executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {executor!r}; choose one of "
                f"{EXECUTOR_NAMES}"
            )
        if executor == "queue" and queue_dir is None:
            raise ValueError("executor 'queue' requires queue_dir")
        self.base = base
        self.grid: Dict[str, List[Any]] = {
            key: list(values) for key, values in (grid or {}).items()
        }
        for key, values in self.grid.items():
            if not values:
                raise ValueError(f"grid axis {key!r} has no values")
        self.parallel = parallel
        self.executor = executor
        self.queue_dir = queue_dir
        if cache_dir is None and wants_queue:
            # The queue executor moves results through the cache; default
            # it into the queue directory so multi-host workers find it.
            root = (
                executor.queue_dir
                if isinstance(executor, FileQueueExecutor)
                else queue_dir
            )
            cache_dir = os.path.join(str(root), "results")
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.progress = progress
        self.seed_mode = seed_mode

    # ------------------------------------------------------------ expansion

    def cells(self) -> List[SweepCell]:
        """The grid's cells in deterministic expansion order.

        Axes iterate in insertion order, the last axis fastest (standard
        odometer order), so printed sweep output groups naturally.

        A *zipped* axis -- a tuple of override paths whose values are
        same-length tuples, e.g. ``{("topology", "seed"): [(profile_a, 7),
        (profile_b, 8)]}`` -- varies several paths together as one axis
        instead of taking their product.
        """
        axes = list(self.grid.items())
        combos = itertools.product(*(values for _, values in axes))
        expanded: List[SweepCell] = []
        for index, combo in enumerate(combos):
            overrides: Dict[str, Any] = {}
            for (key, _), value in zip(axes, combo):
                if isinstance(key, tuple):
                    if len(key) != len(value):
                        raise ValueError(
                            f"zipped axis {key!r} expects values of length "
                            f"{len(key)}, got {value!r}"
                        )
                    overrides.update(zip(key, value))
                else:
                    overrides[key] = value
            spec = self.base.override(overrides)
            if self.seed_mode == "derived" and "seed" not in overrides:
                spec = spec.override({"seed": self.base.derive_seed(overrides)})
            expanded.append(
                SweepCell(
                    index=index,
                    overrides=overrides,
                    spec=spec,
                    key=spec.spec_hash(),
                )
            )
        return expanded

    # ------------------------------------------------------------ execution

    def run(self) -> SweepResult:
        """Execute all cells on the configured executor and return them.

        Cell results are independent of executor choice, execution order,
        and worker count: each cell's spec (including its seed) is fixed at
        expansion time.  On a cell failure the raised
        :class:`~repro.scenarios.executors.SweepCellError` carries the
        partial :class:`SweepResult` as ``.partial``.
        """
        get_scenario(self.base.scenario)  # fail fast on unknown scenarios
        cells = self.cells()
        total = len(cells)
        done = 0
        pending: List[SweepCell] = []
        for cell in cells:
            cached = self.cache.get(cell.spec) if self.cache else None
            if cached is not None:
                cell.result = cached
                cell.from_cache = True
                done += 1
                if self.progress:
                    self.progress(done, total, cell)
            else:
                pending.append(cell)

        if not pending:
            return SweepResult(cells=cells)

        executor = resolve_executor(
            self.executor,
            parallel=self.parallel,
            queue_dir=self.queue_dir,
            pending=len(pending),
        )
        plan = SweepPlan(
            cells=pending,
            module_name=get_scenario(self.base.scenario).__module__,
            cache=self.cache,
        )
        try:
            for completion in executor.run_cells(plan):
                cell = completion.cell
                cell.result = completion.result
                cell.elapsed_seconds = completion.elapsed_seconds
                if completion.quarantined:
                    cell.quarantined = True
                    cell.failure = completion.failure
                elif not completion.already_cached:
                    self._finish(cell)
                done += 1
                if self.progress:
                    self.progress(done, total, cell)
        except SweepCellError as exc:
            # Already-finished cells (cached or executed) stay accessible.
            exc.partial = SweepResult(cells=cells)
            raise
        return SweepResult(cells=cells)

    def _finish(self, cell: SweepCell) -> None:
        if self.cache is not None and cell.result is not None:
            self.cache.put(cell.spec, cell.result)


def run_single_cell(
    base: ScenarioSpec,
    *,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> JsonDict:
    """Execute a gridless spec as one sweep cell and return its result.

    The figure modules whose headline run is a single cell still route it
    through :class:`SweepRunner` so the CLI contract (``--cache`` result
    re-use, progress reporting, ``--executor`` selection) applies
    uniformly.
    """
    sweep = SweepRunner(
        base,
        parallel=parallel,
        cache_dir=cache_dir,
        progress=progress,
        executor=executor,
        queue_dir=queue_dir,
    ).run()
    result = sweep.cells[0].result
    assert result is not None
    return result


def print_progress(stream=None) -> ProgressFn:
    """A ready-made progress callback: one status line per finished cell."""
    import sys

    out = stream if stream is not None else sys.stderr

    def report(done: int, total: int, cell: SweepCell) -> None:
        source = "cache" if cell.from_cache else f"{cell.elapsed_seconds:.1f}s"
        print(f"[sweep {done}/{total}] {cell.describe()} ({source})", file=out)

    return report
