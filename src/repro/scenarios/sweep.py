"""Parameter-grid sweeps over registered scenarios.

The paper's evaluation is a grid of scenario sweeps (link rates x flow
counts x queue disciplines x loss models).  :class:`SweepRunner` expands a
base :class:`~repro.scenarios.spec.ScenarioSpec` against a grid of
dotted-path overrides into cells, then executes the cells serially or on a
``ProcessPoolExecutor``, with

* **deterministic seeding** -- cells either share the base seed
  (``seed_mode="shared"``, the paper's methodology for comparable cells) or
  derive a stable per-cell seed from the base seed plus the cell's
  overrides (``seed_mode="derived"``, for replication studies).  Either
  way, serial and parallel execution of the same sweep produce identical
  results.
* **progress reporting** -- an optional callback fired after every cell.
* **result caching** -- an optional on-disk JSON cache keyed by spec hash,
  so re-running a sweep only simulates cells whose spec changed.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.scenarios.cache import ResultCache
from repro.scenarios.spec import (
    JsonDict,
    ScenarioSpec,
    get_scenario,
    run_scenario,
)

#: progress callback: (cells done, cells total, the cell just finished).
ProgressFn = Callable[[int, int, "SweepCell"], None]


@dataclass
class SweepCell:
    """One grid point: its overrides, expanded spec, and (later) result."""

    index: int
    overrides: Dict[str, Any]
    spec: ScenarioSpec
    key: str
    result: Optional[JsonDict] = None
    from_cache: bool = False
    elapsed_seconds: float = 0.0

    def describe(self) -> str:
        def short(value: Any) -> str:
            text = str(value)
            return text if len(text) <= 48 else text[:45] + "..."

        inner = ", ".join(f"{k}={short(v)}" for k, v in self.overrides.items())
        return f"{self.spec.scenario}[{inner}]" if inner else self.spec.scenario


@dataclass
class SweepResult:
    """All cells of a sweep, in grid-expansion order."""

    cells: List[SweepCell] = field(default_factory=list)

    def results(self) -> List[JsonDict]:
        return [cell.result for cell in self.cells if cell.result is not None]

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.from_cache)


def _execute_remote(
    module_name: str, spec_dict: Dict[str, Any]
) -> Tuple[JsonDict, float]:
    """Worker-side cell execution (module-level, hence picklable).

    Importing the scenario's defining module re-populates the registry in
    spawn-started workers; under fork it is a no-op lookup.
    """
    import importlib

    importlib.import_module(module_name)
    spec = ScenarioSpec.from_dict(spec_dict)
    started = time.perf_counter()
    result = run_scenario(spec)
    return result, time.perf_counter() - started


class SweepRunner:
    """Expand a parameter grid over a base spec and execute every cell."""

    def __init__(
        self,
        base: ScenarioSpec,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        *,
        parallel: int = 1,
        cache_dir: Optional[str] = None,
        progress: Optional[ProgressFn] = None,
        seed_mode: str = "shared",
    ) -> None:
        if parallel < 1:
            raise ValueError("parallel must be >= 1")
        if seed_mode not in ("shared", "derived"):
            raise ValueError("seed_mode must be 'shared' or 'derived'")
        self.base = base
        self.grid: Dict[str, List[Any]] = {
            key: list(values) for key, values in (grid or {}).items()
        }
        for key, values in self.grid.items():
            if not values:
                raise ValueError(f"grid axis {key!r} has no values")
        self.parallel = parallel
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.progress = progress
        self.seed_mode = seed_mode

    # ------------------------------------------------------------ expansion

    def cells(self) -> List[SweepCell]:
        """The grid's cells in deterministic expansion order.

        Axes iterate in insertion order, the last axis fastest (standard
        odometer order), so printed sweep output groups naturally.

        A *zipped* axis -- a tuple of override paths whose values are
        same-length tuples, e.g. ``{("topology", "seed"): [(profile_a, 7),
        (profile_b, 8)]}`` -- varies several paths together as one axis
        instead of taking their product.
        """
        axes = list(self.grid.items())
        combos = itertools.product(*(values for _, values in axes))
        expanded: List[SweepCell] = []
        for index, combo in enumerate(combos):
            overrides: Dict[str, Any] = {}
            for (key, _), value in zip(axes, combo):
                if isinstance(key, tuple):
                    if len(key) != len(value):
                        raise ValueError(
                            f"zipped axis {key!r} expects values of length "
                            f"{len(key)}, got {value!r}"
                        )
                    overrides.update(zip(key, value))
                else:
                    overrides[key] = value
            spec = self.base.override(overrides)
            if self.seed_mode == "derived" and "seed" not in overrides:
                spec = spec.override({"seed": self.base.derive_seed(overrides)})
            expanded.append(
                SweepCell(
                    index=index,
                    overrides=overrides,
                    spec=spec,
                    key=spec.spec_hash(),
                )
            )
        return expanded

    # ------------------------------------------------------------ execution

    def run(self) -> SweepResult:
        """Execute all cells (serial or process-parallel) and return them.

        Cell results are independent of execution order and worker count:
        each cell's spec (including its seed) is fixed at expansion time.
        """
        get_scenario(self.base.scenario)  # fail fast on unknown scenarios
        cells = self.cells()
        total = len(cells)
        done = 0
        pending: List[SweepCell] = []
        for cell in cells:
            cached = self.cache.get(cell.spec) if self.cache else None
            if cached is not None:
                cell.result = cached
                cell.from_cache = True
                done += 1
                if self.progress:
                    self.progress(done, total, cell)
            else:
                pending.append(cell)

        if not pending:
            return SweepResult(cells=cells)

        if self.parallel == 1 or len(pending) == 1:
            for cell in pending:
                started = time.perf_counter()
                cell.result = run_scenario(cell.spec)
                cell.elapsed_seconds = time.perf_counter() - started
                self._finish(cell)
                done += 1
                if self.progress:
                    self.progress(done, total, cell)
            return SweepResult(cells=cells)

        module_name = get_scenario(self.base.scenario).__module__
        workers = min(self.parallel, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_remote, module_name, cell.spec.to_dict()): cell
                for cell in pending
            }
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    cell = futures[future]
                    cell.result, cell.elapsed_seconds = future.result()
                    self._finish(cell)
                    done += 1
                    if self.progress:
                        self.progress(done, total, cell)
        return SweepResult(cells=cells)

    def _finish(self, cell: SweepCell) -> None:
        if self.cache is not None and cell.result is not None:
            self.cache.put(cell.spec, cell.result)


def run_single_cell(
    base: ScenarioSpec,
    *,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
) -> JsonDict:
    """Execute a gridless spec as one sweep cell and return its result.

    The figure modules whose headline run is a single cell still route it
    through :class:`SweepRunner` so the CLI contract (``--cache`` result
    re-use, progress reporting) applies uniformly.
    """
    sweep = SweepRunner(
        base, parallel=parallel, cache_dir=cache_dir, progress=progress
    ).run()
    result = sweep.cells[0].result
    assert result is not None
    return result


def print_progress(stream=None) -> ProgressFn:
    """A ready-made progress callback: one status line per finished cell."""
    import sys

    out = stream if stream is not None else sys.stderr

    def report(done: int, total: int, cell: SweepCell) -> None:
        source = "cache" if cell.from_cache else f"{cell.elapsed_seconds:.1f}s"
        print(f"[sweep {done}/{total}] {cell.describe()} ({source})", file=out)

    return report
