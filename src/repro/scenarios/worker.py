"""``tfrc-sweep-worker``: drain sweep cells from a shared queue directory.

One worker process serves one queue directory (see
:class:`~repro.scenarios.executors.FileQueue` for the on-disk protocol).
Start any number of workers -- on the coordinating host or on other hosts
mounting the same directory -- and each repeatedly:

1. leases the next claimable cell with an atomic ``tasks/ -> claims/``
   rename (the claim file's mtime is the heartbeat, refreshed by a
   background thread while the cell simulates);
2. imports the scenario's defining module, rebuilds the
   :class:`~repro.scenarios.spec.ScenarioSpec`, and -- unless the result is
   already in the cell's :class:`~repro.scenarios.cache.ResultCache`
   (crash-resume) -- runs it and stores the result;
3. publishes a ``done/`` marker so the coordinator can assemble the sweep
   purely from the cache.

A failing cell is recorded under ``failures/`` and requeued until its
``max_attempts`` budget is spent; a worker killed mid-cell simply stops
heartbeating and the coordinator reclaims the lease.  ``--cell-timeout``
bounds a single cell's wall-clock execution (a hung simulation becomes a
``timeout`` failure record instead of a worker that never returns), and
idle workers poll the queue with exponential backoff plus jitter up to
``--max-poll-interval`` so a large idle fleet does not hammer a shared
mount in sync.

With ``--vector-batch N`` a worker that claims a cell the lockstep kernel
supports (see :func:`repro.scenarios.vector.vector_capability`) also claims
up to ``N - 1`` further queued cells from the same batch group and advances
them as one :func:`~repro.scenarios.vector.run_vector_batch` call --
heartbeating every lease, and publishing per-cell completions/failures
exactly as if the cells had run one at a time.  Results are bit-identical
either way.  A batch that fails in lockstep **splits**: each member cell
is retried on the scalar path in-place, so one poison lane costs one cell,
not N.

Under an installed :class:`~repro.scenarios.faults.FaultPlan` (chaos
testing only; see :mod:`repro.scenarios.faults`) the worker additionally
honors the ``worker_kill`` / ``batch_kill`` / ``torn_cache_write`` /
``heartbeat_stall`` / ``clock_skew`` fault sites.

Usage::

    tfrc-sweep-worker SHARED_DIR                    # serve until killed
    tfrc-sweep-worker SHARED_DIR --idle-timeout 60  # exit after 60s idle
    tfrc-sweep-worker SHARED_DIR --once             # drain, then exit
    tfrc-sweep-worker SHARED_DIR --vector-batch 64  # lockstep batches
    tfrc-sweep-worker SHARED_DIR --cell-timeout 900 # bound hung cells
"""

from __future__ import annotations

import argparse
import importlib
import os
import random
import signal
import socket
import sys
import threading
import time
import traceback
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.scenarios import faults
from repro.scenarios.cache import ResultCache
from repro.scenarios._fsio import read_json
from repro.scenarios.executors import FileQueue
from repro.scenarios.spec import JsonDict, ScenarioSpec, run_scenario


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _log(worker_id: str, message: str) -> None:
    print(f"[sweep-worker {worker_id}] {message}", file=sys.stderr, flush=True)


class CellTimeout(Exception):
    """A cell exceeded the worker's ``--cell-timeout`` wall-clock bound."""


@contextmanager
def _cell_alarm(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`CellTimeout` in the body after ``seconds`` of wall time.

    Implemented with ``SIGALRM``/``setitimer``, which only works in the
    main thread of the main interpreter; elsewhere (or on platforms
    without ``SIGALRM``, or with no bound set) this is a no-op -- the
    timeout is an operational guard for real worker processes, not a hard
    real-time contract.
    """
    if (
        seconds is None
        or seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise CellTimeout(
            f"cell execution exceeded the {seconds:.1f}s wall-clock bound "
            f"(--cell-timeout)"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _claim_batch_mates(
    fq: FileQueue, worker_id: str, primary: dict, limit: int
) -> list:
    """Lease up to ``limit`` queued tasks batchable with ``primary``.

    A mate must name the same scenario module and cache directory, resolve
    to a vector-capable spec, and share the primary's batch group (same
    spec modulo the batch axes).  Task payloads are screened *before* the
    claim rename, so incompatible tasks are never leased and released
    (which would churn other workers' scans); the post-rename payload is
    re-checked because an enqueue may have overwritten the task in between.

    **Suspected-poison isolation**: a retried cell (``attempts > 0``) is
    never batched -- not as a mate, and not as a primary (enforced by the
    caller).  A cell that already took a batch down with it would
    otherwise keep spending its innocent mates' retry budgets on every
    round; solo retries bound the blast radius to the cell itself.
    """
    from repro.scenarios.vector import batch_key, vector_capability

    try:
        primary_spec = ScenarioSpec.from_dict(primary["spec"])
        if vector_capability(primary_spec) is not None:
            return []
        group = batch_key(primary_spec)
    except Exception:
        return []

    def compatible(payload: Optional[dict]) -> bool:
        if not payload or payload.get("key") == primary["key"]:
            return False
        if int(payload.get("attempts", 0)) > 0:
            return False  # suspected poison: retries run solo
        if payload.get("module") != primary["module"]:
            return False
        if payload.get("cache_dir") != primary["cache_dir"]:
            return False
        try:
            spec = ScenarioSpec.from_dict(payload["spec"])
            return (
                vector_capability(spec) is None and batch_key(spec) == group
            )
        except Exception:
            return False

    mates = []
    for task in sorted(fq.tasks.glob("*.json")):
        if len(mates) >= limit:
            break
        if not compatible(read_json(task)):
            continue
        claimed = fq.claim_task(task, worker_id)
        if claimed is not None and compatible(claimed[1]):
            mates.append(claimed)
        elif claimed is not None:
            # The task changed between screening and claiming: put it back.
            fq.release_claim(claimed[0], worker_id)
            fq.enqueue(claimed[1])
    return mates


def _fail_cell(
    fq: FileQueue,
    claim: Path,
    payload: dict,
    *,
    worker_id: str,
    kind: str,
    error: str,
    released: set,
    verbose: bool,
) -> None:
    """Record one cell's failure; requeue it while its budget lasts."""
    key = payload["key"]
    attempts = int(payload.get("attempts", 0))
    max_attempts = int(payload.get("max_attempts", 1))
    fq.record_failure(
        key,
        worker=worker_id,
        kind=kind,
        error=error,
        attempts=attempts + 1,
    )
    if attempts + 1 < max_attempts:
        # Release the lease BEFORE republishing the task: enqueueing first
        # opens a race where another worker claims the new task (rename
        # onto our still-present claim path) and a later unlink of ours
        # would delete *its* fresh lease.  For the same reason the final
        # cleanup in process_one must not touch the path again once it is
        # released here.
        fq.release_claim(claim, worker_id)
        released.add(key)
        requeued = dict(payload)
        requeued["attempts"] = attempts + 1
        fq.enqueue(requeued)
    if verbose:
        _log(
            worker_id,
            f"cell {key} failed "
            f"(attempt {attempts + 1}/{max_attempts}, {kind}):\n{error}",
        )


def _execute_pending(
    pending: list,
    *,
    worker_id: str,
    cell_timeout: Optional[float],
    verbose: bool,
) -> List[Tuple[Optional[JsonDict], Optional[Tuple[str, str]]]]:
    """Run the not-yet-cached cells; per cell ``(result, error-or-None)``.

    ``error`` is ``(kind, detail)`` -- ``kind`` is the failure-record kind
    (``"timeout"`` for a :class:`CellTimeout`, else ``"error"``).  Multiple
    cells first try one lockstep vector batch; a batch that fails (any
    exception, including a timeout) **splits** and every member retries on
    the scalar path in-place, so a single poison lane fails one cell
    instead of all N.  :class:`~repro.scenarios.faults.WorkerKilled`
    (chaos testing) always propagates -- a killed worker runs nothing.
    """
    specs = [spec for _claim, _payload, spec, _cache in pending]
    if len(specs) > 1:
        # batch_kill is evaluated per member cell: a batch containing any
        # marked cell dies whole (one process ran all N lanes).
        for _claim, payload, _spec, _cache in pending:
            if faults.fires(
                "batch_kill", payload["key"], int(payload.get("attempts", 0))
            ):
                raise faults.WorkerKilled(
                    f"batch_kill on {payload['key']} mid lockstep batch "
                    f"of {len(specs)}"
                )
        try:
            with _cell_alarm(cell_timeout):
                results = run_vector_batch_import()(specs)
            return [(result, None) for result in results]
        except faults.WorkerKilled:
            raise
        except Exception:
            if verbose:
                _log(
                    worker_id,
                    f"lockstep batch of {len(specs)} failed; splitting to "
                    f"scalar retry:\n{traceback.format_exc()}",
                )
    outcomes: List[Tuple[Optional[JsonDict], Optional[Tuple[str, str]]]] = []
    for _claim, _payload, spec, _cache in pending:
        try:
            with _cell_alarm(cell_timeout):
                outcomes.append((run_scenario(spec), None))
        except faults.WorkerKilled:
            raise
        except CellTimeout as exc:
            outcomes.append((None, ("timeout", str(exc))))
        except Exception:
            outcomes.append((None, ("error", traceback.format_exc())))
    return outcomes


def run_vector_batch_import():
    """Late import hook (vector imports executors; avoid import cycles)."""
    from repro.scenarios.vector import run_vector_batch

    return run_vector_batch


def process_one(
    fq: FileQueue,
    *,
    worker_id: str,
    heartbeat_interval: float = 5.0,
    verbose: bool = True,
    batch_limit: int = 1,
    cell_timeout: Optional[float] = None,
) -> Optional[bool]:
    """Claim and execute one cell (or, with ``batch_limit`` > 1, one
    lockstep batch of compatible cells).

    Returns True on success, False on a recorded failure (or a simulated
    worker kill), None when there was nothing claimable.
    """
    claimed = fq.claim_next(worker_id)
    if claimed is None:
        return None
    claims = [claimed]
    if batch_limit > 1 and int(claimed[1].get("attempts", 0)) == 0:
        claims.extend(
            _claim_batch_mates(fq, worker_id, claimed[1], batch_limit - 1)
        )

    stop = threading.Event()
    stall_until: dict = {}

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            for claim, payload in claims:
                key = payload["key"]
                attempt = int(payload.get("attempts", 0))
                if faults.active() is not None:
                    stall = faults.heartbeat_stalled(key, attempt)
                    if stall > 0.0:
                        deadline = stall_until.setdefault(
                            key, time.monotonic() + stall
                        )
                        if time.monotonic() < deadline:
                            continue  # silent: the lease is left to expire
                    skewed = faults.skewed_claim_time(key, attempt)
                    if skewed is not None:
                        # A skewed worker stamps explicit (past) times
                        # instead of touching the file.
                        try:
                            os.utime(claim, (skewed, skewed))
                        except OSError:
                            pass
                        continue
                fq.heartbeat(claim)

    heartbeater = threading.Thread(target=beat, daemon=True)
    heartbeater.start()
    started = time.perf_counter()
    released: set = set()
    completed: set = set()
    abandoned = False
    try:
        for _claim, payload in claims:
            if faults.fires(
                "worker_kill", payload["key"], int(payload.get("attempts", 0))
            ):
                raise faults.WorkerKilled(f"worker_kill on {payload['key']}")
        importlib.import_module(claims[0][1]["module"])
        pending = []  # (claim, payload, spec, cache) not yet in cache
        for claim, payload in claims:
            spec = ScenarioSpec.from_dict(payload["spec"])
            cache = ResultCache(fq.resolve_cache_dir(payload["cache_dir"]))
            if cache.get(spec) is not None:
                fq.complete(
                    payload["key"],
                    worker=worker_id,
                    elapsed_seconds=0.0,
                    attempts=int(payload.get("attempts", 0)),
                    cached=True,
                )
                completed.add(payload["key"])
                if verbose:
                    _log(worker_id, f"finished {payload['key']} (cache)")
            else:
                pending.append((claim, payload, spec, cache))
        ok = True
        if pending:
            outcomes = _execute_pending(
                pending,
                worker_id=worker_id,
                cell_timeout=cell_timeout,
                verbose=verbose,
            )
            # Lanes of a batch genuinely ran concurrently: split the wall
            # time evenly, as the vector executor does.
            elapsed = (time.perf_counter() - started) / len(pending)
            for (claim, payload, spec, cache), (result, error) in zip(
                pending, outcomes
            ):
                key = payload["key"]
                attempts = int(payload.get("attempts", 0))
                if error is not None:
                    kind, detail = error
                    _fail_cell(
                        fq,
                        claim,
                        payload,
                        worker_id=worker_id,
                        kind=kind,
                        error=detail,
                        released=released,
                        verbose=verbose,
                    )
                    ok = False
                    continue
                if faults.fires("torn_cache_write", key, attempts):
                    # Simulated crash mid cache commit: a truncated entry
                    # lands at the final path, then the done marker still
                    # publishes -- the coordinator must detect the
                    # corruption (checksum), quarantine the entry, and
                    # re-execute the cell.
                    faults.write_torn(
                        cache.entry_path(spec), cache.serialize(spec, result)
                    )
                else:
                    cache.put(spec, result)
                fq.complete(
                    key,
                    worker=worker_id,
                    elapsed_seconds=elapsed,
                    attempts=attempts,
                    cached=False,
                )
                completed.add(key)
                if verbose:
                    batched = (
                        f", batch of {len(pending)}" if len(pending) > 1 else ""
                    )
                    _log(
                        worker_id,
                        f"finished {key} ({elapsed:.1f}s{batched})",
                    )
        return ok
    except faults.WorkerKilled as kill:
        # Simulated hard death (chaos testing): stop heartbeating and
        # abandon every lease *without* releasing it or recording failures
        # -- exactly the state a kill -9 leaves.  The leases expire and the
        # coordinator reclaims them; this worker loop survives to serve
        # other cells, as a replacement worker would.
        stop.set()
        heartbeater.join()
        abandoned = True
        if verbose:
            _log(
                worker_id,
                f"[fault] simulated kill ({kill}); abandoning "
                f"{len(claims)} lease(s) to expire",
            )
        return False
    except Exception:
        # Stop heartbeating before any lease is released: a released path
        # may be renamed onto by another worker's fresh claim, which our
        # beat thread must not touch.
        stop.set()
        heartbeater.join()
        error = traceback.format_exc()
        for claim, payload in claims:
            if payload["key"] in completed:
                continue
            _fail_cell(
                fq,
                claim,
                payload,
                worker_id=worker_id,
                kind="error",
                error=error,
                released=released,
                verbose=verbose,
            )
        return False
    finally:
        stop.set()
        heartbeater.join()
        if not abandoned:
            for claim, payload in claims:
                if payload["key"] not in released:
                    fq.release_claim(claim, worker_id)


def drain(
    queue_dir: str,
    *,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.5,
    max_poll_interval: Optional[float] = None,
    idle_timeout: Optional[float] = None,
    heartbeat_interval: float = 5.0,
    max_cells: Optional[int] = None,
    once: bool = False,
    verbose: bool = True,
    batch_limit: int = 1,
    cell_timeout: Optional[float] = None,
) -> int:
    """Serve ``queue_dir`` until an exit condition; returns cells executed.

    Exit conditions: ``once`` (queue found empty), ``idle_timeout`` seconds
    without anything claimable, or ``max_cells`` processed.  With none of
    them, serve until killed -- lease reclaim makes a hard kill safe.

    Idle polling backs off exponentially from ``poll_interval`` up to
    ``max_poll_interval`` (default ``max(poll_interval, 10)``) with
    uniform jitter, so a fleet of idle workers sharing one mount neither
    scans it at full rate forever nor synchronizes into stampedes; any
    claimed cell resets the backoff.
    """
    worker_id = worker_id or default_worker_id()
    fq = FileQueue(queue_dir).ensure()
    executed = 0
    idle_since: Optional[float] = None
    cap = (
        max_poll_interval
        if max_poll_interval is not None
        else max(poll_interval, 10.0)
    )
    delay = poll_interval
    jitter = random.Random(worker_id)  # per-worker decorrelation only
    while True:
        outcome = process_one(
            fq,
            worker_id=worker_id,
            heartbeat_interval=heartbeat_interval,
            verbose=verbose,
            batch_limit=batch_limit,
            cell_timeout=cell_timeout,
        )
        if outcome is None:
            if once:
                break
            now = time.monotonic()
            idle_since = idle_since if idle_since is not None else now
            if idle_timeout is not None and now - idle_since >= idle_timeout:
                break
            sleep_for = jitter.uniform(0.5 * delay, delay)
            if idle_timeout is not None:
                # Never sleep past the idle deadline.
                sleep_for = min(
                    sleep_for, max(0.0, idle_since + idle_timeout - now)
                )
            time.sleep(sleep_for)
            delay = min(cap, delay * 2.0)
            continue
        idle_since = None
        delay = poll_interval
        executed += 1
        if max_cells is not None and executed >= max_cells:
            break
    return executed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tfrc-sweep-worker",
        description="Drain TFRC sweep cells from a (shared) queue directory "
        "written by SweepRunner's file-queue executor.",
    )
    parser.add_argument(
        "queue_dir",
        help="queue directory (may be a shared mount used by other hosts)",
    )
    parser.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="identity recorded in claims/completions "
        "(default: <hostname>-<pid>)",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="S",
        help="initial seconds between queue scans while idle; backs off "
        "exponentially with jitter while nothing is claimable "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--max-poll-interval", type=float, default=None, metavar="S",
        help="cap on the idle-poll backoff "
        "(default: max(--poll-interval, 10))",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="S",
        help="exit after this many seconds with nothing claimable "
        "(default: serve until killed)",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=5.0, metavar="S",
        help="lease heartbeat interval; must be well below the "
        "coordinator's lease timeout (default: 5)",
    )
    parser.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="exit after executing N cells",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="exit as soon as the queue is found empty",
    )
    parser.add_argument(
        "--vector-batch", type=int, default=1, metavar="N",
        help="when a claimed cell supports the lockstep vector kernel, "
        "also claim up to N-1 compatible queued cells and advance them "
        "as one batch (default: 1 = one cell at a time)",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="S",
        help="wall-clock bound on one cell's execution; a cell exceeding "
        "it gets a 'timeout' failure record and is requeued within its "
        "retry budget (default: unbounded)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell log lines"
    )
    args = parser.parse_args(argv)
    if args.poll_interval <= 0:
        parser.error("--poll-interval must be > 0")
    if (
        args.max_poll_interval is not None
        and args.max_poll_interval < args.poll_interval
    ):
        parser.error("--max-poll-interval must be >= --poll-interval")
    if args.heartbeat <= 0:
        parser.error("--heartbeat must be > 0")
    if args.max_cells is not None and args.max_cells < 1:
        parser.error("--max-cells must be >= 1")
    if args.vector_batch < 1:
        parser.error("--vector-batch must be >= 1")
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error("--cell-timeout must be > 0")

    worker_id = args.worker_id or default_worker_id()
    if not args.quiet:
        _log(worker_id, f"serving {args.queue_dir}")
    executed = drain(
        args.queue_dir,
        worker_id=worker_id,
        poll_interval=args.poll_interval,
        max_poll_interval=args.max_poll_interval,
        idle_timeout=args.idle_timeout,
        heartbeat_interval=args.heartbeat,
        max_cells=args.max_cells,
        once=args.once,
        verbose=not args.quiet,
        batch_limit=args.vector_batch,
        cell_timeout=args.cell_timeout,
    )
    if not args.quiet:
        _log(worker_id, f"exiting after {executed} cell(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
