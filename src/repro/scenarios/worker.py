"""``tfrc-sweep-worker``: drain sweep cells from a shared queue directory.

One worker process serves one queue directory (see
:class:`~repro.scenarios.executors.FileQueue` for the on-disk protocol).
Start any number of workers -- on the coordinating host or on other hosts
mounting the same directory -- and each repeatedly:

1. leases the next claimable cell with an atomic ``tasks/ -> claims/``
   rename (the claim file's mtime is the heartbeat, refreshed by a
   background thread while the cell simulates);
2. imports the scenario's defining module, rebuilds the
   :class:`~repro.scenarios.spec.ScenarioSpec`, and -- unless the result is
   already in the cell's :class:`~repro.scenarios.cache.ResultCache`
   (crash-resume) -- runs it and stores the result;
3. publishes a ``done/`` marker so the coordinator can assemble the sweep
   purely from the cache.

A failing cell is recorded under ``failures/`` and requeued until its
``max_attempts`` budget is spent; a worker killed mid-cell simply stops
heartbeating and the coordinator reclaims the lease.

With ``--vector-batch N`` a worker that claims a cell the lockstep kernel
supports (see :func:`repro.scenarios.vector.vector_capability`) also claims
up to ``N - 1`` further queued cells from the same batch group and advances
them as one :func:`~repro.scenarios.vector.run_vector_batch` call --
heartbeating every lease, and publishing per-cell completions/failures
exactly as if the cells had run one at a time.  Results are bit-identical
either way.

Usage::

    tfrc-sweep-worker SHARED_DIR                    # serve until killed
    tfrc-sweep-worker SHARED_DIR --idle-timeout 60  # exit after 60s idle
    tfrc-sweep-worker SHARED_DIR --once             # drain, then exit
    tfrc-sweep-worker SHARED_DIR --vector-batch 64  # lockstep batches
"""

from __future__ import annotations

import argparse
import importlib
import os
import socket
import sys
import threading
import time
import traceback
from typing import List, Optional

from repro.scenarios.cache import ResultCache
from repro.scenarios.executors import FileQueue, _read_json
from repro.scenarios.spec import ScenarioSpec, run_scenario


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _log(worker_id: str, message: str) -> None:
    print(f"[sweep-worker {worker_id}] {message}", file=sys.stderr, flush=True)


def _claim_batch_mates(
    fq: FileQueue, worker_id: str, primary: dict, limit: int
) -> list:
    """Lease up to ``limit`` queued tasks batchable with ``primary``.

    A mate must name the same scenario module and cache directory, resolve
    to a vector-capable spec, and share the primary's batch group (same
    spec modulo the batch axes).  Task payloads are screened *before* the
    claim rename, so incompatible tasks are never leased and released
    (which would churn other workers' scans); the post-rename payload is
    re-checked because an enqueue may have overwritten the task in between.
    """
    from repro.scenarios.vector import batch_key, vector_capability

    try:
        primary_spec = ScenarioSpec.from_dict(primary["spec"])
        if vector_capability(primary_spec) is not None:
            return []
        group = batch_key(primary_spec)
    except Exception:
        return []

    def compatible(payload: Optional[dict]) -> bool:
        if not payload or payload.get("key") == primary["key"]:
            return False
        if payload.get("module") != primary["module"]:
            return False
        if payload.get("cache_dir") != primary["cache_dir"]:
            return False
        try:
            spec = ScenarioSpec.from_dict(payload["spec"])
            return (
                vector_capability(spec) is None and batch_key(spec) == group
            )
        except Exception:
            return False

    mates = []
    for task in sorted(fq.tasks.glob("*.json")):
        if len(mates) >= limit:
            break
        if not compatible(_read_json(task)):
            continue
        claimed = fq.claim_task(task, worker_id)
        if claimed is not None and compatible(claimed[1]):
            mates.append(claimed)
        elif claimed is not None:
            # The task changed between screening and claiming: put it back.
            fq.release_claim(claimed[0], worker_id)
            fq.enqueue(claimed[1])
    return mates


def process_one(
    fq: FileQueue,
    *,
    worker_id: str,
    heartbeat_interval: float = 5.0,
    verbose: bool = True,
    batch_limit: int = 1,
) -> Optional[bool]:
    """Claim and execute one cell (or, with ``batch_limit`` > 1, one
    lockstep batch of compatible cells).

    Returns True on success, False on a recorded failure, None when there
    was nothing claimable.
    """
    claimed = fq.claim_next(worker_id)
    if claimed is None:
        return None
    claims = [claimed]
    if batch_limit > 1:
        claims.extend(
            _claim_batch_mates(fq, worker_id, claimed[1], batch_limit - 1)
        )

    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            for claim, _payload in claims:
                fq.heartbeat(claim)

    heartbeater = threading.Thread(target=beat, daemon=True)
    heartbeater.start()
    started = time.perf_counter()
    released = set()
    completed = set()
    try:
        importlib.import_module(claims[0][1]["module"])
        pending = []  # (claim, payload, spec, cache) not yet in cache
        for claim, payload in claims:
            spec = ScenarioSpec.from_dict(payload["spec"])
            cache = ResultCache(fq.resolve_cache_dir(payload["cache_dir"]))
            if cache.get(spec) is not None:
                fq.complete(
                    payload["key"],
                    worker=worker_id,
                    elapsed_seconds=0.0,
                    attempts=int(payload.get("attempts", 0)),
                    cached=True,
                )
                completed.add(payload["key"])
                if verbose:
                    _log(worker_id, f"finished {payload['key']} (cache)")
            else:
                pending.append((claim, payload, spec, cache))
        if pending:
            specs = [spec for _claim, _payload, spec, _cache in pending]
            if len(specs) > 1:
                from repro.scenarios.vector import run_vector_batch

                results = run_vector_batch(specs)
            else:
                results = [run_scenario(specs[0])]
            # Lanes of a batch genuinely ran concurrently: split the wall
            # time evenly, as the vector executor does.
            elapsed = (time.perf_counter() - started) / len(pending)
            for (claim, payload, spec, cache), result in zip(pending, results):
                cache.put(spec, result)
                fq.complete(
                    payload["key"],
                    worker=worker_id,
                    elapsed_seconds=elapsed,
                    attempts=int(payload.get("attempts", 0)),
                    cached=False,
                )
                completed.add(payload["key"])
                if verbose:
                    batched = f", batch of {len(pending)}" if len(pending) > 1 else ""
                    _log(
                        worker_id,
                        f"finished {payload['key']} ({elapsed:.1f}s{batched})",
                    )
        return True
    except Exception:
        # Stop heartbeating before any lease is released: a released path
        # may be renamed onto by another worker's fresh claim, which our
        # beat thread must not touch.
        stop.set()
        heartbeater.join()
        error = traceback.format_exc()
        for claim, payload in claims:
            key = payload["key"]
            if key in completed:
                continue
            attempts = int(payload.get("attempts", 0))
            max_attempts = int(payload.get("max_attempts", 1))
            fq.record_failure(
                key,
                worker=worker_id,
                kind="error",
                error=error,
                attempts=attempts + 1,
            )
            if attempts + 1 < max_attempts:
                # Release the lease BEFORE republishing the task:
                # enqueueing first opens a race where another worker
                # claims the new task (rename onto our still-present
                # claim path) and a later unlink of ours would delete
                # *its* fresh lease.  For the same reason the final
                # cleanup below must not touch the path again once it is
                # released here.
                fq.release_claim(claim, worker_id)
                released.add(key)
                requeued = dict(payload)
                requeued["attempts"] = attempts + 1
                fq.enqueue(requeued)
            if verbose:
                _log(
                    worker_id,
                    f"cell {key} failed "
                    f"(attempt {attempts + 1}/{max_attempts}):\n{error}",
                )
        return False
    finally:
        stop.set()
        heartbeater.join()
        for claim, payload in claims:
            if payload["key"] not in released:
                fq.release_claim(claim, worker_id)


def drain(
    queue_dir: str,
    *,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.5,
    idle_timeout: Optional[float] = None,
    heartbeat_interval: float = 5.0,
    max_cells: Optional[int] = None,
    once: bool = False,
    verbose: bool = True,
    batch_limit: int = 1,
) -> int:
    """Serve ``queue_dir`` until an exit condition; returns cells executed.

    Exit conditions: ``once`` (queue found empty), ``idle_timeout`` seconds
    without anything claimable, or ``max_cells`` processed.  With none of
    them, serve until killed -- lease reclaim makes a hard kill safe.
    """
    worker_id = worker_id or default_worker_id()
    fq = FileQueue(queue_dir).ensure()
    executed = 0
    idle_since: Optional[float] = None
    while True:
        outcome = process_one(
            fq,
            worker_id=worker_id,
            heartbeat_interval=heartbeat_interval,
            verbose=verbose,
            batch_limit=batch_limit,
        )
        if outcome is None:
            if once:
                break
            now = time.monotonic()
            idle_since = idle_since if idle_since is not None else now
            if idle_timeout is not None and now - idle_since >= idle_timeout:
                break
            time.sleep(poll_interval)
            continue
        idle_since = None
        executed += 1
        if max_cells is not None and executed >= max_cells:
            break
    return executed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tfrc-sweep-worker",
        description="Drain TFRC sweep cells from a (shared) queue directory "
        "written by SweepRunner's file-queue executor.",
    )
    parser.add_argument(
        "queue_dir",
        help="queue directory (may be a shared mount used by other hosts)",
    )
    parser.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="identity recorded in claims/completions "
        "(default: <hostname>-<pid>)",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="S",
        help="seconds between queue scans while idle (default: 0.5)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="S",
        help="exit after this many seconds with nothing claimable "
        "(default: serve until killed)",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=5.0, metavar="S",
        help="lease heartbeat interval; must be well below the "
        "coordinator's lease timeout (default: 5)",
    )
    parser.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="exit after executing N cells",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="exit as soon as the queue is found empty",
    )
    parser.add_argument(
        "--vector-batch", type=int, default=1, metavar="N",
        help="when a claimed cell supports the lockstep vector kernel, "
        "also claim up to N-1 compatible queued cells and advance them "
        "as one batch (default: 1 = one cell at a time)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell log lines"
    )
    args = parser.parse_args(argv)
    if args.poll_interval <= 0:
        parser.error("--poll-interval must be > 0")
    if args.heartbeat <= 0:
        parser.error("--heartbeat must be > 0")
    if args.max_cells is not None and args.max_cells < 1:
        parser.error("--max-cells must be >= 1")
    if args.vector_batch < 1:
        parser.error("--vector-batch must be >= 1")

    worker_id = args.worker_id or default_worker_id()
    if not args.quiet:
        _log(worker_id, f"serving {args.queue_dir}")
    executed = drain(
        args.queue_dir,
        worker_id=worker_id,
        poll_interval=args.poll_interval,
        idle_timeout=args.idle_timeout,
        heartbeat_interval=args.heartbeat,
        max_cells=args.max_cells,
        once=args.once,
        verbose=not args.quiet,
        batch_limit=args.vector_batch,
    )
    if not args.quiet:
        _log(worker_id, f"exiting after {executed} cell(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
