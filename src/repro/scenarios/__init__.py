"""Unified scenario subsystem.

Everything needed to describe, build, and sweep the paper's simulation
scenarios:

* :mod:`~repro.scenarios.spec` -- the declarative
  :class:`~repro.scenarios.spec.ScenarioSpec` (topology, flow mix, queue,
  loss model, seed, duration), stable spec hashing, and the
  ``@register_scenario`` registry.
* :mod:`~repro.scenarios.builders` -- the dumbbell / lossy-path scenario
  builders shared by every figure module, plus registered declarative
  entry points (``mixed_dumbbell``, ``tfrc_lossy_path``).
* :mod:`~repro.scenarios.sweep` -- :class:`~repro.scenarios.sweep.SweepRunner`:
  parameter-grid expansion, deterministic per-cell seeding, progress
  reporting.
* :mod:`~repro.scenarios.executors` -- the pluggable execution backends
  behind ``SweepRunner.run``: serial, local process pool, and the
  multi-host file-queue coordinator (atomic-rename leases, heartbeats,
  dead-worker reclaim) drained by ``tfrc-sweep-worker`` processes
  (:mod:`~repro.scenarios.worker`).
* :mod:`~repro.scenarios.cache` -- the on-disk JSON result cache keyed by
  spec hash, with checksummed durable entries and corrupt-entry
  quarantine (also the result transport for the file-queue executor).
* :mod:`~repro.scenarios.vector` -- the ``tfrc_equation_grid`` scenario and
  the ``vector`` executor, which advances compatible cells in lockstep
  numpy batches (:mod:`repro.sim.vector_kernel`) with scalar fallback.
* :mod:`~repro.scenarios.faults` -- deterministic fault injection
  (:class:`~repro.scenarios.faults.FaultPlan`) for chaos-testing the
  sweep fabric.
* :mod:`~repro.scenarios.fsck` -- the ``tfrc-sweep-fsck`` audit/repair
  tool for queue directories and caches.
"""

from repro.scenarios.builders import (
    InternetPathRun,
    MixedDumbbellResult,
    PathProfile,
    SingleTfrcResult,
    build_mixed_dumbbell,
    lossless_phase,
    loss_model_from_spec,
    periodic_phase,
    run_internet_path,
    run_mixed_dumbbell,
    run_single_tfrc_on_lossy_path,
    run_tfrc_probe_path,
    steady_state_window,
)
from repro.scenarios.cache import ResultCache
from repro.scenarios.faults import FaultInjectionError, FaultPlan, WorkerKilled
from repro.scenarios.fsck import audit as fsck_audit
from repro.scenarios.executors import (
    EXECUTOR_NAMES,
    CellCompletion,
    ExecutorArg,
    FileQueue,
    FileQueueExecutor,
    PoolExecutor,
    SerialExecutor,
    SweepCellError,
    SweepExecutor,
    SweepPlan,
    resolve_executor,
)
from repro.scenarios.spec import (
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
)
from repro.scenarios.sweep import (
    SweepCell,
    SweepResult,
    SweepRunner,
    print_progress,
    run_single_cell,
)
from repro.scenarios.vector import (
    EQUATION_GRID_SCENARIO,
    VectorExecutor,
    VectorFallbackWarning,
    batch_key,
    run_vector_batch,
    spec_to_cell_params,
    vector_capability,
)

__all__ = [
    "EQUATION_GRID_SCENARIO",
    "EXECUTOR_NAMES",
    "CellCompletion",
    "ExecutorArg",
    "FaultInjectionError",
    "FaultPlan",
    "FileQueue",
    "FileQueueExecutor",
    "WorkerKilled",
    "fsck_audit",
    "InternetPathRun",
    "MixedDumbbellResult",
    "PathProfile",
    "PoolExecutor",
    "ResultCache",
    "ScenarioSpec",
    "SerialExecutor",
    "SingleTfrcResult",
    "SweepCell",
    "SweepCellError",
    "SweepExecutor",
    "SweepPlan",
    "SweepResult",
    "SweepRunner",
    "VectorExecutor",
    "VectorFallbackWarning",
    "batch_key",
    "build_mixed_dumbbell",
    "get_scenario",
    "resolve_executor",
    "list_scenarios",
    "loss_model_from_spec",
    "lossless_phase",
    "periodic_phase",
    "print_progress",
    "register_scenario",
    "run_internet_path",
    "run_mixed_dumbbell",
    "run_scenario",
    "run_single_cell",
    "run_single_tfrc_on_lossy_path",
    "run_tfrc_probe_path",
    "run_vector_batch",
    "spec_to_cell_params",
    "steady_state_window",
    "vector_capability",
]
