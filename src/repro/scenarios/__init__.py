"""Unified scenario subsystem.

Everything needed to describe, build, and sweep the paper's simulation
scenarios:

* :mod:`~repro.scenarios.spec` -- the declarative
  :class:`~repro.scenarios.spec.ScenarioSpec` (topology, flow mix, queue,
  loss model, seed, duration), stable spec hashing, and the
  ``@register_scenario`` registry.
* :mod:`~repro.scenarios.builders` -- the dumbbell / lossy-path scenario
  builders shared by every figure module, plus registered declarative
  entry points (``mixed_dumbbell``, ``tfrc_lossy_path``).
* :mod:`~repro.scenarios.sweep` -- :class:`~repro.scenarios.sweep.SweepRunner`:
  parameter-grid expansion, deterministic per-cell seeding, process-pool
  parallelism, progress reporting.
* :mod:`~repro.scenarios.cache` -- the on-disk JSON result cache keyed by
  spec hash.
"""

from repro.scenarios.builders import (
    InternetPathRun,
    MixedDumbbellResult,
    PathProfile,
    SingleTfrcResult,
    build_mixed_dumbbell,
    lossless_phase,
    loss_model_from_spec,
    periodic_phase,
    run_internet_path,
    run_mixed_dumbbell,
    run_single_tfrc_on_lossy_path,
    run_tfrc_probe_path,
    steady_state_window,
)
from repro.scenarios.cache import ResultCache
from repro.scenarios.spec import (
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
)
from repro.scenarios.sweep import (
    SweepCell,
    SweepResult,
    SweepRunner,
    print_progress,
    run_single_cell,
)

__all__ = [
    "InternetPathRun",
    "MixedDumbbellResult",
    "PathProfile",
    "ResultCache",
    "ScenarioSpec",
    "SingleTfrcResult",
    "SweepCell",
    "SweepResult",
    "SweepRunner",
    "build_mixed_dumbbell",
    "get_scenario",
    "list_scenarios",
    "loss_model_from_spec",
    "lossless_phase",
    "periodic_phase",
    "print_progress",
    "register_scenario",
    "run_internet_path",
    "run_mixed_dumbbell",
    "run_scenario",
    "run_single_cell",
    "run_single_tfrc_on_lossy_path",
    "run_tfrc_probe_path",
    "steady_state_window",
]
