"""On-disk JSON result cache keyed by scenario spec hash.

One file per cell: ``<cache_dir>/<scenario>-<hash>.json`` holding the spec
(for human inspection / debugging), its result, and a ``checksum`` over
both.  Writes are durable and atomic (tmp file + fsync + rename) so a
sweep interrupted mid-write -- or a host losing power mid-commit -- never
leaves a silently-trusted corrupt entry.  A corrupt entry found on read
(truncated JSON, checksum mismatch, wrong shape) is **quarantined** into
``<cache_dir>/quarantine/`` and reported as a miss, so the damaged cell is
automatically re-executed instead of poisoning the sweep; missing files
are plain misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

# Re-exported: the atomic writer predates _fsio and callers import it from
# here (executors, tests); _fsio.py is its canonical home now.
from repro.scenarios._fsio import atomic_write_json  # noqa: F401
from repro.scenarios.spec import JsonDict, ScenarioSpec

#: subdirectory (of the cache root) holding quarantined corrupt entries.
QUARANTINE_DIRNAME = "quarantine"

#: entry statuses returned by :meth:`ResultCache.get_status`.
STATUS_HIT = "hit"
STATUS_MISS = "miss"
STATUS_CORRUPT = "corrupt"


def payload_checksum(spec_dict: JsonDict, result: JsonDict) -> str:
    """The entry checksum: sha256 over the canonical spec+result JSON."""
    canonical = json.dumps(
        {"result": result, "spec": spec_dict},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def verify_entry(payload: Any) -> Optional[str]:
    """Validate a parsed cache entry; None when intact, else the defect.

    Entries written before checksums existed (no ``checksum`` key) are
    accepted as long as their shape is right -- corruption in them is
    undetectable anyway -- so old caches keep resuming sweeps.
    """
    if not isinstance(payload, dict):
        return "entry is not a JSON object"
    result = payload.get("result")
    if not isinstance(result, dict):
        return "entry has no result object"
    spec_dict = payload.get("spec")
    if not isinstance(spec_dict, dict):
        return "entry has no spec object"
    checksum = payload.get("checksum")
    if checksum is None:
        return None  # pre-checksum entry: shape is all we can verify
    try:
        expected = payload_checksum(spec_dict, result)
    except ValueError:
        return "entry is not canonicalizable strict JSON"
    if checksum != expected:
        return f"checksum mismatch (stored {checksum}, computed {expected})"
    return None


class ResultCache:
    """Spec-hash-keyed store of scenario results."""

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, spec: ScenarioSpec) -> Path:
        return self.root / f"{spec.scenario}-{spec.spec_hash()}.json"

    def entry_path(self, spec: ScenarioSpec) -> Path:
        """Where ``spec``'s entry lives (whether or not it exists yet)."""
        return self._path(spec)

    def serialize(self, spec: ScenarioSpec, result: JsonDict) -> JsonDict:
        """The full checksummed entry payload :meth:`put` would write."""
        spec_dict = spec.to_dict()
        return {
            "checksum": payload_checksum(spec_dict, result),
            "result": result,
            "spec": spec_dict,
        }

    # ---------------------------------------------------------------- reads

    def get(self, spec: ScenarioSpec) -> Optional[JsonDict]:
        """The cached result for ``spec``, or None on a miss.

        A **corrupt** entry (unparseable, checksum-failing, or misshapen)
        is also reported as a miss -- after being moved into the
        quarantine directory with a warning -- so the caller re-executes
        the damaged cell instead of trusting or crashing on it.
        """
        status, result, _ = self.get_status(spec)
        if status == STATUS_CORRUPT:
            self.quarantine(spec)
            return None
        return result

    def get_status(
        self, spec: ScenarioSpec
    ) -> Tuple[str, Optional[JsonDict], Optional[str]]:
        """``(status, result, defect)`` without side effects.

        ``status`` is ``"hit"`` (result returned), ``"miss"`` (no file),
        or ``"corrupt"`` (file present but damaged; ``defect`` says how).
        """
        path = self._path(spec)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except OSError:
            return STATUS_MISS, None, None
        except ValueError as exc:
            return STATUS_CORRUPT, None, f"unparseable JSON: {exc}"
        defect = verify_entry(payload)
        if defect is not None:
            return STATUS_CORRUPT, None, defect
        return STATUS_HIT, payload["result"], None

    # --------------------------------------------------------------- writes

    def put(self, spec: ScenarioSpec, result: JsonDict) -> Path:
        """Store ``result`` for ``spec``; returns the entry's path.

        Entries are strict JSON (``allow_nan=False``, matching
        :meth:`~repro.scenarios.spec.ScenarioSpec.canonical_json`) with a
        content checksum, committed via fsync-then-atomic-rename: a NaN or
        Infinity metric raises :class:`ValueError` instead of writing an
        entry other strict parsers would reject, a failed write (bad
        value, full disk) never leaves the tmp file behind, and a crash at
        any point never leaves a zero-length or torn file at the committed
        name.
        """
        path = self._path(spec)
        try:
            atomic_write_json(path, self.serialize(spec, result))
        except ValueError as exc:
            raise ValueError(
                f"result for {spec.scenario} ({spec.spec_hash()}) is not "
                f"strict JSON -- NaN/Infinity values cannot be cached: {exc}"
            ) from exc
        return path

    # ----------------------------------------------------------- quarantine

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIRNAME

    def quarantine(self, spec: ScenarioSpec) -> Optional[Path]:
        """Move ``spec``'s (corrupt) entry into quarantine; its new path.

        Returns None when the entry vanished first (e.g. another process
        quarantined it already).  The sweep then sees a plain miss and
        re-executes the cell.
        """
        return self.quarantine_file(self._path(spec))

    def quarantine_file(self, path: Path) -> Optional[Path]:
        """Move one corrupt entry file into the quarantine directory."""
        nonce = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        target = self.quarantine_dir / f"{path.name}.{nonce}"
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            path.rename(target)
        except OSError:
            return None  # already gone (raced with another reader)
        print(
            f"[result-cache] corrupt entry {path.name} quarantined to "
            f"{target} (the cell will re-execute)",
            file=sys.stderr,
        )
        return target

    # -------------------------------------------------------------- surveys

    def entries(self) -> List[Dict[str, Any]]:
        """All readable cache entries (spec + result payloads)."""
        found = []
        for path in sorted(self.root.glob("*.json")):
            try:
                with path.open("r", encoding="utf-8") as fh:
                    found.append(json.load(fh))
            except (OSError, ValueError):
                continue
        return found

    def scan(self) -> List[Tuple[Path, Optional[str]]]:
        """Audit every entry file: ``(path, defect-or-None)`` per entry.

        Used by ``tfrc-sweep-fsck``; performs no quarantining itself.
        """
        report: List[Tuple[Path, Optional[str]]] = []
        for path in sorted(self.root.glob("*.json")):
            try:
                with path.open("r", encoding="utf-8") as fh:
                    payload = json.load(fh)
            except OSError:
                continue  # vanished mid-scan
            except ValueError as exc:
                report.append((path, f"unparseable JSON: {exc}"))
                continue
            report.append((path, verify_entry(payload)))
        return report

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
