"""On-disk JSON result cache keyed by scenario spec hash.

One file per cell: ``<cache_dir>/<scenario>-<hash>.json`` holding the spec
(for human inspection / debugging) and its result.  Writes are atomic
(tmp file + rename) so a sweep interrupted mid-write never leaves a
corrupt entry, and corrupt/unreadable entries are treated as misses.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.scenarios.spec import JsonDict, ScenarioSpec


class ResultCache:
    """Spec-hash-keyed store of scenario results."""

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, spec: ScenarioSpec) -> Path:
        return self.root / f"{spec.scenario}-{spec.spec_hash()}.json"

    def get(self, spec: ScenarioSpec) -> Optional[JsonDict]:
        """The cached result for ``spec``, or None on a miss."""
        path = self._path(spec)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        result = payload.get("result")
        return result if isinstance(result, dict) else None

    def put(self, spec: ScenarioSpec, result: JsonDict) -> Path:
        """Store ``result`` for ``spec``; returns the entry's path."""
        path = self._path(spec)
        payload = {"spec": spec.to_dict(), "result": result}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        tmp.replace(path)
        return path

    def entries(self) -> List[Dict[str, Any]]:
        """All readable cache entries (spec + result payloads)."""
        found = []
        for path in sorted(self.root.glob("*.json")):
            try:
                with path.open("r", encoding="utf-8") as fh:
                    found.append(json.load(fh))
            except (OSError, ValueError):
                continue
        return found

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
