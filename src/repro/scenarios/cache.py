"""On-disk JSON result cache keyed by scenario spec hash.

One file per cell: ``<cache_dir>/<scenario>-<hash>.json`` holding the spec
(for human inspection / debugging) and its result.  Writes are atomic
(tmp file + rename) so a sweep interrupted mid-write never leaves a
corrupt entry, and corrupt/unreadable entries are treated as misses.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.scenarios.spec import JsonDict, ScenarioSpec


def atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Write strict JSON (``allow_nan=False``) via tmp file + rename.

    The write is never observable half-done, and a failure (bad value,
    full disk) never leaves the tmp file behind.  Shared by the result
    cache and the file-queue executor protocol.
    """
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}-{uuid.uuid4().hex[:8]}")
    try:
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, allow_nan=False)
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


class ResultCache:
    """Spec-hash-keyed store of scenario results."""

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, spec: ScenarioSpec) -> Path:
        return self.root / f"{spec.scenario}-{spec.spec_hash()}.json"

    def get(self, spec: ScenarioSpec) -> Optional[JsonDict]:
        """The cached result for ``spec``, or None on a miss."""
        path = self._path(spec)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        result = payload.get("result")
        return result if isinstance(result, dict) else None

    def put(self, spec: ScenarioSpec, result: JsonDict) -> Path:
        """Store ``result`` for ``spec``; returns the entry's path.

        Entries are strict JSON (``allow_nan=False``, matching
        :meth:`~repro.scenarios.spec.ScenarioSpec.canonical_json`): a NaN or
        Infinity metric raises :class:`ValueError` instead of writing an
        entry other strict parsers would reject.  A failed write (bad
        value, full disk) never leaves the tmp file behind.
        """
        path = self._path(spec)
        payload = {"spec": spec.to_dict(), "result": result}
        try:
            atomic_write_json(path, payload)
        except ValueError as exc:
            raise ValueError(
                f"result for {spec.scenario} ({spec.spec_hash()}) is not "
                f"strict JSON -- NaN/Infinity values cannot be cached: {exc}"
            ) from exc
        return path

    def entries(self) -> List[Dict[str, Any]]:
        """All readable cache entries (spec + result payloads)."""
        found = []
        for path in sorted(self.root.glob("*.json")):
            try:
                with path.open("r", encoding="utf-8") as fh:
                    found.append(json.load(fh))
            except (OSError, ValueError):
                continue
        return found

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
