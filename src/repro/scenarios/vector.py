"""The ``vector`` sweep executor and the ``tfrc_equation_grid`` scenario.

The batched cell kernel (:mod:`repro.sim.vector_kernel`) advances N
independent equation-grid cells in lockstep, but the sweep layer deals in
:class:`~repro.scenarios.spec.ScenarioSpec` grids.  This module is the
bridge:

* ``tfrc_equation_grid`` -- a registered scenario whose spec fully resolves
  to :class:`~repro.sim.vector_kernel.GridCellParams`; executed scalar
  (:func:`~repro.sim.vector_kernel.run_cell_scalar`) when run like any
  other scenario.
* :func:`vector_capability` -- can this spec join a lockstep batch?
  (``None`` = yes, otherwise a human-readable reason.)
* :class:`VectorExecutor` -- a :class:`~repro.scenarios.executors.\
SweepExecutor` that groups compatible cells into lockstep batches
  (:func:`run_vector_batch`) and falls back to scalar execution -- with a
  single :class:`VectorFallbackWarning` -- for everything else.

Because the batch kernel is bit-identical to the scalar kernel, results
reaching the :class:`~repro.scenarios.cache.ResultCache` are byte-identical
no matter which executor ran the sweep; ``tests/test_vector_executor.py``
pins this file-for-file.  The bit-identity contract is also enforced
*statically*: every scalar/vector kernel pair underneath this executor is
registered with the ``twin.*`` rules of ``tfrc-audit`` (see
``repro.analysis.audit.rules_twins``), which prove the two bodies lower
to the same arithmetic trace -- or, for the loop-shaped kernels, pin them
to seeded bit-equality fuzz in ``tests/test_twin_congruence.py``.
"""

from __future__ import annotations

import json
import time
import warnings
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.net.redmath import RedParams
from repro.scenarios.executors import (
    CellCompletion,
    SweepCellError,
    SweepExecutor,
    SweepPlan,
)
from repro.scenarios.spec import (
    JsonDict,
    ScenarioSpec,
    register_scenario,
    run_scenario,
)
from repro.sim.vector_kernel import (
    GridCellParams,
    run_cell_scalar,
    run_cells_vector,
)

#: the scenario name the vector executor can batch.
EQUATION_GRID_SCENARIO = "tfrc_equation_grid"

#: spec paths a lockstep batch may vary (the spec-level mirror of
#: :data:`repro.sim.vector_kernel.BATCH_AXES`).
SPEC_BATCH_AXES = ("topology.rtt", "loss.rate", "seed")


class VectorFallbackWarning(UserWarning):
    """Some sweep cells could not be batched and ran on the scalar path."""


# ----------------------------------------------------------- spec translation


def spec_to_cell_params(spec: ScenarioSpec) -> GridCellParams:
    """Resolve a ``tfrc_equation_grid`` spec into kernel primitives.

    Spec layout (all numeric knobs optional, with the defaults below)::

        topology: {rtt, bandwidth_bps, packet_size}
        queue:    {type: "red"|"droptail", buffer_packets,
                   red: {min_thresh, max_thresh, max_p, weight, gentle}}
        loss:     {rate}
        extra:    {measure_fraction, discounting, trace}
    """
    if spec.scenario != EQUATION_GRID_SCENARIO:
        raise ValueError(
            f"spec names scenario {spec.scenario!r}, "
            f"not {EQUATION_GRID_SCENARIO!r}"
        )
    topo = dict(spec.topology)
    queue = dict(spec.queue)
    extra = dict(spec.extra)
    queue_type = str(queue.get("type", "red"))
    red: Optional[RedParams] = None
    if queue_type == "red":
        red_cfg = dict(queue.get("red", {}))
        red = RedParams(
            min_thresh=float(red_cfg.get("min_thresh", 5.0)),
            max_thresh=float(red_cfg.get("max_thresh", 15.0)),
            max_p=float(red_cfg.get("max_p", 0.1)),
            weight=float(red_cfg.get("weight", 0.002)),
            gentle=bool(red_cfg.get("gentle", True)),
        )
    return GridCellParams(
        rtt=float(topo.get("rtt", 0.1)),
        loss_rate=float(dict(spec.loss).get("rate", 0.0)),
        seed=int(spec.seed),
        duration=float(spec.duration),
        bandwidth_bps=float(topo.get("bandwidth_bps", 1.5e6)),
        packet_size=int(topo.get("packet_size", 1000)),
        queue_type=queue_type,
        buffer_packets=int(queue.get("buffer_packets", 25)),
        red=red,
        measure_fraction=float(extra.get("measure_fraction", 2.0 / 3.0)),
        discounting=bool(extra.get("discounting", True)),
        trace=bool(extra.get("trace", False)),
    )


@register_scenario(EQUATION_GRID_SCENARIO)
def tfrc_equation_grid(spec: ScenarioSpec) -> JsonDict:
    """One equation-grid cell, executed on the scalar reference kernel."""
    return run_cell_scalar(spec_to_cell_params(spec))


# ----------------------------------------------------------------- capability


def vector_capability(spec: ScenarioSpec) -> Optional[str]:
    """``None`` when ``spec`` can join a lockstep batch, else the reason.

    The reason string is surfaced verbatim in the (single)
    :class:`VectorFallbackWarning`, so keep it user-readable.
    """
    if spec.scenario != EQUATION_GRID_SCENARIO:
        return (
            f"scenario {spec.scenario!r} has no vector kernel "
            f"(only {EQUATION_GRID_SCENARIO!r} does)"
        )
    if dict(spec.extra).get("trace"):
        return "rate tracing (extra.trace) requires the scalar kernel"
    try:
        spec_to_cell_params(spec)
    except (TypeError, ValueError) as exc:
        return f"spec does not resolve to grid-cell params: {exc}"
    return None


def batch_key(spec: ScenarioSpec) -> str:
    """Grouping key: the spec with the batch axes blanked out.

    Cells sharing a key differ only in ``topology.rtt``, ``loss.rate``
    and ``seed`` -- exactly what
    :func:`repro.sim.vector_kernel.batchable` permits within one batch.
    """
    data = spec.to_dict()
    data["topology"].pop("rtt", None)
    data["loss"].pop("rate", None)
    data["seed"] = None
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


# ------------------------------------------------------------ batch execution


def run_vector_batch(specs: Sequence[ScenarioSpec]) -> List[JsonDict]:
    """Run compatible specs as one lockstep batch; results in spec order.

    A single-spec batch takes the scalar path directly: the lockstep
    kernel's per-step dispatch overhead only amortizes across lanes.
    """
    if len(specs) == 1:
        return [run_cell_scalar(spec_to_cell_params(specs[0]))]
    return run_cells_vector([spec_to_cell_params(spec) for spec in specs])


class VectorExecutor(SweepExecutor):
    """Advance compatible sweep cells in lockstep batches.

    Cells whose spec passes :func:`vector_capability` are grouped by
    :func:`batch_key` and each group runs as one
    :func:`~repro.sim.vector_kernel.run_cells_vector` call; the rest run
    scalar, announced by one :class:`VectorFallbackWarning` naming the
    first reason.  Per-cell ``elapsed_seconds`` within a batch is the
    batch wall time split evenly (the lanes genuinely ran concurrently).
    """

    name = "vector"

    def run_cells(self, plan: SweepPlan) -> Iterator[CellCompletion]:
        batches: Dict[str, List[Any]] = {}
        fallback: List[Tuple[Any, str]] = []
        for cell in plan.cells:
            reason = vector_capability(cell.spec)
            if reason is None:
                batches.setdefault(batch_key(cell.spec), []).append(cell)
            else:
                fallback.append((cell, reason))

        if fallback:
            warnings.warn(
                f"{len(fallback)} of {len(plan.cells)} sweep cell(s) cannot "
                f"run on the vector kernel and fall back to scalar "
                f"execution; first reason: {fallback[0][1]}",
                VectorFallbackWarning,
                stacklevel=2,
            )

        for group in batches.values():
            started = time.perf_counter()
            try:
                results = run_vector_batch([cell.spec for cell in group])
            except Exception as exc:
                # Graceful degradation: one poison lane must not fail all
                # N.  Split the batch and retry every member on the scalar
                # path; only a cell that *also* fails scalar raises (from
                # the loop below), now correctly attributed to itself.
                if len(group) > 1:
                    warnings.warn(
                        f"vector batch of {len(group)} cell(s) failed in "
                        f"lockstep ({exc}); retrying each cell on the "
                        f"scalar path",
                        VectorFallbackWarning,
                        stacklevel=2,
                    )
                    fallback.extend(
                        (cell, f"lockstep batch failed: {exc}")
                        for cell in group
                    )
                    continue
                cell = group[0]
                raise SweepCellError(
                    f"vector batch of {len(group)} cell(s) starting at "
                    f"{cell.describe()} failed: {exc}",
                    cell=cell,
                    overrides=cell.overrides,
                ) from exc
            per_cell = (time.perf_counter() - started) / len(group)
            for cell, result in zip(group, results):
                yield CellCompletion(
                    cell=cell, result=result, elapsed_seconds=per_cell
                )

        for cell, _reason in fallback:
            started = time.perf_counter()
            try:
                result = run_scenario(cell.spec)
            except Exception as exc:
                raise SweepCellError(
                    f"sweep cell {cell.describe()} failed: {exc}",
                    cell=cell,
                    overrides=cell.overrides,
                ) from exc
            yield CellCompletion(
                cell=cell,
                result=result,
                elapsed_seconds=time.perf_counter() - started,
            )
