"""``tfrc-sweep-fsck``: audit (and repair) a sweep queue directory + cache.

A file-queue sweep leaves durable state behind -- tasks, claims, done
markers, failure records, quarantined dead letters, and the result cache
the sweep is assembled from.  After crashes (coordinator or worker), hard
kills, or storage faults, that state can be internally inconsistent in
ways the live fabric tolerates but an operator should see before resuming
a long campaign.  This tool checks every invariant the fabric relies on
and, with ``--repair``, restores a **resumable** state (it never deletes
results or evidence: corrupt files move to quarantine, stale bookkeeping
is withdrawn, interrupted cells are made claimable again).

Findings (kind -> meaning -> repair):

``corrupt_cache_entry``
    A cache entry fails its checksum / shape validation (torn write, bit
    rot).  Repair: move it to the cache's ``quarantine/``; the cell
    re-executes on the next run.
``corrupt_task`` / ``corrupt_claim`` / ``corrupt_done``
    Queue bookkeeping that does not parse.  Repair: tasks and claims move
    to the queue's ``quarantine/`` with a failure record; a corrupt done
    marker is simply removed (it is derived state -- the cache decides).
``done_without_result``
    A done marker whose key has no intact cache entry: the sweep would
    trust a completion that cannot be assembled.  Repair: remove the
    marker so the cell re-runs.
``task_after_done`` / ``stale_claim``
    Leftover bookkeeping for a cell that already completed (done marker +
    intact cache entry) -- e.g. a lease-reclaim republication that lost
    the race, or a worker killed right after publishing.  Repair: remove.
``expired_lease``
    (Only with ``--lease-timeout``.)  A claim older than the given bound
    with no completed result -- its worker is presumed dead and no
    coordinator is running to reclaim it.  Repair: republish the claim's
    payload as a claimable task, then drop the claim.
``budget_exhausted_task``
    A queued task whose recorded ``attempts`` already meet its
    ``max_attempts`` budget: workers would refuse to requeue it and the
    cell would churn forever.  Repair: dead-letter it (quarantine with its
    failure history) and withdraw the task.
``stale_tmp``
    Leftover ``*.tmp.*`` litter from interrupted atomic writes.  Repair:
    remove.

Exit status: 0 when the state is clean (or ``--repair`` fixed every
finding), 1 when findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.analysis.audit.records import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    finding_record,
)
from repro.scenarios.cache import ResultCache, verify_entry
from repro.scenarios._fsio import read_json
from repro.scenarios.executors import FileQueue

#: finding kinds that are litter rather than lost/untrustworthy state.
_WARNING_KINDS = frozenset({"stale_tmp"})


@dataclass
class Finding:
    """One audit finding: what is wrong, where, and what repair ran."""

    kind: str
    path: Path
    detail: str
    repaired: Optional[str] = None  # description of the applied repair

    @property
    def severity(self) -> str:
        return (
            SEVERITY_WARNING if self.kind in _WARNING_KINDS else SEVERITY_ERROR
        )

    def to_record(self) -> dict:
        """The canonical findings record shared with ``tfrc-audit --json``.

        fsck findings are whole-file, never line-anchored, so ``line`` is
        always 0; the fsck-specific ``repaired`` note rides along as an
        extra key.
        """
        return finding_record(
            rule=f"fsck.{self.kind}",
            path=str(self.path),
            detail=self.detail,
            severity=self.severity,
            repaired=self.repaired,
        )

    def render(self) -> str:
        line = f"[{self.kind}] {self.path}: {self.detail}"
        if self.repaired:
            line += f" -- repaired: {self.repaired}"
        return line


def _key_of(path: Path) -> str:
    return path.name[: -len(".json")]


def audit(
    queue_dir: "str | Path",
    *,
    cache_dir: "str | Path | None" = None,
    lease_timeout: Optional[float] = None,
    repair: bool = False,
) -> List[Finding]:
    """Audit ``queue_dir`` (+ its cache); optionally repair as documented.

    ``cache_dir`` defaults to ``<queue_dir>/results``, the coordinator's
    own default.  Repairs are applied as findings are discovered; a
    finding whose repair ran has ``repaired`` set.
    """
    fq = FileQueue(queue_dir).ensure()
    cache = ResultCache(
        cache_dir if cache_dir is not None else fq.root / "results"
    )
    findings: List[Finding] = []

    # ------------------------------------------------------------- cache
    intact: set = set()  # keys (= entry stems) with verified cache entries
    for path, defect in cache.scan():
        if defect is None:
            intact.add(path.name[: -len(".json")])
            continue
        finding = Finding("corrupt_cache_entry", path, defect)
        if repair:
            target = cache.quarantine_file(path)
            if target is not None:
                finding.repaired = f"moved to {target}"
        findings.append(finding)

    # ------------------------------------------------------ done markers
    for path in sorted(fq.done.glob("*.json")):
        key = _key_of(path)
        marker = read_json(path)
        if marker is None:
            finding = Finding(
                "corrupt_done", path, "done marker does not parse"
            )
            if repair:
                path.unlink(missing_ok=True)
                finding.repaired = "removed (derived state; cell re-runs)"
            findings.append(finding)
            continue
        if key not in intact:
            finding = Finding(
                "done_without_result",
                path,
                "done marker but no intact cache entry for this key",
            )
            if repair:
                path.unlink(missing_ok=True)
                finding.repaired = "removed marker so the cell re-runs"
            findings.append(finding)

    done_and_cached = {
        _key_of(path)
        for path in fq.done.glob("*.json")
        if _key_of(path) in intact
    }

    # ------------------------------------------------------------- tasks
    for path in sorted(fq.tasks.glob("*.json")):
        key = _key_of(path)
        payload = read_json(path)
        if payload is None or "key" not in payload:
            finding = Finding(
                "corrupt_task", path, "task payload does not parse"
            )
            if repair:
                target = fq.quarantine_file(
                    path,
                    key=key,
                    kind="corrupt_task",
                    worker="fsck",
                    error="corrupt task payload found by tfrc-sweep-fsck",
                )
                if target is not None:
                    finding.repaired = f"moved to {target}"
            findings.append(finding)
            continue
        if key in done_and_cached:
            finding = Finding(
                "task_after_done",
                path,
                "task still queued for a completed cell",
            )
            if repair:
                path.unlink(missing_ok=True)
                finding.repaired = "withdrew the leftover task"
            findings.append(finding)
            continue
        attempts = int(payload.get("attempts", 0))
        max_attempts = int(payload.get("max_attempts", 1))
        if attempts >= max_attempts:
            finding = Finding(
                "budget_exhausted_task",
                path,
                f"queued with attempts={attempts} >= "
                f"max_attempts={max_attempts}; workers will churn on it",
            )
            if repair:
                target = fq.quarantine_cell(
                    key,
                    kind="retry_budget_exhausted",
                    payload=payload,
                    failures=fq.read_failures(key),
                )
                path.unlink(missing_ok=True)
                finding.repaired = f"dead-lettered to {target}"
            findings.append(finding)

    # ------------------------------------------------------------ claims
    now = fq.fs_now()
    for path in sorted(fq.claims.glob("*.json")):
        key = _key_of(path)
        payload = read_json(path)
        if payload is None or "key" not in payload:
            finding = Finding(
                "corrupt_claim", path, "claim payload does not parse"
            )
            if repair:
                target = fq.quarantine_file(
                    path,
                    key=key,
                    kind="corrupt_claim",
                    worker="fsck",
                    error="corrupt claim payload found by tfrc-sweep-fsck",
                )
                if target is not None:
                    finding.repaired = f"moved to {target}"
            findings.append(finding)
            continue
        if key in done_and_cached:
            finding = Finding(
                "stale_claim",
                path,
                "lease still held for a completed cell",
            )
            if repair:
                path.unlink(missing_ok=True)
                finding.repaired = "released the stale lease"
            findings.append(finding)
            continue
        if lease_timeout is not None:
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # vanished mid-audit (a live worker released it)
            if age > lease_timeout:
                finding = Finding(
                    "expired_lease",
                    path,
                    f"lease {age:.1f}s old exceeds the "
                    f"{lease_timeout:.1f}s bound with no result",
                )
                if repair:
                    task = {
                        k: v for k, v in payload.items() if k != "worker"
                    }
                    fq.enqueue(task)
                    path.unlink(missing_ok=True)
                    finding.repaired = "requeued the cell and dropped the lease"
                findings.append(finding)

    # --------------------------------------------------------- tmp litter
    for root in (fq.tasks, fq.claims, fq.done, fq.failures, cache.root):
        for path in sorted(root.glob("*.tmp.*")):
            finding = Finding(
                "stale_tmp", path, "interrupted atomic write left behind"
            )
            if repair:
                path.unlink(missing_ok=True)
                finding.repaired = "removed"
            findings.append(finding)

    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tfrc-sweep-fsck",
        description="Audit a sweep queue directory and its result cache "
        "for inconsistent state; --repair restores a resumable state "
        "without deleting results or evidence.",
    )
    parser.add_argument(
        "queue_dir", help="queue directory to audit (the coordinator's)"
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="result cache directory (default: <queue_dir>/results)",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=None, metavar="S",
        help="also flag claims older than S seconds (only meaningful when "
        "no coordinator/worker is running against the directory)",
    )
    parser.add_argument(
        "--repair", action="store_true",
        help="apply the documented repair for each finding",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable report (one JSON object) on stdout",
    )
    args = parser.parse_args(argv)
    if args.lease_timeout is not None and args.lease_timeout <= 0:
        parser.error("--lease-timeout must be > 0")
    if not Path(args.queue_dir).is_dir():
        parser.error(f"queue directory {args.queue_dir!r} does not exist")

    findings = audit(
        args.queue_dir,
        cache_dir=args.cache,
        lease_timeout=args.lease_timeout,
        repair=args.repair,
    )
    fq = FileQueue(args.queue_dir)
    quarantined = sorted(fq.quarantined_keys())
    unrepaired = [f for f in findings if f.repaired is None]

    if args.as_json:
        print(
            json.dumps(
                {
                    "tool": "tfrc-sweep-fsck",
                    "queue_dir": str(fq.root),
                    "findings": [f.to_record() for f in findings],
                    "quarantined_keys": quarantined,
                    "clean": not findings,
                },
                indent=2,
                sort_keys=True,
                allow_nan=False,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        if quarantined:
            print(
                f"note: {len(quarantined)} quarantined cell(s) in "
                f"{fq.quarantine} (dead letters; inspect and clear to retry)"
            )
        if not findings:
            print(f"{fq.root}: clean")
        else:
            repaired = len(findings) - len(unrepaired)
            print(
                f"{fq.root}: {len(findings)} finding(s), "
                f"{repaired} repaired, {len(unrepaired)} remaining"
            )
    return 1 if unrepaired else 0


if __name__ == "__main__":
    sys.exit(main())


# verify_entry is re-exported for callers that audit single entries.
__all__ = ["Finding", "audit", "main", "verify_entry"]
