"""Atomic filesystem primitives for the sweep fabric's durable state.

Every durable JSON file the fabric trusts -- result-cache entries, queue
tasks/claims/done markers, failure records, dead letters, fault-plan state
-- commits through :func:`atomic_write_json`: tmp file, optional fsync,
atomic rename, directory-entry fsync.  The matching read side is
:func:`read_json`, which treats missing/corrupt/partial files as ``None``
so readers racing a writer (or finding the debris of a crashed one) see a
clean miss instead of an exception.

This module is the **single blessed owner of raw content writes** in
``repro.scenarios``: ``tfrc-audit``'s fs-protocol rules statically flag any
``open(..., "w")`` / ``write_text`` / ``json.dump`` in the scenarios tree
outside this file, so a torn-write bug class (chased dynamically by the
PR 7 chaos soak) cannot be reintroduced silently.  Shared by the result
cache (:mod:`repro.scenarios.cache`), the file queue and its executors
(:mod:`repro.scenarios.executors`), the worker
(:mod:`repro.scenarios.worker`), fault-injection state
(:mod:`repro.scenarios.faults`), and ``tfrc-sweep-fsck``.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Any, Dict, Optional

JsonDict = Dict[str, Any]


def atomic_write_json(
    path: Path,
    payload: Dict[str, Any],
    *,
    durable: bool = True,
    _fault_hook: bool = True,
) -> None:
    """Write strict JSON (``allow_nan=False``) via tmp file + rename.

    The write is never observable half-done, and a failure (bad value,
    full disk) never leaves the tmp file behind.  With ``durable`` (the
    default) the tmp file is fsynced **before** the rename -- without it a
    crash between rename and writeback can leave a zero-length or torn
    file at the *final* name, which readers would have to treat as
    corruption instead of a clean miss.  Pass ``durable=False`` only for
    state whose loss is harmless (e.g. fault-injection log records).

    ``_fault_hook=False`` is reserved for :mod:`repro.scenarios.faults`
    itself: the fault layer's own state files (plan dumps, fired-fault log
    records) must not feed back into the fault schedule they implement.
    """
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}-{uuid.uuid4().hex[:8]}")
    try:
        with tmp.open("w", encoding="utf-8") as fh:  # tfrc-audit: ignore[fsio] -- the blessed writer itself
            json.dump(payload, fh, indent=2, sort_keys=True, allow_nan=False)
            if durable:
                fh.flush()
                os.fsync(fh.fileno())
        if _fault_hook:
            # Imported lazily: faults routes its own state files through
            # this helper, so a top-level import would cycle.
            from repro.scenarios import faults

            faults.on_atomic_write(path)
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    if durable:
        # Make the rename itself durable: fsync the directory entry.
        # Best-effort -- not every filesystem/platform supports opening a
        # directory for fsync, and losing only the rename (not the data)
        # degrades to a clean cache miss.
        try:
            dir_fd = os.open(str(path.parent), os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(dir_fd)


def read_json(path: Path) -> Optional[JsonDict]:
    """Best-effort JSON read: None on missing/corrupt/partial files."""
    try:
        with path.open("r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None
