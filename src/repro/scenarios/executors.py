"""Pluggable sweep execution backends (serial / process pool / file queue).

:class:`~repro.scenarios.sweep.SweepRunner` expands a grid into cells and
hands the cache-missing ones to a :class:`SweepExecutor`, which yields
:class:`CellCompletion` records as cells finish (in completion order; the
runner reassembles expansion order).  Three backends here cover one host to
many (a fourth, :class:`~repro.scenarios.vector.VectorExecutor`, advances
compatible cells in lockstep numpy batches and lives in
:mod:`repro.scenarios.vector`):

* :class:`SerialExecutor` -- in-process, one cell at a time.
* :class:`PoolExecutor` -- a ``concurrent.futures.ProcessPoolExecutor``
  fan-out on the local host.
* :class:`FileQueueExecutor` -- coordinates any number of worker processes
  (``tfrc-sweep-worker``), locally spawned and/or started by hand on other
  hosts, through a shared **queue directory**.  Coordination is plain
  files: claimable cell payloads in ``tasks/``, atomic-rename leases in
  ``claims/`` (the rename is the mutual exclusion; the claim file's mtime
  is the worker's heartbeat), completion markers in ``done/``, failure
  records in ``failures/``, and a ``quarantine/`` dead-letter directory
  for corrupt files and poison cells.  Results land in the spec-hash
  :class:`~repro.scenarios.cache.ResultCache`, so the coordinator assembles
  the sweep purely from cache and a crashed run resumes without
  recomputing finished cells.  Expired leases (dead workers) are reclaimed
  by the coordinator -- lease age is measured against the **queue
  directory's own clock** (a coordinator-touched sentinel file), so clock
  skew between hosts sharing the mount cannot reclaim a healthy worker's
  lease; each cell has a retry budget (``max_attempts``) spanning worker
  errors, timeouts, corrupt publications, and lease expiries.  A cell that
  exhausts the budget is written to ``quarantine/`` with its failure
  history, then either aborts the sweep (``on_poison="raise"``, the
  default) or is skipped so the rest of the sweep completes
  (``on_poison="quarantine"``).

Every cell's spec -- including its seed -- is fixed at grid-expansion time,
so all backends produce byte-identical results for the same sweep (pinned
by ``tests/test_executors.py``; ``tests/test_chaos.py`` re-pins it under a
seeded :mod:`~repro.scenarios.faults` fault schedule).

A cell failure surfaces as :class:`SweepCellError` naming the cell and its
overrides; the runner attaches the partial :class:`SweepResult` (cached and
already-finished cells) to the exception before re-raising.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.scenarios import faults
from repro.scenarios._fsio import atomic_write_json, read_json
from repro.scenarios.cache import ResultCache
from repro.scenarios.spec import JsonDict, ScenarioSpec, run_scenario

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.scenarios.sweep import SweepCell, SweepResult


class SweepCellError(RuntimeError):
    """A sweep cell failed (execution error or exhausted retry budget).

    ``cell``/``overrides`` name the failing grid point; ``partial`` is the
    :class:`~repro.scenarios.sweep.SweepResult` holding every cell that did
    finish (cached hits included), attached by the runner so a long sweep's
    completed work survives the exception.  When the file-queue fabric
    dead-lettered the cell, ``quarantine_path`` names its record under the
    queue's ``quarantine/`` directory and ``failures`` carries the cell's
    failure records (kind, worker, error) in order.
    """

    def __init__(
        self,
        message: str,
        *,
        cell: Optional["SweepCell"] = None,
        overrides: Optional[Dict[str, Any]] = None,
        partial: Optional["SweepResult"] = None,
        failures: Optional[List[JsonDict]] = None,
        quarantine_path: Optional[Path] = None,
    ) -> None:
        super().__init__(message)
        self.cell = cell
        self.overrides = dict(overrides or {})
        self.partial = partial
        self.failures = list(failures or [])
        self.quarantine_path = quarantine_path


@dataclass
class SweepPlan:
    """What an executor needs to run the cache-missing cells of one sweep."""

    cells: Sequence["SweepCell"]
    module_name: str
    cache: Optional[ResultCache] = None


@dataclass
class CellCompletion:
    """One finished cell, yielded by executors in completion order.

    ``result`` is None only for a **quarantined** poison cell (the queue
    executor running with ``on_poison="quarantine"``): the cell exhausted
    its retry budget, its dead-letter record landed in ``quarantine/``,
    and the sweep moved on without it.
    """

    cell: "SweepCell"
    result: Optional[JsonDict]
    elapsed_seconds: float = 0.0
    worker: str = ""
    #: True when the result is already persisted in the sweep's cache
    #: (file-queue workers write the cache themselves).
    already_cached: bool = False
    #: True when the cell was dead-lettered instead of finished.
    quarantined: bool = False
    #: last recorded failure message for a quarantined cell.
    failure: str = ""


class SweepExecutor:
    """Base class: executes a :class:`SweepPlan`, yielding completions."""

    name = "abstract"

    def run_cells(self, plan: SweepPlan) -> Iterator[CellCompletion]:
        raise NotImplementedError


def _execute_remote(
    module_name: str, spec_dict: Dict[str, Any]
) -> Tuple[JsonDict, float]:
    """Worker-side cell execution (module-level, hence picklable).

    Importing the scenario's defining module re-populates the registry in
    spawn-started workers; under fork it is a no-op lookup.
    """
    import importlib

    importlib.import_module(module_name)
    spec = ScenarioSpec.from_dict(spec_dict)
    started = time.perf_counter()
    result = run_scenario(spec)
    return result, time.perf_counter() - started


class SerialExecutor(SweepExecutor):
    """Run every cell in-process, one at a time."""

    name = "serial"

    def run_cells(self, plan: SweepPlan) -> Iterator[CellCompletion]:
        for cell in plan.cells:
            started = time.perf_counter()
            try:
                result = run_scenario(cell.spec)
            except Exception as exc:
                raise SweepCellError(
                    f"sweep cell {cell.describe()} failed: {exc}",
                    cell=cell,
                    overrides=cell.overrides,
                ) from exc
            yield CellCompletion(
                cell=cell,
                result=result,
                elapsed_seconds=time.perf_counter() - started,
            )


class PoolExecutor(SweepExecutor):
    """Fan cells out over a local ``ProcessPoolExecutor``.

    On a worker exception the remaining futures are cancelled and the
    failure is re-raised as :class:`SweepCellError` naming the cell, with
    the worker's exception chained as ``__cause__``.
    """

    name = "pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run_cells(self, plan: SweepPlan) -> Iterator[CellCompletion]:
        limit = self.max_workers or len(plan.cells)
        workers = max(1, min(limit, len(plan.cells)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _execute_remote, plan.module_name, cell.spec.to_dict()
                ): cell
                for cell in plan.cells
            }
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    cell = futures[future]
                    try:
                        result, elapsed = future.result()
                    except Exception as exc:
                        for pending in outstanding:
                            pending.cancel()
                        raise SweepCellError(
                            f"sweep cell {cell.describe()} failed in a "
                            f"pool worker: {exc}",
                            cell=cell,
                            overrides=cell.overrides,
                        ) from exc
                    yield CellCompletion(
                        cell=cell, result=result, elapsed_seconds=elapsed
                    )


# --------------------------------------------------------- file-queue layer


#: tmp-file + rename strict-JSON write and its best-effort read twin, both
#: living in :mod:`repro.scenarios._fsio` (shared with the result cache,
#: the worker, fault-plan state, and fsck); aliased for existing callers.
_atomic_write_json = atomic_write_json
_read_json = read_json


class FileQueue:
    """The shared-directory cell queue behind :class:`FileQueueExecutor`.

    Layout under ``root`` (which may live on a shared filesystem)::

        tasks/<key>.json      claimable cell payloads
        claims/<key>.json     leased cells (atomic rename from tasks/;
                              mtime doubles as the worker heartbeat)
        done/<key>.json       completion markers (elapsed, worker, attempts)
        failures/<key>.<nonce>.json   one record per failed attempt
        quarantine/           dead letters: corrupt task/claim files (moved
                              here verbatim, named <key>.json.<nonce>) and
                              poison-cell records (<key>.<nonce>.json with
                              the cell's payload + failure history)
        results/              default ResultCache location (coordinator may
                              point the cache elsewhere)
        .clock                coordinator-touched sentinel; its mtime is
                              the queue directory's own notion of "now",
                              used for lease-age checks so coordinator /
                              worker clock skew cannot reclaim healthy
                              leases on shared mounts

    A task payload carries everything a worker needs: the cell ``key``
    (``<scenario>-<spec_hash>``), the scenario's defining ``module``, the
    ``spec`` dict, the ``cache_dir`` results should land in (relative paths
    are resolved against ``root`` so multi-host mounts need not agree on
    absolute paths), the ``attempts`` so far, and the ``max_attempts``
    budget.
    """

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self.tasks = self.root / "tasks"
        self.claims = self.root / "claims"
        self.done = self.root / "done"
        self.failures = self.root / "failures"
        self.quarantine = self.root / "quarantine"

    def ensure(self) -> "FileQueue":
        for directory in (
            self.tasks,
            self.claims,
            self.done,
            self.failures,
            self.quarantine,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    # -------------------------------------------------------------- clock

    def fs_now(self) -> float:
        """The queue directory's own notion of "now".

        Touches a sentinel file and returns its resulting mtime: on a
        shared (NFS-style) mount that timestamp comes from the fileserver
        -- the same clock that stamps claim heartbeats -- so lease ages
        computed against it are immune to wall-clock skew between the
        coordinator and worker hosts.  Falls back to local time if the
        sentinel cannot be touched (read-only snapshot etc.).
        """
        sentinel = self.root / ".clock"
        try:
            with open(sentinel, "a", encoding="utf-8"):
                pass
            os.utime(sentinel)
            return sentinel.stat().st_mtime
        except OSError:
            return time.time()

    # ------------------------------------------------------------- paths

    def task_path(self, key: str) -> Path:
        return self.tasks / f"{key}.json"

    def claim_path(self, key: str) -> Path:
        return self.claims / f"{key}.json"

    def done_path(self, key: str) -> Path:
        return self.done / f"{key}.json"

    # ----------------------------------------------------------- enqueue

    def enqueue(self, payload: JsonDict) -> Path:
        """(Re-)publish a claimable task; atomic, last write wins."""
        path = self.task_path(payload["key"])
        if faults.fires(
            "corrupt_task_write",
            payload["key"],
            int(payload.get("attempts", 0)),
        ):  # fault injection: a torn task publication
            faults.write_torn(path, payload)
            return path
        _atomic_write_json(path, payload)
        return path

    def resolve_cache_dir(self, cache_dir: str) -> Path:
        """Task cache dirs may be relative: resolve against the queue root."""
        path = Path(cache_dir)
        return path if path.is_absolute() else self.root / path

    def encode_cache_dir(self, cache_root: "str | os.PathLike[str]") -> str:
        """Store cache paths under the queue root relatively (multi-host)."""
        cache_root = Path(cache_root).resolve()
        try:
            return str(cache_root.relative_to(self.root.resolve()))
        except ValueError:
            return str(cache_root)

    # ------------------------------------------------------------- claim

    def claim_task(
        self, task: Path, worker_id: str
    ) -> Optional[Tuple[Path, JsonDict]]:
        """Atomically lease one specific task file, or None if unclaimable.

        The ``tasks/ -> claims/`` rename is the mutual exclusion: exactly
        one contender's rename succeeds.  A corrupt payload (torn
        publication, bit rot) is **quarantined** -- moved verbatim into
        ``quarantine/`` with a ``corrupt_task`` failure record -- so the
        cell keeps a failure trail instead of silently vanishing from the
        sweep; the coordinator's liveness backstop then republishes it
        within the retry budget.
        """
        claim = self.claims / task.name
        try:
            task.rename(claim)
        except OSError:
            return None  # another worker won the rename (or task vanished)
        payload = _read_json(claim)
        if payload is None or "key" not in payload:
            key = task.name[: -len(".json")] if task.name.endswith(".json") else task.name
            self.quarantine_file(
                claim,
                key=key,
                kind="corrupt_task",
                worker=worker_id,
                error=f"task payload {task.name} is corrupt or truncated; "
                f"quarantined for inspection",
            )
            return None
        # Stamp the lease with its holder so cleanup can verify
        # ownership: a worker that stalls past the lease timeout,
        # loses the claim to reclaim, and later resumes must not
        # unlink the *replacement* worker's lease on this same path.
        payload = dict(payload)
        payload["worker"] = worker_id
        _atomic_write_json(claim, payload)
        skewed = faults.skewed_claim_time(
            payload["key"], int(payload.get("attempts", 0))
        )
        if skewed is not None:  # fault injection: skewed worker clock
            try:
                os.utime(claim, (skewed, skewed))
            except OSError:
                pass
        return claim, payload

    def claim_next(self, worker_id: str) -> Optional[Tuple[Path, JsonDict]]:
        """Atomically lease the first claimable task, or None if empty."""
        for task in sorted(self.tasks.glob("*.json")):
            claimed = self.claim_task(task, worker_id)
            if claimed is not None:
                return claimed
        return None

    def release_claim(self, claim: Path, worker_id: str) -> None:
        """Unlink a claim only if it is still this worker's lease."""
        payload = _read_json(claim)
        if payload is None or payload.get("worker") in (None, worker_id):
            claim.unlink(missing_ok=True)

    @staticmethod
    def heartbeat(claim: Path) -> None:
        """Refresh a lease; a vanished claim (reclaimed) is not an error."""
        try:
            os.utime(claim)
        except OSError:
            pass

    # ------------------------------------------------------- completions

    def complete(
        self,
        key: str,
        *,
        worker: str,
        elapsed_seconds: float,
        attempts: int,
        cached: bool = False,
    ) -> None:
        _atomic_write_json(
            self.done_path(key),
            {
                "key": key,
                "worker": worker,
                "elapsed_seconds": elapsed_seconds,
                "attempts": attempts,
                "cached": cached,
            },
        )

    def read_done(self, key: str) -> Optional[JsonDict]:
        return _read_json(self.done_path(key))

    def done_keys(self) -> "set[str]":
        """Keys with completion markers, in one directory scan."""
        try:
            names = os.listdir(self.done)
        except OSError:
            return set()
        return {
            name[: -len(".json")] for name in names if name.endswith(".json")
        }

    # ---------------------------------------------------------- failures

    def record_failure(
        self, key: str, *, worker: str, kind: str, error: str, attempts: int
    ) -> None:
        nonce = f"{time.time_ns():x}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        _atomic_write_json(
            self.failures / f"{key}.{nonce}.json",
            {
                "key": key,
                "worker": worker,
                "kind": kind,
                "error": error,
                "attempts": attempts,
            },
        )

    def failure_count(self, key: str) -> int:
        return sum(1 for _ in self.failures.glob(f"{key}.*.json"))

    def failure_counts(self) -> Dict[str, int]:
        """Failure-record counts for every key, in one directory scan.

        Record names are ``<key>.<nonce>.json`` with a dot-free nonce, so
        stripping the last two dot-separated components recovers the key.
        """
        counts: Dict[str, int] = {}
        try:
            names = os.listdir(self.failures)
        except OSError:
            return counts
        for name in names:
            if not name.endswith(".json"):
                continue
            key = name[: -len(".json")].rsplit(".", 1)[0]
            counts[key] = counts.get(key, 0) + 1
        return counts

    def clear_failures(self, key: str) -> None:
        """Forget a cell's failure history (fresh enqueue = fresh budget)."""
        for path in self.failures.glob(f"{key}.*.json"):
            path.unlink(missing_ok=True)

    def read_failures(self, key: str) -> List[JsonDict]:
        records = []
        for path in sorted(self.failures.glob(f"{key}.*.json")):
            payload = _read_json(path)
            if payload is not None:
                records.append(payload)
        return records

    # --------------------------------------------------------- quarantine

    def quarantine_file(
        self, path: Path, *, key: str, kind: str, error: str, worker: str = ""
    ) -> Optional[Path]:
        """Dead-letter a corrupt file: move it verbatim into
        ``quarantine/`` and record a failure of ``kind`` for ``key``.

        Returns the quarantined path, or None when the file vanished
        first (another contender quarantined or reclaimed it).
        """
        nonce = f"{time.time_ns():x}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        target = self.quarantine / f"{path.name}.{nonce}"
        try:
            self.quarantine.mkdir(parents=True, exist_ok=True)
            path.rename(target)
        except OSError:
            return None
        self.record_failure(
            key,
            worker=worker,
            kind=kind,
            error=error,
            attempts=self.failure_count(key) + 1,
        )
        return target

    def quarantine_cell(
        self,
        key: str,
        *,
        kind: str,
        payload: Optional[JsonDict] = None,
        failures: Optional[List[JsonDict]] = None,
    ) -> Path:
        """Write a poison cell's dead-letter record (payload + history)."""
        nonce = f"{time.time_ns():x}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        target = self.quarantine / f"{key}.{nonce}.json"
        self.quarantine.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            target,
            {
                "key": key,
                "kind": kind,
                "task": payload,
                "failures": list(failures or []),
            },
        )
        return target

    def quarantined_keys(self) -> "set[str]":
        """Cell keys with any quarantine entry, in one directory scan.

        Covers both entry shapes: poison records (``<key>.<nonce>.json``)
        and verbatim corrupt files (``<key>.json.<nonce>``).
        """
        keys: "set[str]" = set()
        try:
            names = os.listdir(self.quarantine)
        except OSError:
            return keys
        for name in names:
            if ".json." in name:  # verbatim corrupt file
                keys.add(name.split(".json.", 1)[0])
            elif name.endswith(".json"):  # poison record
                keys.add(name[: -len(".json")].rsplit(".", 1)[0])
        return keys

    def clear_quarantine(self, key: str) -> None:
        """Forget a cell's dead letters (fresh enqueue = fresh budget)."""
        for path in list(self.quarantine.glob(f"{key}.*")):
            path.unlink(missing_ok=True)


class FileQueueExecutor(SweepExecutor):
    """Coordinate sweep cells across worker processes via a queue directory.

    The coordinator enqueues the pending cells, optionally spawns
    ``local_workers`` ``tfrc-sweep-worker`` subprocesses, and then only
    watches the queue: completions are read from ``done/`` markers plus the
    result cache, stale leases (claim age measured against the queue
    directory's own clock, :meth:`FileQueue.fs_now`) are reclaimed and
    requeued, and a cell whose failure count reaches ``max_attempts`` is
    dead-lettered into ``quarantine/`` -- then either aborts the sweep
    with :class:`SweepCellError` (``on_poison="raise"``, the default) or
    is skipped as a quarantined :class:`CellCompletion` so the remaining
    cells still finish (``on_poison="quarantine"``).  Any externally
    started workers -- other terminals, other hosts sharing the directory
    -- drain the same queue concurrently.

    ``vector_batch``/``cell_timeout`` are forwarded to locally spawned
    workers as ``--vector-batch`` / ``--cell-timeout``.
    """

    name = "queue"

    def __init__(
        self,
        queue_dir: "str | os.PathLike[str]",
        *,
        local_workers: int = 0,
        lease_timeout: float = 60.0,
        poll_interval: float = 0.1,
        max_attempts: int = 3,
        stall_warning: float = 30.0,
        on_poison: str = "raise",
        vector_batch: int = 1,
        cell_timeout: Optional[float] = None,
    ) -> None:
        if local_workers < 0:
            raise ValueError("local_workers must be >= 0")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if on_poison not in ("raise", "quarantine"):
            raise ValueError("on_poison must be 'raise' or 'quarantine'")
        if vector_batch < 1:
            raise ValueError("vector_batch must be >= 1")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError("cell_timeout must be > 0")
        self.queue_dir = Path(queue_dir)
        self.local_workers = local_workers
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.max_attempts = max_attempts
        self.stall_warning = stall_warning
        self.on_poison = on_poison
        self.vector_batch = vector_batch
        self.cell_timeout = cell_timeout

    # ----------------------------------------------------- local workers

    def _spawn_local_workers(self) -> List["subprocess.Popen[bytes]"]:
        """Start local drain processes (same protocol as remote workers).

        ``sys.path`` is propagated via ``PYTHONPATH`` so scenarios defined
        in modules outside installed packages (tests, ad-hoc scripts)
        import cleanly in the children.
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        heartbeat = max(0.05, min(self.lease_timeout / 4.0, 5.0))
        args = [
            "--poll-interval",
            str(max(0.02, self.poll_interval / 2.0)),
            # Keep idle backoff bounded well below the lease timeout so
            # cells requeued after a reclaim are picked up promptly.
            "--max-poll-interval",
            str(max(0.1, min(1.0, self.lease_timeout / 4.0))),
            "--heartbeat",
            str(heartbeat),
        ]
        if self.vector_batch > 1:
            args += ["--vector-batch", str(self.vector_batch)]
        if self.cell_timeout is not None:
            args += ["--cell-timeout", str(self.cell_timeout)]
        procs = []
        for index in range(self.local_workers):
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.scenarios.worker",
                        str(self.queue_dir),
                        "--worker-id",
                        f"local-{os.getpid()}-{index}",
                        *args,
                    ],
                    env=env,
                )
            )
        return procs

    @staticmethod
    def _stop_workers(procs: List["subprocess.Popen[bytes]"]) -> None:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                proc.kill()
                proc.wait()

    # ----------------------------------------------------------- helpers

    def _payload(self, cell: "SweepCell", cache_dir: str, attempts: int) -> JsonDict:
        return {
            "key": _cell_key(cell),
            "module": self._module_name,
            "spec": cell.spec.to_dict(),
            "cache_dir": cache_dir,
            "attempts": attempts,
            "max_attempts": self.max_attempts,
        }

    def _reclaim_expired(
        self,
        fq: FileQueue,
        remaining: Dict[str, List["SweepCell"]],
        cache_dir: str,
    ) -> None:
        """Requeue cells whose lease went stale (worker died mid-cell).

        Lease age is ``fs_now() - claim mtime``: both timestamps come from
        the filesystem holding the queue directory, so on a shared mount
        the comparison uses the fileserver's clock on both sides.
        Comparing against the coordinator's local wall clock instead would
        let clock skew between hosts reclaim a healthy worker's lease the
        moment it was taken (pinned by ``tests/test_chaos.py``).
        """
        now = fq.fs_now()
        for key, cells in remaining.items():
            claim = fq.claim_path(key)
            try:
                age = now - claim.stat().st_mtime
            except OSError:
                continue  # no active claim
            if age <= self.lease_timeout:
                continue
            # The failure-record count -- not the (possibly stale) claim
            # payload -- is the budget authority: a claim left over from a
            # previous run may carry spent `attempts` that would otherwise
            # stop the requeue here while the record count stays below the
            # budget, stranding the cell.
            payload = _read_json(claim)
            attempts = fq.failure_count(key) + 1
            fq.record_failure(
                key,
                worker=(payload or {}).get("worker", "unknown"),
                kind="lease_expired",
                error=f"lease expired after {age:.1f}s "
                f"(timeout {self.lease_timeout:.1f}s); reclaiming",
                attempts=attempts,
            )
            # Drop the stale lease BEFORE republishing the task, so a
            # worker claiming the new task cannot have its fresh claim
            # (renamed onto this same path) deleted from under it.
            claim.unlink(missing_ok=True)
            if attempts < self.max_attempts:
                fq.enqueue(self._payload(cells[0], cache_dir, attempts))

    # --------------------------------------------------------- execution

    def run_cells(self, plan: SweepPlan) -> Iterator[CellCompletion]:
        if plan.cache is None:
            raise ValueError(
                "the queue executor needs a result cache (pass cache_dir; "
                "workers deliver results through it)"
            )
        cache = plan.cache
        self._module_name = plan.module_name
        fq = FileQueue(self.queue_dir).ensure()
        cache_dir = fq.encode_cache_dir(cache.root)

        remaining: Dict[str, List["SweepCell"]] = {}
        for cell in plan.cells:
            remaining.setdefault(_cell_key(cell), []).append(cell)

        for key, cells in remaining.items():
            # A done marker without a cached result (interrupted worker,
            # pruned cache) is stale: clear it so the cell re-runs.
            if fq.done_path(key).exists() and cache.get(cells[0].spec) is None:
                fq.done_path(key).unlink(missing_ok=True)
            if fq.done_path(key).exists():
                continue  # finished: the poll loop collects it right away
            # Every coordinator run grants every unfinished cell a fresh
            # retry budget: failure records left by an earlier aborted run
            # must not poison this one, and the worker-side requeue
            # decision (driven by the payload's `attempts`) must agree
            # with the coordinator's record count -- leftover state with
            # spent attempts but cleared records (or vice versa) can
            # otherwise strand a cell forever.  Dead letters from the
            # earlier run are cleared with the records they summarize.
            fq.clear_failures(key)
            fq.clear_quarantine(key)
            if fq.claim_path(key).exists():
                # A worker (possibly from a previous run) may still be on
                # it; completion or lease expiry will resolve the claim.
                continue
            leftover = _read_json(fq.task_path(key))
            if (
                leftover is not None
                and leftover.get("attempts", 0) == 0
                and leftover.get("max_attempts") == self.max_attempts
                and leftover.get("cache_dir") == cache_dir
            ):
                continue  # already queued with a fresh budget
            # (Re-)publish with attempts=0 -- last-wins overwrite.  The
            # tiny window against a concurrent claim of a leftover task
            # can at worst duplicate one idempotent execution.
            fq.enqueue(self._payload(cells[0], cache_dir, 0))

        procs = self._spawn_local_workers()
        quarantined_keys: List[str] = []
        last_progress = time.monotonic()
        stall_warned = False
        dead_worker_rounds = 0
        housekeep_every = max(
            self.poll_interval, min(self.lease_timeout / 4.0, 2.0)
        )
        next_housekeeping = time.monotonic()
        try:
            while remaining:
                progressed = False
                # One readdir of done/ per poll round; marker JSON is only
                # read for cells that actually completed (NFS-friendly: no
                # per-key failed-open probing at poll rate).
                for key in sorted(fq.done_keys().intersection(remaining)):
                    marker = fq.read_done(key)
                    if marker is None:
                        continue
                    status, result, defect = cache.get_status(
                        remaining[key][0].spec
                    )
                    if status != "hit":
                        # Marker landed but the result did not reach *this*
                        # cache intact.  A corrupt entry (torn worker
                        # write) is quarantined for inspection; either way
                        # the attempt counts against the retry budget:
                        # with a cache the workers cannot actually share
                        # (e.g. --cache outside the queue dir on a
                        # multi-host run) every attempt ends here, and
                        # without the budget the cell would re-execute
                        # forever.
                        if status == "corrupt":
                            cache.quarantine(remaining[key][0].spec)
                            kind = "corrupt_result"
                            error = (
                                f"done marker published but the cached "
                                f"result is corrupt ({defect}); entry "
                                f"quarantined, cell re-executes"
                            )
                        else:
                            kind = "missing_result"
                            error = (
                                "done marker published but no readable "
                                "cached result on the coordinator -- is "
                                "the cache directory shared with the "
                                "workers?"
                            )
                        fq.done_path(key).unlink(missing_ok=True)
                        attempts = fq.failure_count(key) + 1
                        fq.record_failure(
                            key,
                            worker=str(marker.get("worker", "unknown")),
                            kind=kind,
                            error=error,
                            attempts=attempts,
                        )
                        if attempts < self.max_attempts:
                            fq.enqueue(
                                self._payload(
                                    remaining[key][0], cache_dir, attempts
                                )
                            )
                        continue
                    # A task republished by lease reclaim (or the liveness
                    # backstop) may linger after a duplicate execution
                    # completed the cell; withdraw it so workers stop
                    # re-claiming finished work.
                    fq.task_path(key).unlink(missing_ok=True)
                    for cell in remaining.pop(key):
                        yield CellCompletion(
                            cell=cell,
                            result=result,
                            elapsed_seconds=float(
                                marker.get("elapsed_seconds", 0.0)
                            ),
                            worker=str(marker.get("worker", "")),
                            already_cached=True,
                        )
                    progressed = True
                if not remaining:
                    break
                if progressed:
                    last_progress = time.monotonic()
                    stall_warned = False

                # Housekeeping (lease reclaim, budget enforcement, the
                # stranded-cell backstop, worker-death detection) runs at
                # a coarser cadence than done-marker collection: it is
                # O(remaining cells) of filesystem stats, which on the
                # shared/NFS mounts this executor targets is real metadata
                # traffic, and none of it needs 10 Hz resolution.
                if time.monotonic() >= next_housekeeping:
                    next_housekeeping = time.monotonic() + housekeep_every

                    self._reclaim_expired(fq, remaining, cache_dir)

                    failure_counts = fq.failure_counts()
                    for key in list(remaining):
                        failures = failure_counts.get(key, 0)
                        if failures >= self.max_attempts:
                            records = fq.read_failures(key)
                            last = records[-1] if records else {}
                            detail = str(
                                last.get("error", "")
                            ).strip().splitlines()
                            last_error = (
                                detail[-1] if detail else "unrecorded"
                            )
                            cell = remaining[key][0]
                            # Dead-letter the poison cell: its payload plus
                            # full failure history land in quarantine/ so
                            # the evidence survives whichever policy runs
                            # next, and the task file is withdrawn so
                            # workers stop burning attempts on it.
                            qpath = fq.quarantine_cell(
                                key,
                                kind="retry_budget_exhausted",
                                payload=self._payload(
                                    cell, cache_dir, failures
                                ),
                                failures=records,
                            )
                            fq.task_path(key).unlink(missing_ok=True)
                            if self.on_poison == "quarantine":
                                for cell in remaining.pop(key):
                                    yield CellCompletion(
                                        cell=cell,
                                        result=None,
                                        quarantined=True,
                                        failure=last_error,
                                    )
                                quarantined_keys.append(key)
                                last_progress = time.monotonic()
                                continue
                            raise SweepCellError(
                                f"sweep cell {cell.describe()} failed "
                                f"{failures} time(s) on the file queue "
                                f"(budget {self.max_attempts}); last error: "
                                f"{last_error}; dead-letter record: "
                                f"{qpath}",
                                cell=cell,
                                overrides=cell.overrides,
                                failures=records,
                                quarantine_path=qpath,
                            )

                    # Liveness backstop: a cell no queue state tracks at
                    # all (no task, no claim, no done marker, budget not
                    # spent) is stranded -- e.g. a worker from a previous
                    # run failed it but declined the requeue under its
                    # stale attempt count.  Republish it; a harmless
                    # duplicate in the rare race with a just-claiming
                    # worker beats a sweep that never returns.
                    claims_live = False
                    for key in list(remaining):
                        if fq.claim_path(key).exists():
                            claims_live = True
                        elif (
                            failure_counts.get(key, 0) < self.max_attempts
                            and not fq.task_path(key).exists()
                            and not fq.done_path(key).exists()
                        ):
                            fq.enqueue(
                                self._payload(
                                    remaining[key][0],
                                    cache_dir,
                                    failure_counts.get(key, 0),
                                )
                            )

                    if (
                        procs
                        and all(proc.poll() is not None for proc in procs)
                        # External workers (other hosts) may still be
                        # draining the queue: only give up when no lease
                        # is live either -- and only after the condition
                        # holds across consecutive rounds, so a poll that
                        # lands in the instant between one claim being
                        # released and the next being taken (or right as
                        # the last cell finishes) cannot kill a healthy
                        # sweep.
                        and not claims_live
                    ):
                        dead_worker_rounds += 1
                        if dead_worker_rounds >= 3:
                            codes = [proc.returncode for proc in procs]
                            raise SweepCellError(
                                f"all {len(procs)} local sweep workers "
                                f"exited unexpectedly (exit codes {codes}) "
                                f"with {len(remaining)} cell(s) unfinished "
                                f"and no external workers active"
                            )
                    else:
                        dead_worker_rounds = 0

                    if (
                        not stall_warned
                        and self.stall_warning
                        and time.monotonic() - last_progress
                        > self.stall_warning
                        and not claims_live
                        and not procs
                    ):
                        print(
                            f"[sweep-queue] {len(remaining)} cell(s) queued "
                            f"in {self.queue_dir} with no active workers; "
                            f"start tfrc-sweep-worker processes pointed at "
                            f"this directory (or rerun with local workers)",
                            file=sys.stderr,
                        )
                        stall_warned = True

                time.sleep(self.poll_interval)
        except BaseException:
            # Leave claims (their workers may still finish and warm the
            # cache) but withdraw unclaimed tasks so external workers stop
            # picking up a sweep that already failed.
            for key in remaining:
                fq.task_path(key).unlink(missing_ok=True)
            raise
        else:
            if quarantined_keys:
                print(
                    f"[sweep-queue] {len(quarantined_keys)} poison cell(s) "
                    f"quarantined in {fq.quarantine} (retry budget "
                    f"{self.max_attempts} exhausted): "
                    f"{', '.join(sorted(quarantined_keys))}",
                    file=sys.stderr,
                )
        finally:
            self._stop_workers(procs)


def _cell_key(cell: "SweepCell") -> str:
    """Queue/cache-aligned cell identity: ``<scenario>-<spec_hash>``."""
    return f"{cell.spec.scenario}-{cell.spec.spec_hash()}"


#: what SweepRunner accepts for ``executor=``: a name or an instance.
ExecutorArg = Union[str, SweepExecutor]

#: the valid ``executor=`` / ``--executor`` names, in one place (also used
#: by SweepRunner validation and the experiment CLI's argparse choices).
EXECUTOR_NAMES = ("serial", "pool", "queue", "vector")


def resolve_executor(
    executor: Optional[ExecutorArg],
    *,
    parallel: int = 1,
    queue_dir: Optional["str | os.PathLike[str]"] = None,
    pending: Optional[int] = None,
) -> SweepExecutor:
    """Turn ``executor=`` (name, instance, or None) into a backend.

    ``None`` preserves the historical behavior: serial for ``parallel=1``
    (or a single pending cell), otherwise a process pool of ``parallel``
    workers.  The name ``"queue"`` builds a :class:`FileQueueExecutor` on
    ``queue_dir`` with ``parallel`` locally spawned workers (0 = rely on
    externally started ``tfrc-sweep-worker`` processes).
    """
    if isinstance(executor, SweepExecutor):
        return executor
    if executor is None:
        if parallel <= 1 or (pending is not None and pending <= 1):
            return SerialExecutor()
        return PoolExecutor(max_workers=parallel)
    if executor == "serial":
        return SerialExecutor()
    if executor == "pool":
        return PoolExecutor(max_workers=max(1, parallel))
    if executor == "queue":
        if queue_dir is None:
            raise ValueError("executor 'queue' requires a queue_dir")
        return FileQueueExecutor(queue_dir, local_workers=max(0, parallel))
    if executor == "vector":
        # Imported here: repro.scenarios.vector imports this module for the
        # SweepExecutor protocol, so a top-level import would be circular.
        from repro.scenarios.vector import VectorExecutor

        return VectorExecutor()
    raise ValueError(
        f"unknown executor {executor!r}; choose one of {EXECUTOR_NAMES} "
        f"or pass a SweepExecutor instance"
    )
