"""Deterministic fault injection for the sweep fabric.

The file-queue fabric (:mod:`repro.scenarios.executors` /
:mod:`repro.scenarios.worker`) promises that a sweep survives worker
crashes, torn writes, clock skew, and poison cells, and that the
reassembled :class:`~repro.scenarios.sweep.SweepResult` is byte-identical
to a clean serial run.  This module makes that promise testable: a seeded
:class:`FaultPlan` schedules faults at named **sites** inside the queue
and cache I/O paths, and the chaos soak (``tests/test_chaos.py``) runs a
real multi-worker sweep under the plan and asserts the clean-run bytes.

Design constraints, in order:

1. **Deterministic and replayable.**  Whether a fault fires depends only
   on ``(plan.seed, site, cell key, attempt)`` -- never on call order,
   timing, or which worker happens to claim the cell -- so a plan produces
   the same fault schedule across any number of processes and reruns, and
   a failing seed reproduces exactly.
2. **Zero overhead when disabled.**  Every hook first calls
   :func:`active`, which is a cached ``None`` check; no plan object, no
   hashing, no I/O.  The simulation hot path has no hooks at all -- faults
   live strictly in the fabric's file I/O layer.
3. **Cross-process.**  ``tfrc-sweep-worker`` subprocesses activate the
   same plan through the :data:`ENV_VAR` environment variable (pointing at
   a plan JSON written by :meth:`FaultPlan.dump`), which the coordinator's
   spawned workers inherit automatically.

Fault sites (the keys of :attr:`FaultPlan.rates`):

``worker_kill``
    The worker "dies" (raises :class:`WorkerKilled`) after claiming a cell
    but before publishing any result: the lease goes stale and the
    coordinator must reclaim and requeue.
``batch_kill``
    Same, but fired mid lockstep vector batch (checked per member cell),
    abandoning every lease in the batch at once.
``torn_cache_write``
    The cell executes, but the worker crashes mid cache commit leaving a
    **torn** (truncated, checksum-failing) entry at the final path -- the
    state an unsynced rename can leave after power loss.  Corruption
    detection on read must quarantine the entry and re-execute the cell.
``corrupt_task_write``
    A task publication is torn: the ``tasks/<key>.json`` payload is
    truncated garbage.  ``FileQueue.claim_task`` must quarantine it (with
    a ``corrupt_task`` failure record) and the coordinator's liveness
    backstop must republish the cell.
``heartbeat_stall``
    The worker's heartbeat thread stalls for :attr:`FaultPlan.stall_seconds`
    (longer than the lease timeout): the coordinator reclaims a lease whose
    worker is actually still healthy, and the resulting duplicate
    execution must stay byte-identical (idempotent cache writes).
``clock_skew``
    The worker stamps its claim/heartbeats ``skew_seconds`` in the past,
    as a worker on an NFS mount with a skewed clock would: reclaim must
    not corrupt the sweep even when it fires against a live worker.
``delayed_rename``
    The tmp-file -> final atomic rename is delayed by
    :attr:`FaultPlan.delay_seconds`, widening every publication race
    window the fabric claims to tolerate.

Fired faults are logged (one JSON file per distinct decision, so
re-evaluated decisions never double-count) under :attr:`FaultPlan.log_dir`
when set; the soak asserts the required fault-kind coverage from that log.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Set

from repro.scenarios._fsio import atomic_write_json

#: environment variable naming a FaultPlan JSON file; worker subprocesses
#: (which inherit the coordinator's environment) activate the plan from it.
ENV_VAR = "TFRC_FAULT_PLAN"

#: every recognized fault site, for validation and docs.
FAULT_SITES = (
    "worker_kill",
    "batch_kill",
    "torn_cache_write",
    "corrupt_task_write",
    "heartbeat_stall",
    "clock_skew",
    "delayed_rename",
)


class WorkerKilled(BaseException):
    """A simulated hard worker death (fault injection only).

    Deliberately **not** an :class:`Exception`: the worker's failure
    handling must not catch it, record it, release the lease, or requeue
    the cell -- a real ``kill -9`` does none of those.  The worker loop
    handles it explicitly by abandoning its leases (which then expire and
    are reclaimed by the coordinator) and moving on, exactly as if a
    replacement worker had started.
    """


class FaultInjectionError(RuntimeError):
    """A malformed fault plan (bad site name, bad rate, unreadable file)."""


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of fabric faults.

    ``rates`` maps a fault site to the probability that the fault fires
    for a given ``(cell key, attempt)`` -- the decision is a pure hash of
    ``(seed, site, key, attempt)``, so it is identical in every process
    and on every rerun.  Retried cells get fresh decisions (the attempt
    number changes), which is what lets a chaos sweep converge: a fault
    that fired on attempt 0 almost never fires again on attempt 1.
    """

    seed: int = 0
    rates: Dict[str, float] = field(default_factory=dict)
    #: delayed_rename: how long the tmp -> final rename sleeps.
    delay_seconds: float = 0.05
    #: heartbeat_stall: how long the beat thread goes silent.
    stall_seconds: float = 3.0
    #: clock_skew: how far in the past a skewed worker stamps its lease.
    skew_seconds: float = 300.0
    #: directory for fired-fault records (None = no logging).
    log_dir: Optional[str] = None

    def __post_init__(self) -> None:
        for site, rate in self.rates.items():
            if site not in FAULT_SITES:
                raise FaultInjectionError(
                    f"unknown fault site {site!r}; choose from {FAULT_SITES}"
                )
            if not 0.0 <= float(rate) <= 1.0:
                raise FaultInjectionError(
                    f"fault rate for {site!r} must be in [0, 1], got {rate!r}"
                )
        self._logged: Set[str] = set()
        self._log_lock = threading.Lock()

    # ------------------------------------------------------------ decisions

    def _digest(self, site: str, key: str, attempt: int) -> "hashlib._Hash":
        return hashlib.sha256(
            f"{self.seed}:{site}:{key}:{attempt}".encode("utf-8")
        )

    def decide(self, site: str, key: str, attempt: int = 0) -> bool:
        """Pure decision: does ``site`` fire for ``(key, attempt)``?

        Free of side effects (no logging) so callers may re-evaluate it --
        e.g. the heartbeat thread checking its stall schedule every beat --
        without double-counting.
        """
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        digest = self._digest(site, key, attempt).digest()
        # 6 bytes -> uniform in [0, 1) with plenty of resolution.
        u = int.from_bytes(digest[:6], "big") / float(1 << 48)
        return u < rate

    def fires(self, site: str, key: str, attempt: int = 0) -> bool:
        """:meth:`decide`, plus a fired-fault log record on True."""
        if not self.decide(site, key, attempt):
            return False
        self._log(site, key, attempt)
        return True

    # -------------------------------------------------------------- logging

    def _log(self, site: str, key: str, attempt: int) -> None:
        if self.log_dir is None:
            return
        # One file per distinct decision: duplicate executions of the same
        # (site, key, attempt) -- e.g. after a lease is reclaimed from a
        # live worker -- overwrite rather than double-count.
        name = f"{site}.{self._digest(site, key, attempt).hexdigest()[:16]}"
        with self._log_lock:
            if name in self._logged:
                return
            self._logged.add(name)
        try:
            root = Path(self.log_dir)
            root.mkdir(parents=True, exist_ok=True)
            # Atomic but not fsynced: losing a log record on power loss is
            # harmless, a torn one would corrupt the soak's coverage count.
            atomic_write_json(
                root / f"{name}.json",
                {"site": site, "key": key, "attempt": attempt},
                durable=False,
                _fault_hook=False,
            )
        except OSError:  # pragma: no cover - log loss must never fault the run
            pass

    # ---------------------------------------------------------- (de)serialize

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rates": dict(self.rates),
            "delay_seconds": self.delay_seconds,
            "stall_seconds": self.stall_seconds,
            "skew_seconds": self.skew_seconds,
            "log_dir": self.log_dir,
        }

    def dump(self, path: "str | os.PathLike[str]") -> Path:
        """Write the plan JSON that :data:`ENV_VAR` points workers at.

        Committed via the shared tmp+fsync+rename helper: the fault layer
        injects torn writes, it must not be able to tear its own state
        file (a half-written plan would crash every spawned worker).
        """
        path = Path(path)
        atomic_write_json(path, self.to_dict(), _fault_hook=False)
        return path

    @classmethod
    def load(cls, path: "str | os.PathLike[str]") -> "FaultPlan":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise FaultInjectionError(
                f"unreadable fault plan {path!r}: {exc}"
            ) from exc
        return cls(
            seed=int(data.get("seed", 0)),
            rates={k: float(v) for k, v in dict(data.get("rates", {})).items()},
            delay_seconds=float(data.get("delay_seconds", 0.05)),
            stall_seconds=float(data.get("stall_seconds", 3.0)),
            skew_seconds=float(data.get("skew_seconds", 300.0)),
            log_dir=data.get("log_dir"),
        )


# ------------------------------------------------------------------ activation

#: the installed plan; None = fault injection disabled (the normal state).
_ACTIVE: Optional[FaultPlan] = None
#: False until the environment has been consulted once; the cached result
#: keeps the per-I/O-op cost of `active()` at a single attribute check.
_ENV_CHECKED = False


def install(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` in this process (None = deactivate)."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = plan
    _ENV_CHECKED = True


def uninstall() -> None:
    """Deactivate fault injection and forget the cached env lookup."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = None
    _ENV_CHECKED = False


def active() -> Optional[FaultPlan]:
    """The plan in effect, lazily loaded from :data:`ENV_VAR` once."""
    global _ACTIVE, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        path = os.environ.get(ENV_VAR)
        if path:
            _ACTIVE = FaultPlan.load(path)
    return _ACTIVE


def fires(site: str, key: str, attempt: int = 0) -> bool:
    """Hook: does ``site`` fire here?  False (fast) when no plan is active."""
    plan = active()
    return plan is not None and plan.fires(site, key, attempt)


# ------------------------------------------------------------ I/O fault hooks


def on_atomic_write(path: Path) -> None:
    """Hook inside the tmp-write/rename sequence (``delayed_rename``).

    Called by :func:`repro.scenarios.cache.atomic_write_json` between the
    tmp-file write and the rename; keyed by the target file name so the
    delay schedule is stable no matter which process performs the write.
    """
    plan = active()
    if plan is None:
        return
    if plan.fires("delayed_rename", path.name):
        time.sleep(plan.delay_seconds)


def write_torn(path: Path, payload: Dict[str, Any]) -> None:
    """Leave a torn (truncated, unparseable) JSON file at ``path``.

    Simulates the on-disk state of a write that crashed without fsync:
    the file exists at its final name but holds only a prefix of the
    payload.  Used by the ``torn_cache_write`` / ``corrupt_task_write``
    sites; production code never calls this.
    """
    text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
    path.parent.mkdir(parents=True, exist_ok=True)
    # This IS the simulated crashed-write state the atomic helper prevents.
    # tfrc-audit: ignore[fsio.raw-write] -- deliberately torn
    with path.open("w", encoding="utf-8") as fh:
        fh.write(text[: max(1, len(text) // 2)])


def skewed_claim_time(key: str, attempt: int = 0) -> Optional[float]:
    """The (past) timestamp a ``clock_skew``-faulted worker stamps leases
    with, or None when the fault does not fire for this cell."""
    plan = active()
    if plan is None or not plan.fires("clock_skew", key, attempt):
        return None
    return time.time() - plan.skew_seconds


def heartbeat_stalled(key: str, attempt: int = 0) -> float:
    """Seconds the heartbeat thread should stall for this cell (0 = none).

    Uses :meth:`FaultPlan.decide` on re-evaluation paths so the beat loop
    can poll it without duplicate log records; the single log entry is
    written on the first call via :meth:`FaultPlan.fires`.
    """
    plan = active()
    if plan is None or not plan.fires("heartbeat_stall", key, attempt):
        return 0.0
    return plan.stall_seconds
