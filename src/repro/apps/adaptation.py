"""Quality-ladder adaptation driven by the observed delivery rate.

[TZ99] (cited in the paper's sections 1 and 5) couples TCP-friendly
congestion control to a scalable video encoder: the encoder's output rate
follows the allowed transmission rate.  The user-visible consequence of a
*jumpy* allowed rate is frequent quality switches -- each one noticeable.

:class:`QualityAdapter` replays a delivery-rate time series against an
encoding ladder with the standard player policy:

* pick the highest level whose bitrate fits within ``headroom`` of the
  measured rate;
* switch **down** immediately (continuing to send above the available
  rate causes stalls);
* switch **up** only after the rate has supported the higher level for
  ``up_stability`` consecutive seconds (hysteresis against flapping).

The output metrics (mean quality level, switch count, time per level) are
the terms in which the paper's smoothness claim matters to users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True, order=True)
class EncodingLevel:
    """One rung of the encoding ladder (ordered by bitrate)."""

    bitrate_bps: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate_bps must be positive")


def standard_ladder() -> List[EncodingLevel]:
    """A typical 2000-era streaming ladder (modem to broadband)."""
    return [
        EncodingLevel(64e3, "audio-only"),
        EncodingLevel(128e3, "thumbnail"),
        EncodingLevel(300e3, "low"),
        EncodingLevel(700e3, "medium"),
        EncodingLevel(1.5e6, "high"),
    ]


@dataclass
class AdaptationResult:
    """Outcome of replaying a rate trace against a ladder.

    Attributes:
        levels: the ladder used (sorted ascending).
        choices: per-sample chosen level index (-1 while the rate supports
            no level at all).
        switches: number of level changes after the first choice.
        mean_level: time-average of the chosen level indices (defined
            samples only).
        time_per_level: seconds spent at each level index.
        tau: seconds per sample of the input trace.
    """

    levels: List[EncodingLevel]
    choices: List[int]
    switches: int
    mean_level: float
    time_per_level: Dict[int, float]
    tau: float

    @property
    def switches_per_minute(self) -> float:
        total = len(self.choices) * self.tau
        return self.switches / (total / 60.0) if total > 0 else 0.0

    def mean_bitrate_bps(self) -> float:
        """Time-averaged encoded bitrate actually selected."""
        total = 0.0
        samples = 0
        for choice in self.choices:
            if choice >= 0:
                total += self.levels[choice].bitrate_bps
                samples += 1
        return total / samples if samples else 0.0


class QualityAdapter:
    """Replay delivery rates against an encoding ladder."""

    def __init__(
        self,
        levels: Optional[Sequence[EncodingLevel]] = None,
        headroom: float = 0.85,
        up_stability: float = 5.0,
    ) -> None:
        """
        Args:
            levels: the encoding ladder; defaults to :func:`standard_ladder`.
            headroom: fraction of the measured rate usable for media (the
                rest absorbs jitter and protocol overhead).
            up_stability: seconds the rate must support a higher level
                before switching up.
        """
        ladder = sorted(levels if levels is not None else standard_ladder())
        if not ladder:
            raise ValueError("the encoding ladder must not be empty")
        if not 0 < headroom <= 1:
            raise ValueError("headroom must be in (0, 1]")
        if up_stability < 0:
            raise ValueError("up_stability cannot be negative")
        self.levels: List[EncodingLevel] = ladder
        self.headroom = headroom
        self.up_stability = up_stability

    def _fitting_level(self, rate_bps: float) -> int:
        """Highest ladder index affordable at ``rate_bps`` (or -1)."""
        budget = rate_bps * self.headroom
        best = -1
        for index, level in enumerate(self.levels):
            if level.bitrate_bps <= budget:
                best = index
        return best

    def replay(
        self, rate_series_bps: Sequence[float], tau: float
    ) -> AdaptationResult:
        """Run the policy over a rate trace sampled every ``tau`` seconds."""
        if tau <= 0:
            raise ValueError("tau must be positive")
        choices: List[int] = []
        current = None  # no level chosen yet
        stable_for = 0.0
        switches = 0
        for rate in rate_series_bps:
            fitting = self._fitting_level(float(rate))
            if current is None:
                current = fitting
            elif fitting < current:
                current = fitting        # downswitch: immediate
                stable_for = 0.0
                switches += 1
            elif fitting > current:
                stable_for += tau        # upswitch: needs sustained headroom
                if stable_for >= self.up_stability:
                    current += 1         # climb one rung at a time
                    stable_for = 0.0
                    switches += 1
            else:
                stable_for = 0.0
            choices.append(current)
        defined = [c for c in choices if c is not None and c >= 0]
        time_per_level: Dict[int, float] = {}
        for choice in choices:
            if choice is not None:
                time_per_level[choice] = time_per_level.get(choice, 0.0) + tau
        mean_level = sum(defined) / len(defined) if defined else float("nan")
        return AdaptationResult(
            levels=self.levels,
            choices=[c if c is not None else -1 for c in choices],
            switches=switches,
            mean_level=mean_level,
            time_per_level=time_per_level,
            tau=tau,
        )
