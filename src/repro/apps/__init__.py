"""Application models: what congestion control smoothness means to users.

The paper's motivation (section 1) is streaming multimedia: "halving the
sending rate in response to a single congestion indication ... can
noticeably reduce the user-perceived quality [TZ99]".  Figures 8/10/13
quantify smoothness as the CoV of the send rate; this package translates
rate traces into the *user-facing* quantities a streaming application
cares about:

* :mod:`repro.apps.playout` -- a playout buffer fed by a delivery trace
  and drained at the media bitrate: startup delay, rebuffering events,
  total stall time.
* :mod:`repro.apps.adaptation` -- a quality-ladder adapter choosing an
  encoding level from the observed delivery rate (with hysteresis, like
  [TZ99]'s coupling of congestion control to a scalable encoder): mean
  quality, switch frequency, time spent per level.

Both are pure offline analyses over ``(time, bytes)`` arrival traces from
:class:`repro.net.monitor.FlowMonitor`, so they compose with every
simulation scenario in the repository and are deterministic.
"""

from repro.apps.adaptation import (
    AdaptationResult,
    EncodingLevel,
    QualityAdapter,
    standard_ladder,
)
from repro.apps.playout import PlayoutBuffer, PlayoutStats, simulate_playout

__all__ = [
    "PlayoutBuffer",
    "PlayoutStats",
    "simulate_playout",
    "EncodingLevel",
    "QualityAdapter",
    "AdaptationResult",
    "standard_ladder",
]
