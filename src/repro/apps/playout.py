"""Playout-buffer simulation over a delivery trace.

A streaming receiver buffers arriving media and drains it at the encoding
bitrate.  Given the ``(time, bytes)`` arrival trace of a flow (as recorded
by :class:`repro.net.monitor.FlowMonitor`), this module computes what the
viewer experiences:

* **startup delay** -- time until ``prebuffer_seconds`` of media is
  buffered and playback starts;
* **rebuffering events** -- times the buffer ran dry, pausing playback
  until it refills to the rebuffer target;
* **stall time** -- total paused seconds.

The same smoothness the paper measures as CoV (Figures 8/10) shows up here
directly: a flow whose short-term rate halves and recovers (TCP) drains
the buffer during each dip, while an equally-fast-on-average smooth flow
(TFRC) doesn't.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

Arrival = Tuple[float, int]


@dataclass
class PlayoutStats:
    """What the viewer experienced.

    Attributes:
        startup_delay: seconds from the first byte to playback start
            (``inf`` if the prebuffer never filled).
        rebuffer_events: number of mid-playback stalls.
        stall_time: total seconds spent stalled (excludes startup).
        played_seconds: seconds of media actually played out.
        stall_times: start times of each stall, for plotting.
    """

    startup_delay: float
    rebuffer_events: int
    stall_time: float
    played_seconds: float
    stall_times: List[float] = field(default_factory=list)

    @property
    def stall_ratio(self) -> float:
        """Stalled time as a fraction of (played + stalled) time."""
        total = self.played_seconds + self.stall_time
        return self.stall_time / total if total > 0 else 0.0


class PlayoutBuffer:
    """Event-driven playout buffer: feed arrivals, advance the clock.

    The buffer holds *media seconds* (bytes / media_rate).  Playback
    starts once ``prebuffer_seconds`` are buffered; on underrun, playback
    pauses until ``rebuffer_seconds`` are buffered again (re-buffering to
    less than the initial prebuffer is the common player policy).

    Use :func:`simulate_playout` for the one-shot trace API; this class
    exists for incremental (in-simulation) use.
    """

    def __init__(
        self,
        media_rate_bps: float,
        prebuffer_seconds: float = 2.0,
        rebuffer_seconds: float = 1.0,
    ) -> None:
        if media_rate_bps <= 0:
            raise ValueError("media_rate_bps must be positive")
        if prebuffer_seconds < 0 or rebuffer_seconds < 0:
            raise ValueError("buffer targets cannot be negative")
        self.media_rate_bps = media_rate_bps
        self.prebuffer_seconds = prebuffer_seconds
        self.rebuffer_seconds = rebuffer_seconds
        self.buffered_seconds = 0.0
        self.playing = False
        self.started_at: float = float("inf")
        self.first_byte_at: float = float("inf")
        self.played_seconds = 0.0
        self.stall_time = 0.0
        self.stall_times: List[float] = []
        self._clock: float = 0.0

    @property
    def _playback_started(self) -> bool:
        return self.started_at != float("inf")

    # ------------------------------------------------------------ mechanics

    def advance(self, now: float) -> None:
        """Advance the playback clock to ``now``, draining the buffer."""
        if now < self._clock:
            raise ValueError(f"time went backwards: {now} < {self._clock}")
        elapsed = now - self._clock
        self._clock = now
        if self.playing:
            if self.buffered_seconds >= elapsed:
                self.buffered_seconds -= elapsed
                self.played_seconds += elapsed
            else:
                # Played what was buffered, then stalled for the rest.
                played = self.buffered_seconds
                self.played_seconds += played
                self.buffered_seconds = 0.0
                self.playing = False
                self.stall_times.append(now - (elapsed - played))
                self.stall_time += elapsed - played
        elif self._playback_started:
            # Mid-playback rebuffer stall (startup buffering is counted
            # as startup delay, not stall time).
            self.stall_time += elapsed

    def feed(self, now: float, nbytes: int) -> None:
        """Deliver ``nbytes`` of media at time ``now``."""
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        self.advance(now)
        if self.first_byte_at == float("inf") and nbytes > 0:
            self.first_byte_at = now
        self.buffered_seconds += nbytes * 8 / self.media_rate_bps
        if not self.playing:
            target = (
                self.rebuffer_seconds
                if self._playback_started
                else self.prebuffer_seconds
            )
            if self.buffered_seconds >= target:
                self.playing = True
                if not self._playback_started:
                    self.started_at = now

    # -------------------------------------------------------------- results

    def stats(self) -> PlayoutStats:
        startup = (
            self.started_at - self.first_byte_at
            if self.started_at != float("inf")
            else float("inf")
        )
        return PlayoutStats(
            startup_delay=startup,
            rebuffer_events=len(self.stall_times),
            stall_time=self.stall_time,
            played_seconds=self.played_seconds,
            stall_times=list(self.stall_times),
        )


def simulate_playout(
    arrivals: Sequence[Arrival],
    media_rate_bps: float,
    prebuffer_seconds: float = 2.0,
    rebuffer_seconds: float = 1.0,
    end_time: float = 0.0,
) -> PlayoutStats:
    """Run a full delivery trace through a playout buffer.

    ``arrivals`` is the ``(time, bytes)`` list a
    :class:`~repro.net.monitor.FlowMonitor` records (must be time-sorted).
    ``end_time`` extends draining past the last arrival (defaults to the
    last arrival time).
    """
    buffer = PlayoutBuffer(
        media_rate_bps,
        prebuffer_seconds=prebuffer_seconds,
        rebuffer_seconds=rebuffer_seconds,
    )
    last = 0.0
    for when, nbytes in arrivals:
        if when < last:
            raise ValueError("arrival trace must be time-sorted")
        buffer.feed(when, nbytes)
        last = when
    if end_time > last:
        buffer.advance(end_time)
    return buffer.stats()
