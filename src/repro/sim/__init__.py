"""Discrete-event simulation engine.

This package is the substrate that replaces the ns-2 scheduler used by the
paper.  It provides:

* :class:`~repro.sim.engine.Simulator` -- a heap-based event loop with a
  monotonically non-decreasing clock.
* :class:`~repro.sim.process.Timer`, :class:`~repro.sim.process.FastTimer`
  and :class:`~repro.sim.process.PeriodicProcess` -- restartable timers built
  on the event loop, used for retransmission timers, feedback timers and
  traffic generators.  ``FastTimer`` is the zero-``Event``-allocation hot
  path; ``Timer`` is the legacy handle-based implementation.
* :mod:`~repro.sim.rng` -- named, independently seeded random streams so that
  experiments are reproducible and sub-systems do not perturb each other's
  random sequences.
* :mod:`~repro.sim.trace` -- lightweight structured tracing used by the
  analysis layer to reconstruct time series.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.process import FastTimer, PeriodicProcess, Timer, make_timer
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "Simulator",
    "Timer",
    "FastTimer",
    "make_timer",
    "PeriodicProcess",
    "RngRegistry",
    "Tracer",
    "TraceRecord",
]
