"""Named random streams for reproducible experiments.

Each subsystem (link loss, traffic generator, flow start times, ...) draws
from its own :class:`numpy.random.Generator`, derived deterministically from
the experiment seed and the stream name.  Adding a new consumer of randomness
therefore never perturbs the sequences seen by existing consumers, which is
essential when comparing runs across code revisions.

This module also owns the repo's block-buffered draw helpers.  numpy fills
array draws from the same underlying bit stream as repeated scalar calls,
so handing out ``rng.random(block)`` (or ``rng.uniform(0, high, block)``)
one element at a time yields the *exact same values in the same order* as
per-call scalar draws -- at a fraction of the per-draw cost.  The pattern
used to live as private copies in the RED fast path and the access-jitter
path; :class:`BlockDraws` is the shared scalar form and :class:`DrawLanes`
the vectorized N-lane form used by the batched cell kernel.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence

import numpy as np


class BlockDraws:
    """Block-buffered scalar draws from one :class:`numpy.random.Generator`.

    With ``high=None`` (default) values come from ``rng.random`` (uniform on
    [0, 1)); with a float bound they come from ``rng.uniform(0.0, high)``.
    Either way the sequence handed out by :meth:`next` is bit-identical to
    the equivalent per-call scalar draws, independent of ``block`` size.

    Because draws are buffered ahead of consumption, the generator must not
    be shared with any other consumer while a buffer is outstanding.
    """

    __slots__ = ("_rng", "high", "_block", "_buf", "_i")

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        high: Optional[float] = None,
        block: int = 64,
    ) -> None:
        if block <= 0:
            raise ValueError("block size must be positive")
        self._rng = rng
        #: upper draw bound, or None for unit uniform draws.  Consumers that
        #: need a specific bound check this before substituting a shared
        #: stream for per-call draws (see ``net.topology.FlowPort``).
        self.high = high
        self._block = block
        self._buf = rng.random(0)
        self._i = 0

    @classmethod
    def resume(
        cls,
        rng: np.random.Generator,
        buffered: np.ndarray,
        consumed: int,
        *,
        high: Optional[float] = None,
        block: int = 64,
    ) -> "BlockDraws":
        """Rebuild a stream from an outstanding buffer and its cursor.

        Hands a partially-consumed block (e.g. one :class:`DrawLanes` lane)
        to a fresh scalar stream: the remaining buffered values are served
        first, then refills continue from ``rng`` exactly where the donor
        stream left off.
        """
        stream = cls(rng, high=high, block=block)
        stream._buf = np.asarray(buffered, dtype=np.float64)
        stream._i = int(consumed)
        return stream

    def _fill(self) -> np.ndarray:
        if self.high is None:
            return self._rng.random(self._block)
        return self._rng.uniform(0.0, self.high, self._block)

    def next(self) -> float:
        """The next draw, refilling the buffer by one block when empty."""
        i = self._i
        buf = self._buf
        if i >= len(buf):
            self._buf = buf = self._fill()
            i = 0
        self._i = i + 1
        return buf.item(i)

    def take_buffered(self) -> Optional[float]:
        """The next *already-buffered* draw, or None when the buffer is dry.

        Lets a legacy scalar path drain an outstanding fast-path buffer
        (keeping the stream aligned after a mid-run toggle) without adopting
        block-ahead buffering itself.
        """
        if self._i < len(self._buf):
            value = self._buf.item(self._i)
            self._i += 1
            return value
        return None


class DrawLanes:
    """N independent block-buffered draw lanes with a vectorized gather.

    One lane per cell, each backed by its own generator: lane ``k``'s
    consumed sequence is bit-identical to ``BlockDraws(rngs[k])`` (and hence
    to per-call scalar draws from the same generator), which is what lets a
    batched kernel replay N scalar cells' decision streams in lockstep.

    :meth:`take` consumes one draw from every lane selected by a boolean
    mask; unselected lanes neither advance nor refill, and their slots in
    the returned array are unspecified -- callers must mask comparisons
    against the result with the same selection mask.
    """

    def __init__(
        self, rngs: Sequence[np.random.Generator], *, block: int = 256
    ) -> None:
        if block <= 0:
            raise ValueError("block size must be positive")
        self._rngs: List[np.random.Generator] = list(rngs)
        self._block = block
        n = len(self._rngs)
        self._buf = np.empty((n, block), dtype=np.float64)
        # Flat view of the same storage: lane k's cursor c lives at
        # k*block + c, so one 1-D fancy gather serves a whole take.
        self._flat = self._buf.reshape(-1)
        # Start every cursor at ``block`` so first use refills the lane.
        self._idx = np.full(n, block, dtype=np.int64)
        # Returned when no lane is selected; callers treat the result as
        # read-only, so one shared array serves every empty take.
        self._no_draws = np.ones(n, dtype=np.float64)
        self._no_draws.setflags(write=False)

    def __len__(self) -> int:
        return len(self._rngs)

    def export_lane(self, lane: int) -> BlockDraws:
        """Detach lane ``lane`` as a scalar :class:`BlockDraws` stream.

        The returned stream serves the lane's un-consumed buffered draws,
        then refills from the lane's generator -- the combined sequence is
        exactly the lane's remaining draw stream.  The lane must not be
        selected in any later :meth:`take`.
        """
        return BlockDraws.resume(
            self._rngs[lane],
            self._buf[lane].copy(),
            int(self._idx[lane]),
            block=self._block,
        )

    def take(self, need: np.ndarray) -> np.ndarray:
        """Consume one draw per lane where ``need`` is True.

        Returns a read-only-or-fresh float64 array of shape (N,): fresh
        draws in selected slots, unspecified values elsewhere.
        """
        lanes = np.nonzero(need)[0]
        if not len(lanes):
            return self._no_draws
        idx = self._idx
        block = self._block
        sel = idx[lanes]
        if (sel >= block).any():
            for lane in lanes[sel >= block]:
                self._buf[lane] = self._rngs[lane].random(block)
                idx[lane] = 0
            sel = idx[lanes]
        out = np.empty(len(need), dtype=np.float64)
        out[lanes] = self._flat[lanes * block + sel]
        idx[lanes] = sel + 1
        return out


class RngRegistry:
    """Factory for named, independently seeded random generators."""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same generator instance within a
        registry, so repeated calls share state (as a traffic source expects).
        """
        if name not in self._streams:
            # Derive a child seed from (seed, name) stably across runs and
            # platforms.  crc32 is stable, fast, and good enough for seeding
            # a PCG64 SeedSequence (which does its own avalanche mixing).
            name_digest = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(name_digest,))
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def fork(self, salt: int) -> "RngRegistry":
        """A registry seeded from (seed, salt), for per-run replication."""
        return RngRegistry(seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
