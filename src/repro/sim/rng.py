"""Named random streams for reproducible experiments.

Each subsystem (link loss, traffic generator, flow start times, ...) draws
from its own :class:`numpy.random.Generator`, derived deterministically from
the experiment seed and the stream name.  Adding a new consumer of randomness
therefore never perturbs the sequences seen by existing consumers, which is
essential when comparing runs across code revisions.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory for named, independently seeded random generators."""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same generator instance within a
        registry, so repeated calls share state (as a traffic source expects).
        """
        if name not in self._streams:
            # Derive a child seed from (seed, name) stably across runs and
            # platforms.  crc32 is stable, fast, and good enough for seeding
            # a PCG64 SeedSequence (which does its own avalanche mixing).
            name_digest = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(name_digest,))
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def fork(self, salt: int) -> "RngRegistry":
        """A registry seeded from (seed, salt), for per-run replication."""
        return RngRegistry(seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
