"""Heap-based discrete-event simulation engine.

The engine is the substrate equivalent of the ns-2 scheduler used in the
paper's evaluation.  Events are ``(time, priority, sequence, callback)``
tuples kept in a binary heap; the sequence number makes ordering total and
deterministic, so two runs with the same seeds produce identical traces.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid scheduler operations (e.g. scheduling in the past)."""


class Event:
    """A single scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be cancelled.
    Cancellation is lazy: the heap entry stays in place and is skipped when
    popped, which keeps cancellation O(1).
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} prio={self.priority} {state}>"


class Simulator:
    """Discrete-event simulator with a floating-point clock in seconds.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, callback, arg1, arg2)
        sim.run(until=30.0)

    The clock never moves backwards.  ``schedule`` takes an *absolute* time;
    ``schedule_in`` takes a delay relative to :attr:`now`.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        ``priority`` breaks ties among events at the same instant (lower runs
        first).  Raises :class:`SimulationError` if ``time`` precedes the
        current clock or is not finite.
        """
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule at non-finite time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.9f} before current time {self._now:.9f}"
            )
        event = Event(time, priority, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, callback, *args, priority=priority)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events in order until the heap drains, ``until`` is reached,
        or ``max_events`` have been processed.

        Returns the simulation time when the loop exits.  When ``until`` is
        given the clock is advanced to ``until`` even if the last event fired
        earlier, which makes back-to-back ``run`` calls well behaved.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.callback(*event.args)
                self.events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def reset(self) -> None:
        """Clear the event heap and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._heap.clear()
        self._now = 0.0
        self._seq = 0
        self._stopped = False
        self.events_processed = 0
