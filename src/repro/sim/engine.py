"""Heap-based discrete-event simulation engine.

The engine is the substrate equivalent of the ns-2 scheduler used in the
paper's evaluation.  Heap entries are ``(time, priority, seq, callback,
args, event)`` tuples; the sequence number makes ordering total and
deterministic, so two runs with the same seeds produce identical traces.

Tuples (rather than objects) are used as heap entries so that heap sifting
compares in C instead of calling a Python ``__lt__``.  Two scheduling paths
exist on top of that representation:

* :meth:`Simulator.schedule` allocates an :class:`Event` handle that can be
  cancelled later (lazily: the heap entry is skipped when popped).
* :meth:`Simulator.schedule_fast` / :meth:`Simulator.schedule_batch` push
  bare entries with no handle at all.  They cannot be cancelled, but they
  skip the ``Event`` allocation entirely, which is what the per-link
  transmit loop in :mod:`repro.net.link` rides on.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Iterable, List, Optional, Tuple

_EMPTY_ARGS: tuple = ()

#: Largest finite float: ``now <= t <= _FMAX`` is the in-range fast check
#: (NaN and +inf fail it, negative/backward times fail it), letting the hot
#: scheduling paths skip a ``math.isfinite`` call per event.
_FMAX = 1.7976931348623157e308


class SimulationError(RuntimeError):
    """Raised for invalid scheduler operations (e.g. scheduling in the past)."""


class Event:
    """A cancellable handle for one scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be cancelled.
    Cancellation is lazy: the heap entry stays in place and is skipped when
    popped, which keeps cancellation O(1).
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} prio={self.priority} {state}>"


#: One heap entry: (time, priority, seq, callback, args, event-or-None).
Entry = Tuple[float, int, int, Callable[..., None], tuple, Optional[Event]]


class Simulator:
    """Discrete-event simulator with a floating-point clock in seconds.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, callback, arg1, arg2)
        sim.run(until=30.0)

    The clock never moves backwards.  ``schedule`` takes an *absolute* time;
    ``schedule_in`` takes a delay relative to :attr:`now`.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Entry] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def _check_time(self, time: float) -> None:
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule at non-finite time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.9f} before current time {self._now:.9f}"
            )

    def schedule(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        ``priority`` breaks ties among events at the same instant (lower runs
        first).  Raises :class:`SimulationError` if ``time`` precedes the
        current clock or is not finite.  Returns a cancellable handle.
        """
        if not (self._now <= time <= _FMAX):
            self._check_time(time)
        event = Event(time, priority, self._seq, callback, args)
        heapq.heappush(
            self._heap, (time, priority, self._seq, callback, args, event)
        )
        self._seq += 1
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, callback, *args, priority=priority)

    def schedule_fast(
        self,
        time: float,
        callback: Callable[..., None],
        priority: int = 0,
        args: tuple = _EMPTY_ARGS,
    ) -> None:
        """Hot-path scheduling: no ``Event`` handle, not cancellable.

        ``callback(*args)`` runs at ``time``; with the default empty ``args``
        use a bound method or closure.  This is the cheapest way to get a
        wakeup and is what self-clocking loops (link transmit loops, delivery
        trains, :class:`~repro.sim.process.FastTimer`, access-segment packet
        handoffs) ride on.
        """
        if not (self._now <= time <= _FMAX):
            self._check_time(time)
        heapq.heappush(
            self._heap, (time, priority, self._seq, callback, args, None)
        )
        self._seq += 1

    def schedule_batch(
        self,
        items: Iterable[Tuple[float, Callable[..., None], tuple]],
        priority: int = 0,
    ) -> int:
        """Bulk-schedule ``(time, callback, args)`` triples; returns the count.

        All entries share ``priority``; ties within the batch keep the
        iteration order.  When the batch is at least as large as the pending
        heap the entries are appended and the heap rebuilt in O(n) instead
        of n heap-pushes, which is markedly faster for scenario setup
        (seeding thousands of flow start/arrival events at once).  No
        handles are returned, so batched entries cannot be cancelled.
        """
        staged: List[Entry] = []
        seq = self._seq
        for time, callback, args in items:
            self._check_time(time)
            staged.append((time, priority, seq, callback, args, None))
            seq += 1
        self._seq = seq
        if not staged:
            return 0
        if len(staged) >= len(self._heap):
            self._heap.extend(staged)
            heapq.heapify(self._heap)
        else:
            push = heapq.heappush
            heap = self._heap
            for entry in staged:
                push(heap, entry)
        return len(staged)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty."""
        while self._heap:
            event = self._heap[0][5]
            if event is not None and event.cancelled:
                heapq.heappop(self._heap)
                continue
            return self._heap[0][0]
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events in order until the heap drains, ``until`` is reached,
        or ``max_events`` have been processed.

        Returns the simulation time when the loop exits.  When ``until`` is
        given the clock is advanced to ``until`` even if the last event fired
        earlier, which makes back-to-back ``run`` calls well behaved.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        # Hoist the per-event None checks: with no bound, +inf horizons
        # and limits make the comparisons unconditionally false.
        horizon = math.inf if until is None else until
        limit = math.inf if max_events is None else max_events
        try:
            while heap and not self._stopped:
                entry = heap[0]
                if entry[0] > horizon:
                    break
                heappop(heap)
                event = entry[5]
                if event is not None and event.cancelled:
                    continue
                self._now = entry[0]
                entry[3](*entry[4])
                processed += 1
                if processed >= limit:
                    break
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(
            1 for entry in self._heap
            if entry[5] is None or not entry[5].cancelled
        )

    def reset(self) -> None:
        """Clear the event heap and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._heap.clear()
        self._now = 0.0
        self._seq = 0
        self._stopped = False
        self.events_processed = 0
