"""Structured tracing for simulations.

Protocol agents and queue monitors feed a shared :class:`Tracer`; the
analysis layer (time series, CoV, equivalence ratio) consumes the records
after the run.  Tracing is designed to be cheap enough to leave enabled.

Storage is **columnar** by default: one parallel list per field (time,
category, source, value) plus a sparse ``{index: meta}`` dict, so the hot
path appends four scalars instead of constructing a frozen dataclass per
occurrence.  :class:`TraceRecord`, iteration, and :meth:`Tracer.select`
survive as lazy views that materialize records only when the analysis layer
actually asks for them.  The legacy record-object storage is kept behind
``columnar=False`` for perf-trajectory baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: simulation time of the event.
        category: coarse event class, e.g. ``"send"``, ``"recv"``, ``"drop"``,
            ``"queue"``, ``"rate"``.
        source: name of the emitting component (flow or link name).
        value: numeric payload (bytes for send/recv, queue length for queue
            samples, rate for rate samples).
        meta: optional extra fields (sequence numbers, flags).
    """

    time: float
    category: str
    source: str
    value: float = 0.0
    meta: Optional[Dict[str, Any]] = None


class Tracer:
    """Append-only trace sink with simple filtered views.

    ``columnar=True`` (the default) stores parallel arrays and builds
    :class:`TraceRecord` objects lazily; ``columnar=False`` restores the
    PR-1 behaviour of storing one record object per occurrence.  Both modes
    produce identical records from ``__iter__``/``select``/``sources``.
    """

    def __init__(self, enabled: bool = True, columnar: bool = True) -> None:
        self.enabled = enabled
        self.columnar = columnar
        self._times: List[float] = []
        self._categories: List[str] = []
        self._sources: List[str] = []
        self._values: List[float] = []
        self._meta: Dict[int, Dict[str, Any]] = {}
        self._records: List[TraceRecord] = []  # legacy storage
        self._hooks: List[Callable[[TraceRecord], None]] = []

    def record(
        self,
        time: float,
        category: str,
        source: str,
        value: float = 0.0,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one record (no-op, and allocation-free, when disabled)."""
        if not self.enabled:
            return
        if self.columnar:
            times = self._times
            if meta is not None:
                self._meta[len(times)] = meta
            times.append(time)
            self._categories.append(category)
            self._sources.append(source)
            self._values.append(value)
            if self._hooks:
                rec = TraceRecord(time, category, source, value, meta)
                for hook in self._hooks:
                    hook(rec)
            return
        # Legacy path: a record object is stored either way, but hooks are
        # still consulted only after it exists (they receive the stored one).
        rec = TraceRecord(time, category, source, value, meta)
        self._records.append(rec)
        for hook in self._hooks:
            hook(rec)

    def add_hook(self, hook: Callable[[TraceRecord], None]) -> None:
        """Register a live observer invoked for every record.

        With columnar storage, record objects are constructed *only* while
        at least one hook is registered; hook-free runs never allocate them.
        """
        self._hooks.append(hook)

    def __len__(self) -> int:
        return len(self._times) if self.columnar else len(self._records)

    def _build(self, index: int) -> TraceRecord:
        return TraceRecord(
            self._times[index],
            self._categories[index],
            self._sources[index],
            self._values[index],
            self._meta.get(index),
        )

    def __iter__(self) -> Iterator[TraceRecord]:
        if not self.columnar:
            return iter(self._records)
        return (self._build(i) for i in range(len(self._times)))

    def select(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Records matching all provided filters, in time order."""
        if not self.columnar:
            out = []
            for rec in self._records:
                if category is not None and rec.category != category:
                    continue
                if source is not None and rec.source != source:
                    continue
                if t_min is not None and rec.time < t_min:
                    continue
                if t_max is not None and rec.time > t_max:
                    continue
                out.append(rec)
            return out
        build = self._build
        return [
            build(i)
            for i in self._match_indices(category, source, t_min, t_max)
        ]

    def _match_indices(
        self,
        category: Optional[str],
        source: Optional[str],
        t_min: Optional[float],
        t_max: Optional[float],
    ) -> Iterator[int]:
        times = self._times
        categories = self._categories
        sources = self._sources
        for i in range(len(times)):
            if category is not None and categories[i] != category:
                continue
            if source is not None and sources[i] != source:
                continue
            t = times[i]
            if t_min is not None and t < t_min:
                continue
            if t_max is not None and t > t_max:
                continue
            yield i

    def series(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
    ) -> "tuple[List[float], List[float]]":
        """Matching ``(times, values)`` columns without building records.

        The columnar analogue of :meth:`select` for numeric analysis; in
        legacy mode it is derived from the stored records.
        """
        if not self.columnar:
            picked = self.select(category, source, t_min, t_max)
            return [r.time for r in picked], [r.value for r in picked]
        times: List[float] = []
        values: List[float] = []
        all_times = self._times
        all_values = self._values
        for i in self._match_indices(category, source, t_min, t_max):
            times.append(all_times[i])
            values.append(all_values[i])
        return times, values

    def sources(self, category: Optional[str] = None) -> List[str]:
        """Sorted unique source names (optionally within one category)."""
        if not self.columnar:
            names = {
                rec.source
                for rec in self._records
                if category is None or rec.category == category
            }
            return sorted(names)
        if category is None:
            return sorted(set(self._sources))
        categories = self._categories
        src = self._sources
        return sorted(
            {src[i] for i in range(len(src)) if categories[i] == category}
        )

    def clear(self) -> None:
        self._times.clear()
        self._categories.clear()
        self._sources.clear()
        self._values.clear()
        self._meta.clear()
        self._records.clear()
