"""Structured tracing for simulations.

Protocol agents and queue monitors append :class:`TraceRecord` entries to a
shared :class:`Tracer`.  The analysis layer (time series, CoV, equivalence
ratio) consumes these records after the run.  Tracing is designed to be cheap
enough to leave enabled: appending a small tuple-like object to a list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: simulation time of the event.
        category: coarse event class, e.g. ``"send"``, ``"recv"``, ``"drop"``,
            ``"queue"``, ``"rate"``.
        source: name of the emitting component (flow or link name).
        value: numeric payload (bytes for send/recv, queue length for queue
            samples, rate for rate samples).
        meta: optional extra fields (sequence numbers, flags).
    """

    time: float
    category: str
    source: str
    value: float = 0.0
    meta: Optional[Dict[str, Any]] = None


class Tracer:
    """Append-only trace sink with simple filtered views."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._hooks: List[Callable[[TraceRecord], None]] = []

    def record(
        self,
        time: float,
        category: str,
        source: str,
        value: float = 0.0,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one record (no-op when disabled)."""
        if not self.enabled:
            return
        rec = TraceRecord(time, category, source, value, meta)
        self._records.append(rec)
        for hook in self._hooks:
            hook(rec)

    def add_hook(self, hook: Callable[[TraceRecord], None]) -> None:
        """Register a live observer invoked for every record."""
        self._hooks.append(hook)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def select(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Records matching all provided filters, in time order."""
        out = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if source is not None and rec.source != source:
                continue
            if t_min is not None and rec.time < t_min:
                continue
            if t_max is not None and rec.time > t_max:
                continue
            out.append(rec)
        return out

    def sources(self, category: Optional[str] = None) -> List[str]:
        """Sorted unique source names (optionally within one category)."""
        names = {
            rec.source
            for rec in self._records
            if category is None or rec.category == category
        }
        return sorted(names)

    def clear(self) -> None:
        self._records.clear()
