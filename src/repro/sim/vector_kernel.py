"""Batched TFRC cell kernel: advance N independent cells in lockstep.

A figure sweep is a grid of *independent* same-topology cells differing
only in a few scalars (loss rate, RTT, seed).  The packet-level engine pays
full Python event-loop overhead once per cell; this module instead models
one equation-based TFRC flow per cell -- the paper's control loop (Equation
(1) rate control, Average Loss Interval estimation with history
discounting, slow-start exit seeding via the inverted response function,
feedback/no-feedback timers) over a fluid bottleneck with RED or DropTail
admission -- and advances all N cells one packet per step with numpy
structure-of-arrays state:

* per-cell timers as parallel ``(deadline, generation)`` arrays
  (:class:`TimerLanes`, the :class:`~repro.sim.process.FastTimer` idiom
  across cells);
* send-rate / RTT / loss-estimator state as float64 vectors, the WALI
  interval history as an (N, 8) matrix;
* RED average-queue and uniformization-counter vectors driven by the
  shared decision math in :mod:`repro.net.redmath`;
* block-buffered per-cell RNG lanes (:class:`~repro.sim.rng.DrawLanes`)
  seeded from the same deterministic per-cell derivation the scalar path
  uses.

Two implementations share one semantics:

* :func:`run_cell_scalar` -- the readable per-cell reference, built on the
  repo's canonical pieces (:class:`~repro.core.loss_intervals.\
AverageLossIntervals`, :func:`~repro.core.equations.tcp_response_rate`,
  :func:`~repro.core.equations.invert_response`, the scalar RED helpers).
* :func:`run_cells_vector` -- the lockstep batch kernel.

Results are **bit-identical**: every float is produced by the same IEEE-754
double operations in the same per-cell order.  Only ``+ - * /`` and
``sqrt`` appear (both ``math.sqrt`` and ``np.sqrt`` are correctly
rounded); masked numpy updates evaluate untaken branches and discard them,
which cannot perturb the selected values; zero-weight columns added while
reducing the fixed-width WALI matrix add exact ``0.0`` terms; and numpy
array fills consume the same RNG bit stream as repeated scalar draws.  The
equivalence is property-fuzzed in ``tests/test_vector_kernel.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.equations import (
    invert_response,
    invert_response_vec,
    tcp_response_rate,
    tcp_response_rate_vec,
)
from repro.core.loss_intervals import ALI_DEFAULT_WEIGHTS, AverageLossIntervals
from repro.net.redmath import (
    RedParams,
    red_drop_probability,
    red_drop_probability_vec,
    red_ewma,
    red_ewma_vec,
    red_uniformized,
    red_uniformized_vec,
)
from repro.sim.rng import BlockDraws, DrawLanes, RngRegistry

#: minimum sending rate: one packet per ``t_mbi`` = 64 s (the paper's
#: maximum backoff interval for halving under persistent congestion).
X_FLOOR_PPS = 1.0 / 64.0

#: name of the per-cell RNG stream (derived from the cell seed via the
#: standard :class:`~repro.sim.rng.RngRegistry` name derivation).
CELL_STREAM = "equation-cell"

#: WALI history depth (paper section 3.3, n = 8).
WALI_N = 8

#: block size for the per-cell draw lanes; affects only refill cadence,
#: never values (array fills consume the same bit stream as scalar draws).
DRAW_BLOCK = 256

#: hand the remaining lanes to the scalar loop once fewer than 1/8 of the
#: batch is still active: a lockstep step costs nearly the same however few
#: lanes remain (numpy dispatch dominates), so thin tails are cheaper to
#: finish cell-by-cell.  Purely a performance knob -- results are identical.
TAIL_DIVISOR = 8


@dataclass(frozen=True)
class GridCellParams:
    """Fully-resolved primitives for one equation-grid cell.

    ``rtt``, ``loss_rate`` and ``seed`` are the per-cell axes a batch may
    vary; everything else must be shared across a lockstep batch.
    """

    rtt: float
    loss_rate: float
    seed: int
    duration: float
    bandwidth_bps: float
    packet_size: int
    queue_type: str  # "red" | "droptail"
    buffer_packets: int
    red: Optional[RedParams]
    measure_fraction: float = 2.0 / 3.0
    discounting: bool = True
    trace: bool = False  # scalar-only rate trace (unsupported by the batch kernel)

    def __post_init__(self) -> None:
        if self.rtt <= 0:
            raise ValueError("rtt must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if self.packet_size <= 0:
            raise ValueError("packet_size must be positive")
        if self.buffer_packets <= 0:
            raise ValueError("buffer_packets must be positive")
        if self.queue_type not in ("red", "droptail"):
            raise ValueError(f"unknown queue type {self.queue_type!r}")
        if self.queue_type == "red" and self.red is None:
            raise ValueError("queue_type 'red' requires RedParams")
        if not 0.0 < self.measure_fraction <= 1.0:
            raise ValueError("measure_fraction must be in (0, 1]")

    # Derived scalars.  Defined once so both kernels evaluate the exact
    # same float expressions.

    def capacity_pps(self) -> float:
        """Bottleneck service rate in packets/second."""
        return self.bandwidth_bps / (self.packet_size * 8.0)

    def t_rto(self) -> float:
        """Retransmit-timeout heuristic ``4 * rtt`` (paper section 3.2.1)."""
        return 4.0 * self.rtt

    def measure_start(self) -> float:
        """Start of the measurement window (warm-up excluded)."""
        return self.duration * (1.0 - self.measure_fraction)


#: per-cell axes a lockstep batch may vary; all other params must match.
BATCH_AXES = ("rtt", "loss_rate", "seed")


def batchable(cells: Sequence[GridCellParams]) -> bool:
    """True when ``cells`` may run as one lockstep batch."""
    if not cells:
        return False
    first = cells[0]
    for cell in cells[1:]:
        for name in GridCellParams.__dataclass_fields__:
            if name in BATCH_AXES:
                continue
            if getattr(cell, name) != getattr(first, name):
                return False
    return True


def _cell_stream(seed: int) -> np.random.Generator:
    return RngRegistry(seed).stream(CELL_STREAM)


class TimerLanes:
    """Per-cell single-shot timers as (deadline, generation) arrays.

    The vector form of the :class:`~repro.sim.process.FastTimer` idiom:
    re-arming bumps the generation instead of cancelling.  Generations are
    pure bookkeeping here (there is no shared heap to leave stale entries
    in), but they are reported in results as an equivalence witness that
    the scalar and vector kernels armed every timer in lockstep.
    """

    __slots__ = ("deadline", "generation")

    def __init__(self, deadlines: np.ndarray) -> None:
        self.deadline = np.asarray(deadlines, dtype=np.float64).copy()
        self.generation = np.ones(len(self.deadline), dtype=np.int64)

    def rearm(self, mask: np.ndarray, at: np.ndarray) -> None:
        """Re-arm lanes selected by ``mask`` to absolute deadlines ``at``."""
        np.copyto(self.deadline, at, where=mask)
        self.generation += mask

    def rearm_rows(self, rows: np.ndarray, at: np.ndarray) -> None:
        """Re-arm the lanes at integer indices ``rows`` (row-subset form)."""
        self.deadline[rows] = at
        self.generation[rows] += 1


# --------------------------------------------------------------------------
# Scalar reference kernel
# --------------------------------------------------------------------------


@dataclass
class _CellState:
    """Mutable mid-run snapshot of one cell (the scalar loop's variables).

    The batch kernel hands thin-tail lanes to the scalar loop through this
    struct: both kernels' loops are functions of (params, state, draws,
    estimator) only, which is what makes the handoff bit-exact.
    """

    x: float
    fb_deadline: float
    nf_deadline: float
    slow_start: bool = True
    t_next: float = 0.0
    delivered_since_fb: int = 0
    loss_event_end: float = 0.0
    fb_gen: int = 1
    nf_gen: int = 1
    backlog: float = 0.0
    last_drain: float = 0.0
    red_avg: float = 0.0
    red_count: int = -1
    sent: int = 0
    delivered: int = 0
    delivered_measured: int = 0
    path_drops: int = 0
    forced_drops: int = 0
    early_drops: int = 0
    n_samples: int = 0
    sum_x: float = 0.0
    sum_x2: float = 0.0


def run_cell_scalar(params: GridCellParams) -> Dict[str, Any]:
    """Run one equation-grid cell with plain scalar state (the reference)."""
    rtt = params.rtt
    x0 = 1.0 / rtt  # initial rate: one packet per RTT (paper section 3.2.2)
    st = _CellState(
        x=x0,
        # Timers: feedback every RTT; no-feedback at max(4R, 2 packet times).
        fb_deadline=rtt,
        nf_deadline=max(4.0 * rtt, 2.0 / x0),
    )
    draws = BlockDraws(_cell_stream(params.seed), block=DRAW_BLOCK)
    est = AverageLossIntervals(n=WALI_N, discounting=params.discounting)
    trace: Optional[List[List[float]]] = [] if params.trace else None
    _advance_cell(params, st, draws, est, trace)
    return _result_from_state(params, st, est, trace)


def _advance_cell(
    params: GridCellParams,
    st: _CellState,
    draws: BlockDraws,
    est: AverageLossIntervals,
    trace: Optional[List[List[float]]],
) -> None:
    """Advance one cell from ``st`` until its duration elapses (in place).

    The state round-trips through locals so the hot loop runs at full
    speed; ``st`` is written back before returning.
    """
    rtt = params.rtt
    p_loss = params.loss_rate
    duration = params.duration
    s_bytes = float(params.packet_size)
    cap_pps = params.capacity_pps()
    t_rto = params.t_rto()
    t0 = params.measure_start()
    buffer_pkts = float(params.buffer_packets)
    red = params.red
    is_red = params.queue_type == "red"
    record_trace = trace is not None

    x = st.x
    slow_start = st.slow_start
    t_next = st.t_next
    delivered_since_fb = st.delivered_since_fb
    loss_event_end = st.loss_event_end
    fb_deadline = st.fb_deadline
    fb_gen = st.fb_gen
    nf_deadline = st.nf_deadline
    nf_gen = st.nf_gen
    backlog = st.backlog
    last_drain = st.last_drain
    red_avg = st.red_avg
    red_count = st.red_count
    sent = st.sent
    delivered = st.delivered
    delivered_measured = st.delivered_measured
    path_drops = st.path_drops
    forced_drops = st.forced_drops
    early_drops = st.early_drops
    n_samples = st.n_samples
    sum_x = st.sum_x
    sum_x2 = st.sum_x2

    while t_next < duration:
        # --- timers due before this send fire first, in deadline order
        # (feedback wins ties, matching the vector kernel's priority).
        while True:
            fb_due = fb_deadline <= t_next
            nf_due = nf_deadline <= t_next
            if not (fb_due or nf_due):
                break
            if fb_due and (not nf_due or fb_deadline <= nf_deadline):
                at = fb_deadline
                fb_deadline = fb_deadline + rtt  # drift-free periodic re-arm
                fb_gen += 1
                if delivered_since_fb > 0:
                    # The receiver report itself crosses the lossy path.
                    fb_lost = p_loss > 0.0 and draws.next() < p_loss
                    if not fb_lost:
                        recv_pps = delivered_since_fb / rtt
                        if slow_start:
                            # Slow start: double, capped at twice the rate
                            # the receiver actually saw (section 3.2.3).
                            x = min(2.0 * x, 2.0 * recv_pps)
                        else:
                            p_est = est.loss_event_rate()
                            x_eq = (
                                tcp_response_rate(params.packet_size, rtt, p_est, t_rto)
                                / s_bytes
                            )
                            x = min(x_eq, 2.0 * recv_pps)
                        if x < X_FLOOR_PPS:
                            x = X_FLOOR_PPS
                        delivered_since_fb = 0
                        nf_deadline = at + max(4.0 * rtt, 2.0 / x)
                        nf_gen += 1
                        if at >= t0:
                            n_samples += 1
                            sum_x = sum_x + x
                            sum_x2 = sum_x2 + x * x
                        if record_trace:
                            trace.append([at, x])
            else:
                # No-feedback timer: halve the rate (section 3.2.4).
                at = nf_deadline
                x = x * 0.5
                if x < X_FLOOR_PPS:
                    x = X_FLOOR_PPS
                nf_deadline = at + max(4.0 * rtt, 2.0 / x)
                nf_gen += 1

        # --- send one packet at t_next
        sent += 1
        lost_path = p_loss > 0.0 and draws.next() < p_loss
        lost = False
        if lost_path:
            path_drops += 1
            lost = True
        else:
            # Fluid bottleneck: drain since the last arrival, then admit.
            drained = backlog - (t_next - last_drain) * cap_pps
            backlog = drained if drained > 0.0 else 0.0
            last_drain = t_next
            if is_red:
                assert red is not None
                red_avg = red_ewma(red.weight, red_avg, backlog)
                if backlog >= buffer_pkts:
                    forced_drops += 1
                    red_count = 0
                    lost = True
                else:
                    p_b = red_drop_probability(red, red_avg)
                    if p_b >= 1.0:
                        forced_drops += 1
                        red_count = 0
                        lost = True
                    elif p_b > 0.0:
                        red_count += 1
                        p_a = red_uniformized(p_b, red_count)
                        if draws.next() < p_a:
                            red_count = 0
                            early_drops += 1
                            lost = True
                    else:
                        red_count = -1
            else:
                if backlog >= buffer_pkts:
                    forced_drops += 1
                    lost = True
            if not lost:
                backlog = backlog + 1.0
                delivered += 1
                delivered_since_fb += 1
                if t_next >= t0:
                    delivered_measured += 1
                est.on_packet(1.0)

        # --- loss events: drops within one RTT of the event start belong
        # to the same event (paper section 3.2.1).
        if lost and t_next >= loss_event_end:
            loss_event_end = t_next + rtt
            if slow_start:
                # Slow-start exit (section 3.4.1): halve the rate and seed
                # the history with the interval the equation maps to it.
                slow_start = False
                x = x * 0.5
                p_seed = invert_response(params.packet_size, rtt, x * s_bytes, t_rto)
                est.seed(1.0 / p_seed)
                if x < X_FLOOR_PPS:
                    x = X_FLOOR_PPS
            else:
                est.on_loss_event()

        t_next = t_next + 1.0 / x

    st.x = x
    st.slow_start = slow_start
    st.t_next = t_next
    st.delivered_since_fb = delivered_since_fb
    st.loss_event_end = loss_event_end
    st.fb_deadline = fb_deadline
    st.fb_gen = fb_gen
    st.nf_deadline = nf_deadline
    st.nf_gen = nf_gen
    st.backlog = backlog
    st.last_drain = last_drain
    st.red_avg = red_avg
    st.red_count = red_count
    st.sent = sent
    st.delivered = delivered
    st.delivered_measured = delivered_measured
    st.path_drops = path_drops
    st.forced_drops = forced_drops
    st.early_drops = early_drops
    st.n_samples = n_samples
    st.sum_x = sum_x
    st.sum_x2 = sum_x2


def _result_from_state(
    params: GridCellParams,
    st: _CellState,
    est: AverageLossIntervals,
    trace: Optional[List[List[float]]],
) -> Dict[str, Any]:
    return _build_result(
        params,
        sent=st.sent,
        delivered=st.delivered,
        delivered_measured=st.delivered_measured,
        path_drops=st.path_drops,
        forced_drops=st.forced_drops,
        early_drops=st.early_drops,
        loss_events=est.loss_events,
        loss_event_rate=est.loss_event_rate(),
        avg_loss_interval=est.average_interval(),
        x_final=st.x,
        backlog=st.backlog,
        red_avg=st.red_avg,
        slow_start=st.slow_start,
        n_samples=st.n_samples,
        sum_x=st.sum_x,
        sum_x2=st.sum_x2,
        fb_gen=st.fb_gen,
        nf_gen=st.nf_gen,
        trace=trace,
    )


def _build_result(
    params: GridCellParams,
    *,
    sent: int,
    delivered: int,
    delivered_measured: int,
    path_drops: int,
    forced_drops: int,
    early_drops: int,
    loss_events: int,
    loss_event_rate: float,
    avg_loss_interval: float,
    x_final: float,
    backlog: float,
    red_avg: float,
    slow_start: bool,
    n_samples: int,
    sum_x: float,
    sum_x2: float,
    fb_gen: int,
    nf_gen: int,
    trace: Optional[List[List[float]]],
) -> Dict[str, Any]:
    """Assemble the result dict from raw accumulators.

    Shared by both kernels so the derived metrics (throughput, mean/CoV of
    the sampled send rate) are computed by one code path.
    """
    measure_seconds = params.duration - params.measure_start()
    throughput_bps = (
        delivered_measured * params.packet_size * 8.0 / measure_seconds
    )
    if n_samples > 0:
        mean = sum_x / n_samples
        var = sum_x2 / n_samples - mean * mean
        if var < 0.0:
            var = 0.0
        cov = math.sqrt(var) / mean if mean > 0.0 else 0.0
    else:
        mean = 0.0
        cov = 0.0
    result: Dict[str, Any] = {
        "sent": int(sent),
        "delivered": int(delivered),
        "path_drops": int(path_drops),
        "queue_forced_drops": int(forced_drops),
        "queue_early_drops": int(early_drops),
        "loss_events": int(loss_events),
        "loss_event_rate": float(loss_event_rate),
        "avg_loss_interval": float(avg_loss_interval),
        "throughput_bps": float(throughput_bps),
        "send_rate_mean_pps": float(mean),
        "send_rate_cov": float(cov),
        "x_final_pps": float(x_final),
        "queue_backlog_final": float(backlog),
        "red_avg_final": float(red_avg),
        "slow_start_exited": bool(not slow_start),
        "timer_generations": {"feedback": int(fb_gen), "no_feedback": int(nf_gen)},
    }
    if trace is not None:
        result["rate_trace"] = [[float(t), float(x)] for t, x in trace]
    return result


# --------------------------------------------------------------------------
# Vectorized WALI (Average Loss Interval) state
# --------------------------------------------------------------------------


class _WaliLanes:
    """Average Loss Interval state for N cells as (N, 8) matrices.

    Mirrors :class:`~repro.core.loss_intervals.AverageLossIntervals`
    operation for operation: reductions walk the 8 weight columns in the
    same left-fold order the scalar zip does, with absent columns (zero
    discount, zero interval) contributing exact ``0.0`` terms, so every
    average is bit-identical to the scalar estimator at the same state.
    Products keep the scalar's ``(weight * discount) * value`` association
    (float multiplication commutes but does not associate).

    Division-by-zero artifacts in masked-out lanes are discarded by
    ``np.where``; callers are expected to run under ``np.errstate`` (the
    batch kernel wraps its whole loop in one).
    """

    def __init__(self, n_cells: int, *, discounting: bool, discount_floor: float = 0.3):
        self.discounting = discounting
        self.discount_floor = discount_floor
        self.weights = list(ALI_DEFAULT_WEIGHTS)
        self.intervals = np.zeros((n_cells, WALI_N), dtype=np.float64)
        self.discounts = np.zeros((n_cells, WALI_N), dtype=np.float64)
        self.count = np.zeros(n_cells, dtype=np.int64)
        self.s0 = np.zeros(n_cells, dtype=np.float64)
        self.loss_events = np.zeros(n_cells, dtype=np.int64)
        self._cols = np.arange(WALI_N)
        self._w_row = np.asarray(self.weights, dtype=np.float64)[None, :]
        self._w_shift = np.asarray(self.weights[1:], dtype=np.float64)[None, :]
        self._w0 = float(self.weights[0])
        # 1.0 where the column holds a real (closed) interval; maintained on
        # count changes so the discount computation never rebuilds it.
        self._present = np.zeros((n_cells, WALI_N), dtype=np.float64)
        self._first_present = np.zeros(WALI_N, dtype=np.float64)
        self._first_present[0] = 1.0
        # Cached raw (undiscounted) average over present intervals -- the
        # discount base.  It only depends on the closed-interval history, so
        # it is refreshed on history shifts instead of on every query.
        self._raw = np.zeros(n_cells, dtype=np.float64)

    # tfrc-audit: twin-of repro.core.loss_intervals.wali_fold_average
    @staticmethod
    def _fold_average(weighted: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Left-fold ``sum(w*v) / sum(w)`` over the 8 columns.

        ``weighted`` holds the per-column ``weight * discount`` products;
        the fold order matches the scalar accumulation exactly.
        """
        terms = weighted * values
        total = terms[:, 0] + terms[:, 1]
        total_weight = weighted[:, 0] + weighted[:, 1]
        for j in range(2, WALI_N):
            total += terms[:, j]
            total_weight += weighted[:, j]
        return np.where(total_weight == 0.0, 0.0, total / total_weight)

    def _discount_for(self, raw: np.ndarray, s0: np.ndarray) -> np.ndarray:
        # ``raw``: the cached undiscounted average for the lanes in question.
        return np.where(
            (raw <= 0.0) | (s0 <= 2.0 * raw),
            1.0,
            np.maximum(self.discount_floor, 2.0 * raw / s0),
        )

    def on_packet(self, mask: np.ndarray) -> None:
        np.add(self.s0, 1.0, out=self.s0, where=mask)

    def on_loss_event_rows(self, rows: np.ndarray) -> None:
        """Close the open interval for the lanes at integer indices ``rows``.

        Works on gathered (k, 8) row copies and scatters the shifted rows
        back: per-step loss events touch a handful of lanes, so this costs
        O(k) instead of O(N) per event.
        """
        intervals = self.intervals[rows]
        discounts = self.discounts[rows]
        s0 = self.s0[rows]
        if self.discounting:
            raw = self._raw[rows]
            # A discount < 1 requires s0 > 2*raw somewhere (lanes with
            # raw <= 0 always discount by exactly 1.0), so skip the whole
            # computation when no lane is in a lull.
            if (s0 > 2.0 * raw).any():
                discount = self._discount_for(raw, s0)
                fold = discount < 1.0
                if fold.any():
                    discounts = np.where(
                        fold[:, None], discounts * discount[:, None], discounts
                    )
        shifted = np.empty_like(intervals)
        shifted[:, 0] = np.maximum(s0, 1.0)
        shifted[:, 1:] = intervals[:, :-1]
        self.intervals[rows] = shifted
        self.discounts[rows, 1:] = discounts[:, :-1]
        self.discounts[rows, 0] = 1.0
        count = np.minimum(self.count[rows] + 1, WALI_N)
        self.count[rows] = count
        self.s0[rows] = 0.0
        self.loss_events[rows] += 1
        present = self._cols[None, :] < count[:, None]
        self._present[rows] = present
        self._raw[rows] = self._fold_average(self._w_row * present, shifted)

    def seed_rows(self, rows: np.ndarray, interval: np.ndarray) -> None:
        """Replace history with one synthetic interval (slow-start exit)."""
        self.intervals[rows] = 0.0
        self.intervals[rows, 0] = interval
        self.discounts[rows] = 0.0
        self.discounts[rows, 0] = 1.0
        self.count[rows] = 1
        self.s0[rows] = 0.0
        self.loss_events[rows] += 1
        self._present[rows] = self._first_present
        # Closed form of the one-entry fold: (w0 * interval) / w0 -- the
        # zero-weight columns contribute exact 0.0 terms, so this equals
        # the full fold bit-for-bit.
        self._raw[rows] = (self._w0 * interval) / self._w0

    def average_interval(self, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """WALI average for all lanes, or just the lanes in ``rows``."""
        if rows is None:
            intervals = self.intervals
            discounts = self.discounts
            s0 = self.s0
            count = self.count
            raw = self._raw
        else:
            intervals = self.intervals[rows]
            discounts = self.discounts[rows]
            s0 = self.s0[rows]
            count = self.count[rows]
            raw = self._raw[rows]
        if self.discounting and (s0 > 2.0 * raw).any():
            discount = self._discount_for(raw, s0)
            if (discount < 1.0).any():
                # Multiplying by an exact 1.0 is the identity, so applying
                # the discount only when some lane's is < 1 is bit-exact.
                discounts = discounts * discount[:, None]
        # One stacked fold computes s_hat (top half) and s_hat_new (bottom
        # half, with s0 shifted in at the front under discount 1.0 -- column
        # j >= 1 of the shifted history is column j-1 of the current one,
        # re-weighted).  Rows fold independently, so stacking halves the
        # dispatch count without touching any lane's accumulation order.
        k = len(s0)
        weighted = np.empty((2 * k, WALI_N), dtype=np.float64)
        values = np.empty((2 * k, WALI_N), dtype=np.float64)
        weighted[:k] = self._w_row * discounts
        values[:k] = intervals
        weighted[k:, 0] = self._w0
        weighted[k:, 1:] = self._w_shift * discounts[:, :-1]
        values[k:, 0] = s0
        values[k:, 1:] = intervals[:, :-1]
        both = self._fold_average(weighted, values)
        return np.where(count > 0, np.maximum(both[:k], both[k:]), 0.0)

    def loss_event_rate(self, rows: Optional[np.ndarray] = None) -> np.ndarray:
        avg = self.average_interval(rows)
        rate = np.minimum(1.0, 1.0 / avg)
        return np.where(avg > 0.0, rate, 0.0)

    def export_lane(self, lane: int) -> AverageLossIntervals:
        """Detach one lane as a scalar estimator (for the tail handoff)."""
        count = int(self.count[lane])
        return AverageLossIntervals.from_state(
            self.intervals[lane, :count].tolist(),
            self.discounts[lane, :count].tolist(),
            float(self.s0[lane]),
            int(self.loss_events[lane]),
            n=WALI_N,
            discounting=self.discounting,
            discount_floor=self.discount_floor,
        )


# --------------------------------------------------------------------------
# Lockstep batch kernel
# --------------------------------------------------------------------------

#: Twin registrations beyond static trace scope: the batch kernel is a whole
#: simulation loop, so its congruence with the scalar reference is enforced
#: at runtime (grid-equivalence fuzz in tests/test_vector_kernel.py) while
#: the audit's twin body lints still police it for pairwise reductions,
#: dtype drift, and off-blessed ops.
TWINS = {
    "run_cells_vector": ("repro.sim.vector_kernel.run_cell_scalar", "runtime"),
}


def run_cells_vector(cells: Sequence[GridCellParams]) -> List[Dict[str, Any]]:
    """Advance N compatible cells in lockstep; one packet per cell per step.

    Cells must agree on everything except ``rtt``, ``loss_rate`` and
    ``seed`` (checked).  Returns one result dict per cell, bit-identical
    to :func:`run_cell_scalar` on the same params.
    """
    if not cells:
        return []
    if not batchable(cells):
        raise ValueError(
            "cells differ in a non-batch axis; only "
            f"{BATCH_AXES} may vary within a lockstep batch"
        )
    shared = cells[0]
    if shared.trace:
        raise ValueError("rate tracing requires the scalar kernel")
    n = len(cells)
    packet_size = shared.packet_size
    s_bytes = float(packet_size)
    duration = shared.duration
    t0 = shared.measure_start()
    buffer_pkts = float(shared.buffer_packets)
    is_red = shared.queue_type == "red"
    red = shared.red

    rtt = np.array([c.rtt for c in cells], dtype=np.float64)
    p_loss = np.array([c.loss_rate for c in cells], dtype=np.float64)
    cap_pps = np.array([c.capacity_pps() for c in cells], dtype=np.float64)
    t_rto = np.array([c.t_rto() for c in cells], dtype=np.float64)
    has_loss = p_loss > 0.0
    # With loss on every path (the common sweep grid) the has_loss masks
    # collapse to identities; hoist the check out of the loop.
    all_lossy = bool(has_loss.all())

    lanes = DrawLanes([_cell_stream(c.seed) for c in cells], block=DRAW_BLOCK)
    wali = _WaliLanes(n, discounting=shared.discounting)

    x = 1.0 / rtt
    slow_start = np.ones(n, dtype=bool)
    t_next = np.zeros(n, dtype=np.float64)
    delivered_since_fb = np.zeros(n, dtype=np.int64)
    loss_event_end = np.zeros(n, dtype=np.float64)
    fb = TimerLanes(rtt)
    nf = TimerLanes(np.maximum(4.0 * rtt, 2.0 / x))
    backlog = np.zeros(n, dtype=np.float64)
    last_drain = np.zeros(n, dtype=np.float64)
    red_avg = np.zeros(n, dtype=np.float64)
    red_count = np.full(n, -1, dtype=np.int64)
    sent = np.zeros(n, dtype=np.int64)
    delivered = np.zeros(n, dtype=np.int64)
    delivered_measured = np.zeros(n, dtype=np.int64)
    path_drops = np.zeros(n, dtype=np.int64)
    forced_drops = np.zeros(n, dtype=np.int64)
    early_drops = np.zeros(n, dtype=np.int64)
    n_samples = np.zeros(n, dtype=np.int64)
    sum_x = np.zeros(n, dtype=np.float64)
    sum_x2 = np.zeros(n, dtype=np.float64)

    # One scratch vector for transient products; every use is consumed by a
    # masked copy/add before the next use.  The whole loop runs under one
    # errstate: masked-out lanes produce inf/nan that np.where / masked
    # assignment discards, and per-call errstate guards are too costly here.
    scratch = np.empty(n, dtype=np.float64)

    active = t_next < duration
    # tfrc-audit: ignore[twin.forbidden-op] -- integer lane bookkeeping, not cell arithmetic
    tail_threshold = n // TAIL_DIVISOR
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        while True:
            n_active = int(np.count_nonzero(active))
            if n_active <= tail_threshold:
                break
            # --- timer phase: fire the earliest due timer per cell, repeat.
            while True:
                fb_due = active & (fb.deadline <= t_next)
                nf_due = active & (nf.deadline <= t_next)
                any_due = fb_due | nf_due
                if not any_due.any():
                    break
                take_fb = fb_due & (~nf_due | (fb.deadline <= nf.deadline))
                # take_fb is a subset of any_due, so xor is set difference.
                take_nf = any_due ^ take_fb

                # Timer firings touch a handful of lanes per step, so both
                # branches gather those rows, update k-vectors, and scatter
                # back -- same float ops on the same values, O(k) not O(N).
                if take_nf.any():
                    rows = np.nonzero(take_nf)[0]
                    at_r = nf.deadline[rows]
                    x_r = np.maximum(x[rows] * 0.5, X_FLOOR_PPS)
                    x[rows] = x_r
                    nf.rearm_rows(
                        rows, at_r + np.maximum(4.0 * rtt[rows], 2.0 / x_r)
                    )

                if take_fb.any():
                    frows = np.nonzero(take_fb)[0]
                    at_f = fb.deadline[frows].copy()
                    fb.deadline[frows] += rtt[frows]  # drift-free periodic
                    fb.generation[frows] += 1
                    fb_sent = take_fb & (delivered_since_fb > 0)
                    fb_lossy = fb_sent if all_lossy else fb_sent & has_loss
                    u_fb = lanes.take(fb_lossy)
                    fb_ok = fb_sent & ~(fb_lossy & (u_fb < p_loss))
                    if fb_ok.any():
                        ok_f = fb_ok[frows]
                        rows = frows[ok_f]
                        at_r = at_f[ok_f]
                        rtt_r = rtt[rows]
                        recv2 = 2.0 * (delivered_since_fb[rows] / rtt_r)
                        ss_r = slow_start[rows]
                        if ss_r.all():
                            new_x = np.minimum(2.0 * x[rows], recv2)
                        else:
                            p_est = wali.loss_event_rate(rows)
                            x_eq = (
                                tcp_response_rate_vec(
                                    packet_size, rtt_r, p_est, t_rto[rows]
                                )
                                / s_bytes
                            )
                            new_x = np.where(
                                ss_r,
                                np.minimum(2.0 * x[rows], recv2),
                                np.minimum(x_eq, recv2),
                            )
                        np.maximum(new_x, X_FLOOR_PPS, out=new_x)
                        x[rows] = new_x
                        delivered_since_fb[rows] = 0
                        nf.rearm_rows(
                            rows, at_r + np.maximum(4.0 * rtt_r, 2.0 / new_x)
                        )
                        sampled = at_r >= t0
                        if sampled.any():
                            srows = rows[sampled]
                            x_s = new_x[sampled]
                            n_samples[srows] += 1
                            sum_x[srows] += x_s
                            sum_x2[srows] += x_s * x_s

            # --- send phase: one packet per active cell at t_next.
            sent += active
            pmask = active if all_lossy else active & has_loss
            u_path = lanes.take(pmask)
            lost_path = pmask & (u_path < p_loss)
            path_drops += lost_path
            # lost_path is a subset of active: xor is set difference.
            arrived = active ^ lost_path

            np.subtract(t_next, last_drain, out=scratch)
            scratch *= cap_pps
            np.subtract(backlog, scratch, out=scratch)
            np.maximum(scratch, 0.0, out=scratch)
            np.copyto(backlog, scratch, where=arrived)
            np.copyto(last_drain, t_next, where=arrived)
            if is_red:
                assert red is not None
                np.copyto(
                    red_avg,
                    red_ewma_vec(red.weight, red_avg, backlog),
                    where=arrived,
                )
                overflow = arrived & (backlog >= buffer_pkts)
                p_b = red_drop_probability_vec(red, red_avg)
                hi_p = p_b >= 1.0
                if hi_p.any():
                    forced = overflow | ((arrived ^ overflow) & hi_p)
                else:
                    # Every lane's average sits below the forced zone; only
                    # a physical overflow can force a drop.
                    forced = overflow
                # forced / overflow are subsets of arrived: xor differences.
                not_forced = arrived ^ forced
                pos = p_b > 0.0
                candidate = not_forced & pos
                if candidate.any():
                    np.add(red_count, 1, out=red_count, where=candidate)
                    p_a = red_uniformized_vec(p_b, red_count)
                    u_red = lanes.take(candidate)
                    early = candidate & (u_red < p_a)
                else:
                    early = candidate  # all False
                below = not_forced ^ candidate  # candidate subset of not_forced
                lost_queue = forced | early
                np.copyto(red_count, 0, where=lost_queue)
                np.copyto(red_count, -1, where=below)
                forced_drops += forced
                early_drops += early
            else:
                lost_queue = arrived & (backlog >= buffer_pkts)
                forced_drops += lost_queue

            # lost_queue is a subset of arrived: xor is set difference.
            ok = arrived ^ lost_queue
            np.add(backlog, 1.0, out=backlog, where=ok)
            delivered += ok
            delivered_since_fb += ok
            delivered_measured += ok & (t_next >= t0)
            wali.on_packet(ok)

            # --- loss events
            lost = (lost_path | lost_queue) & (t_next >= loss_event_end)
            if lost.any():
                np.copyto(loss_event_end, t_next + rtt, where=lost)
                ss_exit = lost & slow_start
                if ss_exit.any():
                    # Each lane exits slow start once.  The vector bisection
                    # costs ~80 masked iterations regardless of lane count,
                    # so batch it only when enough lanes exit together;
                    # both forms are bit-identical per element.
                    rows = np.nonzero(ss_exit)[0]
                    x_half = x[rows] * 0.5
                    if len(rows) >= 16:
                        p_seed_vec = invert_response_vec(
                            packet_size,
                            rtt[rows],
                            x_half * s_bytes,
                            t_rto[rows],
                        )
                        interval = 1.0 / p_seed_vec
                    else:
                        interval = np.empty(len(rows), dtype=np.float64)
                        for i, k in enumerate(rows):
                            p_seed = invert_response(
                                packet_size,
                                float(rtt[k]),
                                float(x_half[i]) * s_bytes,
                                float(t_rto[k]),
                            )
                            interval[i] = 1.0 / p_seed
                    wali.seed_rows(rows, interval)
                    slow_start[rows] = False
                    x[rows] = np.maximum(x_half, X_FLOOR_PPS)
                normal = lost ^ ss_exit  # ss_exit is a subset of lost
                if normal.any():
                    wali.on_loss_event_rows(np.nonzero(normal)[0])

            np.divide(1.0, x, out=scratch)
            np.add(t_next, scratch, out=t_next, where=active)
            active &= t_next < duration

        loss_event_rate = wali.loss_event_rate()
        avg_interval = wali.average_interval()

    # --- scalar tail: finish the surviving lanes cell-by-cell, from the
    # exact mid-run state (timers, queue, draw buffers, loss history).
    tail_results: Dict[int, Dict[str, Any]] = {}
    for k in np.nonzero(active)[0]:
        k = int(k)
        st = _CellState(
            x=float(x[k]),
            fb_deadline=float(fb.deadline[k]),
            nf_deadline=float(nf.deadline[k]),
            slow_start=bool(slow_start[k]),
            t_next=float(t_next[k]),
            delivered_since_fb=int(delivered_since_fb[k]),
            loss_event_end=float(loss_event_end[k]),
            fb_gen=int(fb.generation[k]),
            nf_gen=int(nf.generation[k]),
            backlog=float(backlog[k]),
            last_drain=float(last_drain[k]),
            red_avg=float(red_avg[k]),
            red_count=int(red_count[k]),
            sent=int(sent[k]),
            delivered=int(delivered[k]),
            delivered_measured=int(delivered_measured[k]),
            path_drops=int(path_drops[k]),
            forced_drops=int(forced_drops[k]),
            early_drops=int(early_drops[k]),
            n_samples=int(n_samples[k]),
            sum_x=float(sum_x[k]),
            sum_x2=float(sum_x2[k]),
        )
        est = wali.export_lane(k)
        draws = lanes.export_lane(k)
        _advance_cell(cells[k], st, draws, est, None)
        tail_results[k] = _result_from_state(cells[k], st, est, None)

    results = []
    for k, params in enumerate(cells):
        if k in tail_results:
            results.append(tail_results[k])
            continue
        results.append(
            _build_result(
                params,
                sent=int(sent[k]),
                delivered=int(delivered[k]),
                delivered_measured=int(delivered_measured[k]),
                path_drops=int(path_drops[k]),
                forced_drops=int(forced_drops[k]),
                early_drops=int(early_drops[k]),
                loss_events=int(wali.loss_events[k]),
                loss_event_rate=float(loss_event_rate[k]),
                avg_loss_interval=float(avg_interval[k]),
                x_final=float(x[k]),
                backlog=float(backlog[k]),
                red_avg=float(red_avg[k]),
                slow_start=bool(slow_start[k]),
                n_samples=int(n_samples[k]),
                sum_x=float(sum_x[k]),
                sum_x2=float(sum_x2[k]),
                fb_gen=int(fb.generation[k]),
                nf_gen=int(nf.generation[k]),
                trace=None,
            )
        )
    return results
