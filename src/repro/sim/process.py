"""Restartable timers and periodic processes on top of the event loop.

These are the building blocks for protocol machinery: TCP retransmission
timers, the TFRC no-feedback timer, receiver feedback timers, and traffic
generators all use :class:`Timer` or :class:`PeriodicProcess`.

Two timer implementations share one interface:

* :class:`Timer` -- the legacy path: each ``start`` cancels the previous
  :class:`~repro.sim.engine.Event` handle and allocates a new one.
* :class:`FastTimer` -- the endpoint hot path: armings ride
  :meth:`Simulator.schedule_fast` entries tagged with a generation counter.
  Re-arming bumps the generation instead of cancelling; a superseded entry
  stays in the heap and self-discards when popped because its generation no
  longer matches.  No ``Event`` handle is ever allocated.

Both consume exactly one scheduler sequence number per ``start``, so event
ordering -- and therefore every trace -- is byte-identical whichever
implementation a protocol endpoint uses (see ``tests/test_fast_timer.py``
for the randomized equivalence fuzz).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from repro.sim.engine import Event, SimulationError, Simulator


class Timer:
    """A single-shot, restartable timer.

    The callback fires once, ``interval`` seconds after the most recent
    ``start``/``restart``.  Starting a pending timer reschedules it; this
    mirrors how TCP's RTO timer is pushed back on every new ACK.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        """True while a fire is scheduled and not yet delivered."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time the timer will fire, or None if not pending."""
        if self.pending:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, interval: float) -> None:
        """(Re)arm the timer to fire ``interval`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule_in(interval, self._fire)

    def restart(self, interval: float) -> None:
        """Alias of :meth:`start`; reads better at call sites that re-arm."""
        self.start(interval)

    def cancel(self) -> None:
        """Disarm the timer if pending."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class FastTimer:
    """A single-shot, restartable timer with no per-arming ``Event`` handle.

    Drop-in replacement for :class:`Timer` on hot paths that re-arm per
    packet (the TFRC send timer, TCP's RTO push-back on every ACK).  Each
    arming pushes one bare :meth:`Simulator.schedule_fast` entry carrying the
    current generation number; ``start``/``cancel`` bump the generation, so
    entries from superseded armings self-discard on pop instead of being
    cancelled up front.

    The trade against :class:`Timer` is pure bookkeeping: superseded entries
    are popped as (counted) no-op events rather than skipped as cancelled
    ones, and they are indistinguishable from live work to
    :meth:`Simulator.pending_count`/:meth:`Simulator.peek_time`.
    Consequently a ``run()`` with no ``until`` drains stale entries too --
    the clock (and ``run``'s return value) advances to the last stale
    deadline, where a cancelled legacy ``Timer`` event would be skipped --
    and ``max_events`` budgets count the no-op pops.  Bound runs with
    ``until`` (as every scenario here does) are unaffected.  Firing order
    is identical either way -- both implementations consume one sequence
    number per ``start``, at the same deadline and priority.
    """

    __slots__ = ("_sim", "_callback", "_gen", "_deadline", "_on_pop")

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._gen = 0
        self._deadline: Optional[float] = None
        # One bound method reused for every arming (bound-method creation is
        # an allocation; hoisting it makes start() allocation-free).
        self._on_pop = self._pop

    @property
    def pending(self) -> bool:
        """True while a fire is scheduled and not yet delivered."""
        return self._deadline is not None

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time the timer will fire, or None if not pending."""
        return self._deadline

    def start(self, interval: float) -> None:
        """(Re)arm the timer to fire ``interval`` seconds from now."""
        if interval < 0:
            raise SimulationError(f"negative delay {interval!r}")
        # Supersede any prior arming before attempting the push, exactly
        # like Timer.start's leading cancel(): if scheduling raises (e.g.
        # a non-finite deadline), both implementations end up disarmed.
        gen = self._gen + 1
        self._gen = gen
        self._deadline = None
        deadline = self._sim.now + interval
        self._sim.schedule_fast(deadline, self._on_pop, args=(gen,))
        self._deadline = deadline

    def restart(self, interval: float) -> None:
        """Alias of :meth:`start`; reads better at call sites that re-arm."""
        self.start(interval)

    def cancel(self) -> None:
        """Disarm the timer if pending (the heap entry self-discards)."""
        self._gen += 1
        self._deadline = None

    def _pop(self, gen: int) -> None:
        if gen != self._gen:
            return  # stale entry from a superseded arming or a cancel
        self._deadline = None
        self._callback()


#: Either timer implementation; endpoints accept both interchangeably.
TimerLike = Union[Timer, FastTimer]


def make_timer(
    sim: Simulator, callback: Callable[[], None], fast: bool = True
) -> TimerLike:
    """Construct the fast (default) or legacy timer implementation.

    The ``fast`` flag is what endpoint classes expose as ``fast_timers`` so
    benchmarks can pin the PR-1 legacy behaviour for comparison.
    """
    return FastTimer(sim, callback) if fast else Timer(sim, callback)


class PeriodicProcess:
    """Invoke a callback at (possibly varying) intervals.

    ``interval_fn`` is consulted before each scheduling step, which lets
    traffic sources draw intervals from a distribution and lets rate-paced
    senders change their spacing between packets.  Returning ``None`` from
    ``interval_fn`` stops the process.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], Any],
        interval_fn: Callable[[], Optional[float]],
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._interval_fn = interval_fn
        self._event: Optional[Event] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, initial_delay: float = 0.0) -> None:
        """Begin ticking ``initial_delay`` seconds from now."""
        if self._running:
            return
        self._running = True
        self._event = self._sim.schedule_in(initial_delay, self._tick)

    def stop(self) -> None:
        """Stop ticking; safe to call repeatedly."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if not self._running:
            # The callback may have stopped us.
            return
        interval = self._interval_fn()
        if interval is None:
            self._running = False
            self._event = None
            return
        self._event = self._sim.schedule_in(interval, self._tick)
