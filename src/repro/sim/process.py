"""Restartable timers and periodic processes on top of the event loop.

These are the building blocks for protocol machinery: TCP retransmission
timers, the TFRC no-feedback timer, receiver feedback timers, and traffic
generators all use :class:`Timer` or :class:`PeriodicProcess`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class Timer:
    """A single-shot, restartable timer.

    The callback fires once, ``interval`` seconds after the most recent
    ``start``/``restart``.  Starting a pending timer reschedules it; this
    mirrors how TCP's RTO timer is pushed back on every new ACK.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        """True while a fire is scheduled and not yet delivered."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time the timer will fire, or None if not pending."""
        if self.pending:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, interval: float) -> None:
        """(Re)arm the timer to fire ``interval`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule_in(interval, self._fire)

    def restart(self, interval: float) -> None:
        """Alias of :meth:`start`; reads better at call sites that re-arm."""
        self.start(interval)

    def cancel(self) -> None:
        """Disarm the timer if pending."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicProcess:
    """Invoke a callback at (possibly varying) intervals.

    ``interval_fn`` is consulted before each scheduling step, which lets
    traffic sources draw intervals from a distribution and lets rate-paced
    senders change their spacing between packets.  Returning ``None`` from
    ``interval_fn`` stops the process.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], Any],
        interval_fn: Callable[[], Optional[float]],
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._interval_fn = interval_fn
        self._event: Optional[Event] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, initial_delay: float = 0.0) -> None:
        """Begin ticking ``initial_delay`` seconds from now."""
        if self._running:
            return
        self._running = True
        self._event = self._sim.schedule_in(initial_delay, self._tick)

    def stop(self) -> None:
        """Stop ticking; safe to call repeatedly."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if not self._running:
            # The callback may have stopped us.
            return
        interval = self._interval_fn()
        if interval is None:
            self._running = False
            self._event = None
            return
        self._event = self._sim.schedule_in(interval, self._tick)
