"""Figures 11-13: performance with ON/OFF background traffic.

Section 4.1.3's scenario: 50-150 Pareto ON/OFF UDP sources (mean ON 1 s,
mean OFF 2 s, 500 kb/s when ON) share the 15 Mb/s bottleneck with two
monitored long-duration flows, one TCP and one TFRC.

* Figure 11: mean bottleneck loss rate vs the number of sources.
* Figure 12: TFRC/TCP equivalence ratio vs timescale, per source count.
* Figure 13: CoV of the two monitored flows vs timescale, per source count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cov import coefficient_of_variation
from repro.scenarios import ScenarioSpec, SweepRunner, register_scenario
from repro.scenarios.spec import JsonDict
from repro.scenarios.executors import ExecutorArg
from repro.scenarios.sweep import ProgressFn
from repro.analysis.equivalence import equivalence_ratio
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.core import TfrcFlow
from repro.net import Dumbbell, DumbbellConfig
from repro.net.monitor import FlowMonitor, LinkMonitor
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.flow import TcpFlow
from repro.traffic.onoff import OnOffSource

PAPER_SOURCE_COUNTS = (50, 60, 100, 130, 150)
PAPER_TIMESCALES = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


@dataclass
class OnOffRunResult:
    """One source-count configuration."""

    sources: int
    loss_rate: float
    equivalence_by_tau: Dict[float, float] = field(default_factory=dict)
    cov_tcp_by_tau: Dict[float, float] = field(default_factory=dict)
    cov_tfrc_by_tau: Dict[float, float] = field(default_factory=dict)
    tcp_throughput_bps: float = 0.0
    tfrc_throughput_bps: float = 0.0


@dataclass
class Fig11Result:
    runs: List[OnOffRunResult] = field(default_factory=list)

    def loss_curve(self) -> List[Tuple[int, float]]:
        """(sources, loss rate) pairs -- the Figure 11 series."""
        return [(r.sources, r.loss_rate) for r in self.runs]


def run_one(
    n_sources: int,
    duration: float = 200.0,
    warmup: float = 20.0,
    timescales: Sequence[float] = PAPER_TIMESCALES,
    link_bps: float = 15e6,
    seed: int = 0,
    endpoint_fastpath: bool = True,
    tracer=None,
) -> OnOffRunResult:
    """One configuration: n ON/OFF sources + 1 TCP + 1 TFRC monitored."""
    registry = RngRegistry(seed)
    sim = Simulator()
    config = DumbbellConfig(bandwidth_bps=link_bps, queue_type="red")
    dumbbell = Dumbbell(
        sim, config, queue_rng=registry.stream("red"),
        fast_scheduling=endpoint_fastpath,
    )
    flow_monitor = FlowMonitor(tracer=tracer, columnar=endpoint_fastpath)
    link_monitor = LinkMonitor(
        sim, dumbbell.forward_link, tracer=tracer,
        sample_queue=False, columnar=endpoint_fastpath,
    )
    topo_rng = registry.stream("topology")

    fwd, rev = dumbbell.attach_flow("tcp-mon", topo_rng.uniform(0.08, 0.12))
    tcp = TcpFlow(
        sim, "tcp-mon", fwd, rev, variant="sack",
        on_data=flow_monitor.on_packet, tracer=tracer,
        fast_timers=endpoint_fastpath,
    )
    tcp.start(at=0.1)
    fwd, rev = dumbbell.attach_flow("tfrc-mon", topo_rng.uniform(0.08, 0.12))
    tfrc = TfrcFlow(
        sim, "tfrc-mon", fwd, rev, on_data=flow_monitor.on_packet,
        tracer=tracer, fast_timers=endpoint_fastpath,
    )
    tfrc.start(at=0.2)

    onoff_rng = registry.stream("onoff")
    for i in range(n_sources):
        flow_id = f"onoff-{i}"
        port, _ = dumbbell.attach_flow(flow_id, topo_rng.uniform(0.08, 0.12))
        source = OnOffSource(sim, flow_id, port, rng=onoff_rng)
        source.start(at=float(topo_rng.uniform(0.0, 5.0)))
    sim.run(until=duration)

    timescales = [t for t in timescales if t <= (duration - warmup) / 2]
    result = OnOffRunResult(
        sources=n_sources, loss_rate=link_monitor.loss_rate()
    )
    t0, t1 = warmup, duration
    tcp_arrivals = flow_monitor.arrivals.get("tcp-mon", [])
    tfrc_arrivals = flow_monitor.arrivals.get("tfrc-mon", [])
    result.tcp_throughput_bps = flow_monitor.throughput_bps("tcp-mon", t0, t1)
    result.tfrc_throughput_bps = flow_monitor.throughput_bps("tfrc-mon", t0, t1)
    for tau in timescales:
        series_tcp = arrivals_to_rate_series(tcp_arrivals, t0, t1, tau)
        series_tfrc = arrivals_to_rate_series(tfrc_arrivals, t0, t1, tau)
        result.equivalence_by_tau[tau] = equivalence_ratio(series_tfrc, series_tcp)
        result.cov_tcp_by_tau[tau] = coefficient_of_variation(series_tcp)
        result.cov_tfrc_by_tau[tau] = coefficient_of_variation(series_tfrc)
    return result


@register_scenario("fig11_onoff")
def onoff_scenario(spec: ScenarioSpec) -> JsonDict:
    """One ON/OFF background-traffic configuration as a sweep cell."""
    run_result = run_one(
        n_sources=int(spec.flows["sources"]),
        duration=spec.duration,
        warmup=float(spec.extra.get("warmup", 20.0)),
        timescales=[float(t) for t in spec.extra["timescales"]],
        link_bps=float(spec.topology.get("bandwidth_bps", 15e6)),
        seed=spec.seed,
        endpoint_fastpath=bool(spec.extra.get("endpoint_fastpath", True)),
    )
    return {
        "sources": run_result.sources,
        "loss_rate": run_result.loss_rate,
        "equivalence_by_tau": {
            repr(t): v for t, v in run_result.equivalence_by_tau.items()
        },
        "cov_tcp_by_tau": {
            repr(t): v for t, v in run_result.cov_tcp_by_tau.items()
        },
        "cov_tfrc_by_tau": {
            repr(t): v for t, v in run_result.cov_tfrc_by_tau.items()
        },
        "tcp_throughput_bps": run_result.tcp_throughput_bps,
        "tfrc_throughput_bps": run_result.tfrc_throughput_bps,
    }


def run(
    source_counts: Sequence[int] = PAPER_SOURCE_COUNTS,
    duration: float = 200.0,
    seed: int = 0,
    warmup: float = 20.0,
    timescales: Sequence[float] = PAPER_TIMESCALES,
    link_bps: float = 15e6,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> Fig11Result:
    """Sweep the number of ON/OFF sources (paper: 5000 s; default reduced).

    Each source count is one sweep cell; ``parallel``/``cache_dir`` fan out
    and re-use them.
    """
    base = ScenarioSpec(
        scenario="fig11_onoff",
        duration=duration,
        seed=seed,
        topology={"bandwidth_bps": float(link_bps)},
        extra={
            "warmup": float(warmup),
            "timescales": [float(t) for t in timescales],
        },
    )
    sweep = SweepRunner(
        base,
        {"flows.sources": [int(count) for count in source_counts]},
        parallel=parallel,
        cache_dir=cache_dir,
        progress=progress,
        executor=executor,
        queue_dir=queue_dir,
    ).run()
    result = Fig11Result()
    for cell in sweep.cells:
        data = cell.result
        assert data is not None
        result.runs.append(
            OnOffRunResult(
                sources=int(data["sources"]),
                loss_rate=float(data["loss_rate"]),
                equivalence_by_tau={
                    float(t): v for t, v in data["equivalence_by_tau"].items()
                },
                cov_tcp_by_tau={
                    float(t): v for t, v in data["cov_tcp_by_tau"].items()
                },
                cov_tfrc_by_tau={
                    float(t): v for t, v in data["cov_tfrc_by_tau"].items()
                },
                tcp_throughput_bps=float(data["tcp_throughput_bps"]),
                tfrc_throughput_bps=float(data["tfrc_throughput_bps"]),
            )
        )
    return result
