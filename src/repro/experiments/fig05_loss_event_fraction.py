"""Figure 5: loss-event fraction vs Bernoulli loss probability.

For flows obeying the control equation (and flows at 2x and 0.5x the
calculated rate), the paper plots the loss-event fraction against the packet
loss probability, showing the two nearly coincide at low and high loss and
differ by at most ~10% at moderate loss.

This module evaluates the self-consistent analytic mapping of section 3.5.1
and cross-checks it with a Monte-Carlo packet stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.bernoulli import (
    consistent_loss_event_fraction,
    packets_per_rtt_from_equation,
    simulate_loss_event_fraction,
)


@dataclass
class Fig05Result:
    """p_event as a function of p_loss, per rate multiplier."""

    p_loss_values: List[float]
    p_event_by_multiplier: Dict[float, List[float]] = field(default_factory=dict)
    p_event_monte_carlo: Dict[float, List[float]] = field(default_factory=dict)

    def max_relative_gap(self, multiplier: float = 1.0) -> float:
        """max over p_loss of (p_loss - p_event) / p_loss."""
        gaps = [
            (pl - pe) / pl
            for pl, pe in zip(self.p_loss_values, self.p_event_by_multiplier[multiplier])
            if pl > 0
        ]
        return max(gaps) if gaps else 0.0


def run(
    p_loss_values: Sequence[float] = tuple(np.linspace(0.005, 0.25, 25)),
    multipliers: Sequence[float] = (0.5, 1.0, 2.0),
    monte_carlo: bool = True,
    mc_packets: int = 100_000,
    rtt: float = 0.1,
    packet_size: int = 1000,
    seed: int = 0,
) -> Fig05Result:
    """Compute the Figure 5 curves."""
    result = Fig05Result(p_loss_values=list(p_loss_values))
    rng = np.random.default_rng(seed)
    for multiplier in multipliers:
        analytic = [
            consistent_loss_event_fraction(
                p_loss, packet_size=packet_size, rtt=rtt, rate_multiplier=multiplier
            )
            for p_loss in p_loss_values
        ]
        result.p_event_by_multiplier[multiplier] = analytic
        if monte_carlo:
            simulated = []
            for p_loss, p_event in zip(p_loss_values, analytic):
                n = packets_per_rtt_from_equation(
                    max(p_event, 1e-6),
                    packet_size=packet_size,
                    rtt=rtt,
                    rate_multiplier=multiplier,
                )
                simulated.append(
                    simulate_loss_event_fraction(
                        p_loss, max(n, 1.0), total_packets=mc_packets, rng=rng
                    )
                )
            result.p_event_monte_carlo[multiplier] = simulated
    return result
