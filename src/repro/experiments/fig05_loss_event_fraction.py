"""Figure 5: loss-event fraction vs Bernoulli loss probability.

For flows obeying the control equation (and flows at 2x and 0.5x the
calculated rate), the paper plots the loss-event fraction against the packet
loss probability, showing the two nearly coincide at low and high loss and
differ by at most ~10% at moderate loss.

This module evaluates the self-consistent analytic mapping of section 3.5.1
and cross-checks it with a Monte-Carlo packet stream.  Each rate multiplier
is one cell of a :class:`~repro.scenarios.sweep.SweepRunner` sweep over the
registered ``fig05_curve`` scenario, so ``--parallel`` / ``--cache`` come
for free and Monte-Carlo streams are seeded deterministically per cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.bernoulli import (
    consistent_loss_event_fraction,
    packets_per_rtt_from_equation,
    simulate_loss_event_fraction,
)
from repro.scenarios import ScenarioSpec, SweepRunner, register_scenario
from repro.scenarios.spec import JsonDict
from repro.scenarios.executors import ExecutorArg
from repro.scenarios.sweep import ProgressFn

DEFAULT_P_LOSS = tuple(np.linspace(0.005, 0.25, 25))


@dataclass
class Fig05Result:
    """p_event as a function of p_loss, per rate multiplier."""

    p_loss_values: List[float]
    p_event_by_multiplier: Dict[float, List[float]] = field(default_factory=dict)
    p_event_monte_carlo: Dict[float, List[float]] = field(default_factory=dict)

    def max_relative_gap(self, multiplier: float = 1.0) -> float:
        """max over p_loss of (p_loss - p_event) / p_loss."""
        gaps = [
            (pl - pe) / pl
            for pl, pe in zip(self.p_loss_values, self.p_event_by_multiplier[multiplier])
            if pl > 0
        ]
        return max(gaps) if gaps else 0.0


@register_scenario("fig05_curve")
def curve_scenario(spec: ScenarioSpec) -> JsonDict:
    """One Figure 5 curve (one rate multiplier) as a sweep cell.

    Spec layout::

        topology: {rtt?, packet_size?}
        flows:    {rate_multiplier}
        extra:    {p_loss_values, monte_carlo?, mc_packets?}
    """
    p_loss_values = [float(p) for p in spec.extra["p_loss_values"]]
    multiplier = float(spec.flows.get("rate_multiplier", 1.0))
    rtt = float(spec.topology.get("rtt", 0.1))
    packet_size = int(spec.topology.get("packet_size", 1000))
    analytic = [
        consistent_loss_event_fraction(
            p_loss, packet_size=packet_size, rtt=rtt, rate_multiplier=multiplier
        )
        for p_loss in p_loss_values
    ]
    result: JsonDict = {
        "rate_multiplier": multiplier,
        "p_loss_values": p_loss_values,
        "analytic": analytic,
    }
    if bool(spec.extra.get("monte_carlo", True)):
        rng = np.random.default_rng(spec.seed)
        mc_packets = int(spec.extra.get("mc_packets", 100_000))
        simulated = []
        for p_loss, p_event in zip(p_loss_values, analytic):
            n = packets_per_rtt_from_equation(
                max(p_event, 1e-6),
                packet_size=packet_size,
                rtt=rtt,
                rate_multiplier=multiplier,
            )
            simulated.append(
                simulate_loss_event_fraction(
                    p_loss, max(n, 1.0), total_packets=mc_packets, rng=rng
                )
            )
        result["monte_carlo"] = simulated
    return result


def run(
    p_loss_values: Sequence[float] = DEFAULT_P_LOSS,
    multipliers: Sequence[float] = (0.5, 1.0, 2.0),
    monte_carlo: bool = True,
    mc_packets: int = 100_000,
    rtt: float = 0.1,
    packet_size: int = 1000,
    seed: int = 0,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> Fig05Result:
    """Compute the Figure 5 curves as a sweep over rate multipliers.

    Each multiplier is one cell; ``parallel=N`` fans cells out over worker
    processes and ``cache_dir`` re-uses previously computed curves.  Cells
    derive their Monte-Carlo seed from ``seed`` plus the cell overrides
    (``seed_mode="derived"``), so results are independent of execution
    order and worker count.
    """
    base = ScenarioSpec(
        scenario="fig05_curve",
        seed=seed,
        duration=0.0,  # analytic + Monte-Carlo: no simulated clock
        topology={"rtt": float(rtt), "packet_size": int(packet_size)},
        extra={
            "p_loss_values": [float(p) for p in p_loss_values],
            "monte_carlo": bool(monte_carlo),
            "mc_packets": int(mc_packets),
        },
    )
    sweep = SweepRunner(
        base,
        {"flows.rate_multiplier": [float(m) for m in multipliers]},
        parallel=parallel,
        cache_dir=cache_dir,
        progress=progress,
        executor=executor,
        queue_dir=queue_dir,
        seed_mode="derived",
    ).run()
    result = Fig05Result(p_loss_values=[float(p) for p in p_loss_values])
    for cell in sweep.cells:
        data = cell.result
        assert data is not None
        multiplier = float(data["rate_multiplier"])
        result.p_event_by_multiplier[multiplier] = [
            float(v) for v in data["analytic"]
        ]
        if "monte_carlo" in data:
            result.p_event_monte_carlo[multiplier] = [
                float(v) for v in data["monte_carlo"]
            ]
    return result
