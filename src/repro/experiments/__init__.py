"""Experiment harness: one module per figure of the paper's evaluation.

Every ``figNN_*`` module exposes ``run(...) -> <FigureResult dataclass>``
with keyword arguments controlling scale (duration, flow counts, seeds), so
benchmarks can run reduced versions and EXPERIMENTS.md can record the full
ones.  ``repro.experiments.runner`` is the CLI (``tfrc-experiment fig09``).
"""

from repro.experiments import common

__all__ = ["common"]
