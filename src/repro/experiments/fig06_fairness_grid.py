"""Figure 6 (and 7): TCP throughput while co-existing with TFRC.

n TCP and n TFRC flows share a bottleneck; the link rate is swept over
1..64 Mb/s and the total flow count over 2..128, for DropTail and RED
queueing.  The figure reports mean TCP throughput over the last 60 s of
simulation, normalized so 1.0 is a fair share of the link; the queue size
scales with the bandwidth.

Figure 7 is the 15 Mb/s column with per-flow scatter, produced by
:func:`run_cell` with ``per_flow=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.scenarios import (
    ScenarioSpec,
    SweepRunner,
    register_scenario,
    run_mixed_dumbbell,
    steady_state_window,
)
from repro.scenarios.spec import JsonDict
from repro.scenarios.executors import ExecutorArg
from repro.scenarios.sweep import ProgressFn


@dataclass
class CellResult:
    """One (link rate, flow count, queue type) grid cell."""

    link_bps: float
    total_flows: int
    queue_type: str
    mean_tcp_normalized: float
    mean_tfrc_normalized: float
    per_flow_tcp: List[float] = field(default_factory=list)
    per_flow_tfrc: List[float] = field(default_factory=list)
    utilization: float = 0.0
    loss_rate: float = 0.0


@dataclass
class Fig06Result:
    cells: List[CellResult] = field(default_factory=list)

    def cell(self, link_bps: float, total_flows: int, queue_type: str) -> CellResult:
        for cell in self.cells:
            if (
                cell.link_bps == link_bps
                and cell.total_flows == total_flows
                and cell.queue_type == queue_type
            ):
                return cell
        raise KeyError((link_bps, total_flows, queue_type))


def run_cell(
    link_bps: float,
    total_flows: int,
    queue_type: str,
    duration: float = 90.0,
    seed: int = 0,
    measure_fraction: float = 2.0 / 3.0,
) -> CellResult:
    """One simulation cell; ``total_flows`` is split evenly TCP/TFRC."""
    if total_flows < 2 or total_flows % 2 != 0:
        raise ValueError("total_flows must be an even number >= 2")
    n = total_flows // 2
    result = run_mixed_dumbbell(
        duration=duration,
        n_tfrc=n,
        n_tcp=n,
        bandwidth_bps=link_bps,
        queue_type=queue_type,
        seed=seed,
    )
    t0, t1 = steady_state_window(duration, measure_fraction)
    tcp = [result.normalized_throughput(fid, t0, t1) for fid in result.tcp_ids]
    tfrc = [result.normalized_throughput(fid, t0, t1) for fid in result.tfrc_ids]
    fair = link_bps / total_flows
    utilization = sum(v * fair for v in tcp + tfrc) / link_bps
    return CellResult(
        link_bps=link_bps,
        total_flows=total_flows,
        queue_type=queue_type,
        mean_tcp_normalized=float(np.mean(tcp)),
        mean_tfrc_normalized=float(np.mean(tfrc)),
        per_flow_tcp=tcp,
        per_flow_tfrc=tfrc,
        utilization=utilization,
        loss_rate=result.link_monitor.loss_rate(),
    )


@register_scenario("fig06_cell")
def cell_scenario(spec: ScenarioSpec) -> JsonDict:
    """Declarative Figure 6 cell, executable by the sweep runner."""
    cell = run_cell(
        link_bps=float(spec.topology["bandwidth_bps"]),
        total_flows=int(spec.flows["total"]),
        queue_type=str(spec.queue["type"]),
        duration=spec.duration,
        seed=spec.seed,
        measure_fraction=float(spec.extra.get("measure_fraction", 2.0 / 3.0)),
    )
    return {
        "link_bps": cell.link_bps,
        "total_flows": cell.total_flows,
        "queue_type": cell.queue_type,
        "mean_tcp_normalized": cell.mean_tcp_normalized,
        "mean_tfrc_normalized": cell.mean_tfrc_normalized,
        "per_flow_tcp": cell.per_flow_tcp,
        "per_flow_tfrc": cell.per_flow_tfrc,
        "utilization": cell.utilization,
        "loss_rate": cell.loss_rate,
    }


def run(
    link_rates_mbps: Sequence[float] = (1, 2, 4, 8, 16, 32, 64),
    flow_counts: Sequence[int] = (2, 8, 32, 128),
    queue_types: Sequence[str] = ("droptail", "red"),
    duration: float = 90.0,
    seed: int = 0,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> Fig06Result:
    """The full fairness grid as a sweep.  Reduce the sweeps for quicker
    runs; ``parallel=N`` fans the cells out over N worker processes and
    ``cache_dir`` re-uses previously simulated cells."""
    base = ScenarioSpec(
        scenario="fig06_cell",
        duration=duration,
        seed=seed,
        extra={"measure_fraction": 2.0 / 3.0},
    )
    grid = {
        "queue.type": [str(q) for q in queue_types],
        "topology.bandwidth_bps": [rate * 1e6 for rate in link_rates_mbps],
        "flows.total": [int(n) for n in flow_counts],
    }
    sweep = SweepRunner(
        base, grid, parallel=parallel, cache_dir=cache_dir, progress=progress,
        executor=executor, queue_dir=queue_dir,
    ).run()
    result = Fig06Result()
    for cell in sweep.cells:
        assert cell.result is not None
        result.cells.append(CellResult(**cell.result))
    return result
