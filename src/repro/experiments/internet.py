"""Synthetic Internet paths for Figures 15-17 (substitution).

The paper's section 4.3 runs its userspace TFRC implementation over real
Internet paths (UCL->ACIRI, Mannheim, UMass with Linux and Solaris senders,
Nokia Boston) and Dummynet.  Real transcontinental paths are unavailable
here, so each named path is synthesized as a bottleneck with heavy
uncontrolled cross traffic and per-path quirks chosen to reproduce the
behaviours the paper reports:

* **ucl** -- well-behaved transatlantic path: 1.5 Mb/s bottleneck, ~90 ms
  RTT, moderate cross traffic.  (Figure 15's 3 TCP + 1 TFRC run.)
* **mannheim** -- similar, shorter RTT, lighter load.
* **umass_linux** -- good modern TCP stack: fine timer granularity.
* **umass_solaris** -- the paper's pathological case: "a very aggressive TCP
  retransmission timeout ... frequently retransmits unnecessarily".
  Modelled with a tiny min-RTO and coarse variance handling (rto_k = 1), so
  the competing TCP hurts itself, and TFRC "out-competes" it -- the paper's
  observed unfairness with a *normal* TFRC trace.
* **nokia** -- heavily loaded T1 (1.5 Mb/s) with a shallow DropTail buffer
  close to the source: the phase-effect case that motivated the interpacket
  spacing adjustment.

The topology half (profiles, flow attachment, cross traffic) lives in
:mod:`repro.scenarios.builders` (:class:`PathProfile`,
:func:`run_internet_path`); this module holds the paper's named profiles
and the measurement/analysis layer.  Each path is one registered
``internet_path`` scenario cell -- the profile itself is the spec's
``topology`` group -- so multi-path runs are
:class:`~repro.scenarios.sweep.SweepRunner` sweeps (``--parallel N``
simulates paths concurrently, ``--cache`` re-uses them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.cov import coefficient_of_variation
from repro.analysis.equivalence import equivalence_ratio
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.scenarios import (
    ScenarioSpec,
    SweepRunner,
    register_scenario,
    run_single_cell,
)
from repro.scenarios.builders import PathProfile, run_internet_path
from repro.scenarios.spec import JsonDict
from repro.scenarios.executors import ExecutorArg
from repro.scenarios.sweep import ProgressFn

__all__ = [
    "PATHS",
    "PAPER_PATHS",
    "PathProfile",
    "InternetRunResult",
    "run_path",
    "run_all",
]

PATHS: Dict[str, PathProfile] = {
    "ucl": PathProfile(
        name="ucl", bandwidth_bps=1.5e6, base_rtt=0.090, buffer_packets=40,
        cross_sources=4, cross_peak_bps=200e3,
        tcp_min_rto=1.0, tcp_granularity=0.5,
    ),
    "mannheim": PathProfile(
        name="mannheim", bandwidth_bps=2.0e6, base_rtt=0.040, buffer_packets=50,
        cross_sources=3, cross_peak_bps=150e3,
        tcp_min_rto=0.4, tcp_granularity=0.2,
    ),
    "umass_linux": PathProfile(
        name="umass_linux", bandwidth_bps=1.5e6, base_rtt=0.070, buffer_packets=40,
        cross_sources=4, cross_peak_bps=200e3,
        tcp_min_rto=0.2, tcp_granularity=0.01,
    ),
    "umass_solaris": PathProfile(
        name="umass_solaris", bandwidth_bps=1.5e6, base_rtt=0.070, buffer_packets=40,
        cross_sources=4, cross_peak_bps=200e3,
        # Aggressive timer: tiny floor and *no* variance margin (RTO ~=
        # SRTT), so queueing jitter triggers spurious timeouts that hurt
        # the TCP itself (Paxson 1997, cited by the paper for this path).
        tcp_min_rto=0.05, tcp_granularity=0.01, tcp_rto_k=0.0,
    ),
    "nokia": PathProfile(
        name="nokia", bandwidth_bps=1.5e6, base_rtt=0.060, buffer_packets=25,
        cross_sources=5, cross_peak_bps=250e3,
        tcp_min_rto=0.5, tcp_granularity=0.5,
    ),
    # The paper's first "less fair" observation (section 4.3): when the
    # network is overloaded enough that flows get close to one packet per
    # RTT, TFRC can take significantly more than its share from a
    # conservative (coarse-RTO) TCP.  This harsher variant reproduces that
    # regime; it is excluded from the Figure 16/17 path set.
    "nokia_overloaded": PathProfile(
        name="nokia_overloaded", bandwidth_bps=1.5e6, base_rtt=0.060,
        buffer_packets=8, cross_sources=6, cross_peak_bps=300e3,
        tcp_min_rto=0.5, tcp_granularity=0.5,
    ),
}

#: The five paths of Figures 16/17.
PAPER_PATHS = ("ucl", "mannheim", "umass_linux", "umass_solaris", "nokia")


@dataclass
class InternetRunResult:
    """One path's run: monitored TCP vs TFRC measures."""

    path: str
    loss_rate: float
    tcp_throughputs_bps: List[float]
    tfrc_throughput_bps: float
    equivalence_by_tau: Dict[float, float] = field(default_factory=dict)
    cov_tcp_by_tau: Dict[float, float] = field(default_factory=dict)
    cov_tfrc_by_tau: Dict[float, float] = field(default_factory=dict)
    tfrc_trace: List[float] = field(default_factory=list)
    tcp_traces: List[List[float]] = field(default_factory=list)


@register_scenario("internet_path")
def internet_path_scenario(spec: ScenarioSpec) -> JsonDict:
    """One synthetic path run as a sweep cell.

    Spec layout::

        topology: the full :class:`PathProfile` as plain data
        flows:    {n_tcp?, interpacket_adjustment?}
        extra:    {warmup?, timescales?, trace_tau?}
    """
    profile = PathProfile.from_dict(dict(spec.topology))
    warmup = float(spec.extra.get("warmup", 20.0))
    timescales = [
        float(t) for t in spec.extra.get("timescales", (1.0, 2.0, 5.0, 10.0, 20.0))
    ]
    trace_tau = float(spec.extra.get("trace_tau", 1.0))
    run = run_internet_path(
        profile,
        n_tcp=int(spec.flows.get("n_tcp", 3)),
        duration=spec.duration,
        interpacket_adjustment=bool(
            spec.flows.get("interpacket_adjustment", True)
        ),
        seed=spec.seed,
    )
    flow_monitor = run.flow_monitor
    t0, t1 = warmup, spec.duration
    timescales = [t for t in timescales if t <= (t1 - t0) / 2]
    out: JsonDict = {
        "path": profile.name,
        "loss_rate": run.link_monitor.loss_rate(),
        "tcp_throughputs_bps": [
            flow_monitor.throughput_bps(fid, t0, t1) for fid in run.tcp_ids
        ],
        "tfrc_throughput_bps": flow_monitor.throughput_bps("tfrc", t0, t1),
        "equivalence_by_tau": {},
        "cov_tcp_by_tau": {},
        "cov_tfrc_by_tau": {},
        "tcp_traces": [],
    }
    tfrc_arrivals = flow_monitor.arrivals.get("tfrc", [])
    out["tfrc_trace"] = [
        float(v) for v in arrivals_to_rate_series(tfrc_arrivals, t0, t1, trace_tau)
    ]
    for fid in run.tcp_ids:
        arrivals = flow_monitor.arrivals.get(fid, [])
        out["tcp_traces"].append(
            [float(v) for v in arrivals_to_rate_series(arrivals, t0, t1, trace_tau)]
        )
    for tau in timescales:
        series_tfrc = arrivals_to_rate_series(tfrc_arrivals, t0, t1, tau)
        covs = []
        ratios = []
        for fid in run.tcp_ids:
            series_tcp = arrivals_to_rate_series(
                flow_monitor.arrivals.get(fid, []), t0, t1, tau
            )
            ratios.append(equivalence_ratio(series_tfrc, series_tcp))
            covs.append(coefficient_of_variation(series_tcp))
        key = repr(tau)
        out["equivalence_by_tau"][key] = float(np.nanmean(ratios))
        out["cov_tcp_by_tau"][key] = float(np.mean(covs))
        out["cov_tfrc_by_tau"][key] = float(
            coefficient_of_variation(series_tfrc)
        )
    return out


def _result_from_cell(data: JsonDict) -> InternetRunResult:
    return InternetRunResult(
        path=str(data["path"]),
        loss_rate=float(data["loss_rate"]),
        tcp_throughputs_bps=[float(v) for v in data["tcp_throughputs_bps"]],
        tfrc_throughput_bps=float(data["tfrc_throughput_bps"]),
        equivalence_by_tau={
            float(t): float(v) for t, v in data["equivalence_by_tau"].items()
        },
        cov_tcp_by_tau={
            float(t): float(v) for t, v in data["cov_tcp_by_tau"].items()
        },
        cov_tfrc_by_tau={
            float(t): float(v) for t, v in data["cov_tfrc_by_tau"].items()
        },
        tfrc_trace=[float(v) for v in data["tfrc_trace"]],
        tcp_traces=[[float(v) for v in trace] for trace in data["tcp_traces"]],
    )


def _base_spec(
    profile: PathProfile,
    n_tcp: int,
    duration: float,
    warmup: float,
    timescales: Sequence[float],
    trace_tau: float,
    interpacket_adjustment: bool,
    seed: int,
) -> ScenarioSpec:
    return ScenarioSpec(
        scenario="internet_path",
        duration=float(duration),
        seed=seed,
        topology=profile.to_dict(),
        flows={
            "n_tcp": int(n_tcp),
            "interpacket_adjustment": bool(interpacket_adjustment),
        },
        extra={
            "warmup": float(warmup),
            "timescales": [float(t) for t in timescales],
            "trace_tau": float(trace_tau),
        },
    )


def run_path(
    profile: PathProfile,
    n_tcp: int = 3,
    duration: float = 120.0,
    warmup: float = 20.0,
    timescales: Sequence[float] = (1.0, 2.0, 5.0, 10.0, 20.0),
    trace_tau: float = 1.0,
    interpacket_adjustment: bool = True,
    seed: int = 0,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> InternetRunResult:
    """Run n_tcp TCP flows + 1 TFRC flow + cross traffic over one path."""
    base = _base_spec(
        profile, n_tcp, duration, warmup, timescales, trace_tau,
        interpacket_adjustment, seed,
    )
    data = run_single_cell(
        base, parallel=parallel, cache_dir=cache_dir, progress=progress,
        executor=executor, queue_dir=queue_dir,
    )
    return _result_from_cell(data)


def run_all(
    paths: Sequence[str] = PAPER_PATHS,
    duration: float = 120.0,
    seed: int = 0,
    n_tcp: int = 3,
    warmup: float = 20.0,
    timescales: Sequence[float] = (1.0, 2.0, 5.0, 10.0, 20.0),
    trace_tau: float = 1.0,
    interpacket_adjustment: bool = True,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> Dict[str, InternetRunResult]:
    """Figures 16/17: every named path, as one sweep over the profiles."""
    if not paths:
        return {}
    base = _base_spec(
        PATHS[paths[0]], n_tcp, duration, warmup, timescales, trace_tau,
        interpacket_adjustment, seed,
    )
    sweep = SweepRunner(
        base,
        {"topology": [PATHS[name].to_dict() for name in paths]},
        parallel=parallel,
        cache_dir=cache_dir,
        progress=progress,
        executor=executor,
        queue_dir=queue_dir,
    ).run()
    results: Dict[str, InternetRunResult] = {}
    for name, cell in zip(paths, sweep.cells):
        assert cell.result is not None
        results[name] = _result_from_cell(cell.result)
    return results
