"""Synthetic Internet paths for Figures 15-17 (substitution).

The paper's section 4.3 runs its userspace TFRC implementation over real
Internet paths (UCL->ACIRI, Mannheim, UMass with Linux and Solaris senders,
Nokia Boston) and Dummynet.  Real transcontinental paths are unavailable
here, so each named path is synthesized as a bottleneck with heavy
uncontrolled cross traffic and per-path quirks chosen to reproduce the
behaviours the paper reports:

* **ucl** -- well-behaved transatlantic path: 1.5 Mb/s bottleneck, ~90 ms
  RTT, moderate cross traffic.  (Figure 15's 3 TCP + 1 TFRC run.)
* **mannheim** -- similar, shorter RTT, lighter load.
* **umass_linux** -- good modern TCP stack: fine timer granularity.
* **umass_solaris** -- the paper's pathological case: "a very aggressive TCP
  retransmission timeout ... frequently retransmits unnecessarily".
  Modelled with a tiny min-RTO and coarse variance handling (rto_k = 1), so
  the competing TCP hurts itself, and TFRC "out-competes" it -- the paper's
  observed unfairness with a *normal* TFRC trace.
* **nokia** -- heavily loaded T1 (1.5 Mb/s) with a shallow DropTail buffer
  close to the source: the phase-effect case that motivated the interpacket
  spacing adjustment.

Each path carries n_tcp TCP flows and one TFRC flow plus ON/OFF cross
traffic, and reports the same equivalence/CoV measures as the simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cov import coefficient_of_variation
from repro.analysis.equivalence import equivalence_ratio
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.core import TfrcFlow
from repro.net import Dumbbell, DumbbellConfig
from repro.net.monitor import FlowMonitor, LinkMonitor
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.flow import TcpFlow
from repro.traffic.onoff import OnOffSource


@dataclass(frozen=True)
class PathProfile:
    """Synthetic stand-in for one of the paper's measurement paths."""

    name: str
    bandwidth_bps: float
    base_rtt: float
    buffer_packets: int
    cross_sources: int
    cross_peak_bps: float
    tcp_min_rto: float
    tcp_granularity: float
    tcp_rto_k: float = 4.0
    queue_type: str = "droptail"


PATHS: Dict[str, PathProfile] = {
    "ucl": PathProfile(
        name="ucl", bandwidth_bps=1.5e6, base_rtt=0.090, buffer_packets=40,
        cross_sources=4, cross_peak_bps=200e3,
        tcp_min_rto=1.0, tcp_granularity=0.5,
    ),
    "mannheim": PathProfile(
        name="mannheim", bandwidth_bps=2.0e6, base_rtt=0.040, buffer_packets=50,
        cross_sources=3, cross_peak_bps=150e3,
        tcp_min_rto=0.4, tcp_granularity=0.2,
    ),
    "umass_linux": PathProfile(
        name="umass_linux", bandwidth_bps=1.5e6, base_rtt=0.070, buffer_packets=40,
        cross_sources=4, cross_peak_bps=200e3,
        tcp_min_rto=0.2, tcp_granularity=0.01,
    ),
    "umass_solaris": PathProfile(
        name="umass_solaris", bandwidth_bps=1.5e6, base_rtt=0.070, buffer_packets=40,
        cross_sources=4, cross_peak_bps=200e3,
        # Aggressive timer: tiny floor and *no* variance margin (RTO ~=
        # SRTT), so queueing jitter triggers spurious timeouts that hurt
        # the TCP itself (Paxson 1997, cited by the paper for this path).
        tcp_min_rto=0.05, tcp_granularity=0.01, tcp_rto_k=0.0,
    ),
    "nokia": PathProfile(
        name="nokia", bandwidth_bps=1.5e6, base_rtt=0.060, buffer_packets=25,
        cross_sources=5, cross_peak_bps=250e3,
        tcp_min_rto=0.5, tcp_granularity=0.5,
    ),
    # The paper's first "less fair" observation (section 4.3): when the
    # network is overloaded enough that flows get close to one packet per
    # RTT, TFRC can take significantly more than its share from a
    # conservative (coarse-RTO) TCP.  This harsher variant reproduces that
    # regime; it is excluded from the Figure 16/17 path set.
    "nokia_overloaded": PathProfile(
        name="nokia_overloaded", bandwidth_bps=1.5e6, base_rtt=0.060,
        buffer_packets=8, cross_sources=6, cross_peak_bps=300e3,
        tcp_min_rto=0.5, tcp_granularity=0.5,
    ),
}

#: The five paths of Figures 16/17.
PAPER_PATHS = ("ucl", "mannheim", "umass_linux", "umass_solaris", "nokia")


@dataclass
class InternetRunResult:
    """One path's run: monitored TCP vs TFRC measures."""

    path: str
    loss_rate: float
    tcp_throughputs_bps: List[float]
    tfrc_throughput_bps: float
    equivalence_by_tau: Dict[float, float] = field(default_factory=dict)
    cov_tcp_by_tau: Dict[float, float] = field(default_factory=dict)
    cov_tfrc_by_tau: Dict[float, float] = field(default_factory=dict)
    tfrc_trace: List[float] = field(default_factory=list)
    tcp_traces: List[List[float]] = field(default_factory=list)


def run_path(
    profile: PathProfile,
    n_tcp: int = 3,
    duration: float = 120.0,
    warmup: float = 20.0,
    timescales: Sequence[float] = (1.0, 2.0, 5.0, 10.0, 20.0),
    trace_tau: float = 1.0,
    interpacket_adjustment: bool = True,
    seed: int = 0,
) -> InternetRunResult:
    """Run n_tcp TCP flows + 1 TFRC flow + cross traffic over one path."""
    registry = RngRegistry(seed)
    rng = registry.stream("topology")
    sim = Simulator()
    config = DumbbellConfig(
        bandwidth_bps=profile.bandwidth_bps,
        delay=profile.base_rtt / 4.0,
        queue_type=profile.queue_type,
        buffer_packets=profile.buffer_packets,
    )
    dumbbell = Dumbbell(sim, config, queue_rng=registry.stream("red"))
    flow_monitor = FlowMonitor()
    link_monitor = LinkMonitor(sim, dumbbell.forward_link, sample_queue=False)

    tcp_ids = []
    for i in range(n_tcp):
        flow_id = f"tcp-{i}"
        tcp_ids.append(flow_id)
        fwd, rev = dumbbell.attach_flow(flow_id, profile.base_rtt * rng.uniform(0.95, 1.05))
        TcpFlow(
            sim, flow_id, fwd, rev, variant="sack",
            on_data=flow_monitor.on_packet,
            min_rto=profile.tcp_min_rto,
            rto_granularity=profile.tcp_granularity,
            rto_k=profile.tcp_rto_k,
        ).start(at=rng.uniform(0.0, 2.0))
    fwd, rev = dumbbell.attach_flow("tfrc", profile.base_rtt)
    TfrcFlow(
        sim, "tfrc", fwd, rev, on_data=flow_monitor.on_packet,
        interpacket_adjustment=interpacket_adjustment,
    ).start(at=rng.uniform(0.0, 2.0))

    cross_rng = registry.stream("cross")
    for i in range(profile.cross_sources):
        flow_id = f"cross-{i}"
        port, _ = dumbbell.attach_flow(flow_id, profile.base_rtt * rng.uniform(0.8, 1.2))
        OnOffSource(
            sim, flow_id, port, rng=cross_rng, peak_rate_bps=profile.cross_peak_bps
        ).start(at=rng.uniform(0.0, 5.0))

    sim.run(until=duration)

    t0, t1 = warmup, duration
    timescales = [t for t in timescales if t <= (t1 - t0) / 2]
    result = InternetRunResult(
        path=profile.name,
        loss_rate=link_monitor.loss_rate(),
        tcp_throughputs_bps=[
            flow_monitor.throughput_bps(fid, t0, t1) for fid in tcp_ids
        ],
        tfrc_throughput_bps=flow_monitor.throughput_bps("tfrc", t0, t1),
    )
    tfrc_arrivals = flow_monitor.arrivals.get("tfrc", [])
    result.tfrc_trace = [
        float(v) for v in arrivals_to_rate_series(tfrc_arrivals, t0, t1, trace_tau)
    ]
    for fid in tcp_ids:
        arrivals = flow_monitor.arrivals.get(fid, [])
        result.tcp_traces.append(
            [float(v) for v in arrivals_to_rate_series(arrivals, t0, t1, trace_tau)]
        )
    for tau in timescales:
        series_tfrc = arrivals_to_rate_series(tfrc_arrivals, t0, t1, tau)
        covs = []
        ratios = []
        for fid in tcp_ids:
            series_tcp = arrivals_to_rate_series(
                flow_monitor.arrivals.get(fid, []), t0, t1, tau
            )
            ratios.append(equivalence_ratio(series_tfrc, series_tcp))
            covs.append(coefficient_of_variation(series_tcp))
        result.equivalence_by_tau[tau] = float(np.nanmean(ratios))
        result.cov_tcp_by_tau[tau] = float(np.mean(covs))
        result.cov_tfrc_by_tau[tau] = coefficient_of_variation(series_tfrc)
    return result


def run_all(
    paths: Sequence[str] = PAPER_PATHS,
    duration: float = 120.0,
    seed: int = 0,
    **kwargs,
) -> Dict[str, InternetRunResult]:
    """Figures 16/17: every named path."""
    return {
        name: run_path(PATHS[name], duration=duration, seed=seed, **kwargs)
        for name in paths
    }
