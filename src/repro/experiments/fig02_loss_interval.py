"""Figure 2: the Average Loss Interval method under idealized periodic loss.

The paper drives a TFRC flow over a link whose loss rate is 1% before t=6 s,
10% from t=6 to t=9, and 0.5% afterwards, with *periodic* (deterministic)
loss, and plots: the current loss interval s0 and the estimated average
interval (top); the estimated loss event rate p and sqrt(p) (middle); and
the transmission rate (bottom).

Expected shape (paper section 3.3):

* a completely stable estimate while the loss rate is constant,
* a rapid rate reduction when the loss rate jumps to 10%,
* a smooth rate increase (no step changes) when it falls to 0.5%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.experiments.common import run_single_tfrc_on_lossy_path
from repro.net.path import periodic_loss, scheduled_loss


@dataclass
class Fig02Result:
    """Time series sampled once per probe interval."""

    times: List[float] = field(default_factory=list)
    current_interval: List[float] = field(default_factory=list)
    estimated_interval: List[float] = field(default_factory=list)
    loss_event_rate: List[float] = field(default_factory=list)
    tx_rate_bytes: List[float] = field(default_factory=list)

    def series_between(self, t0: float, t1: float, name: str) -> List[float]:
        values = getattr(self, name)
        return [v for t, v in zip(self.times, values) if t0 <= t <= t1]


def run(
    duration: float = 16.0,
    rtt: float = 0.1,
    phase1_period: int = 100,   # 1% periodic loss
    phase2_period: int = 10,    # 10%
    phase3_period: int = 200,   # 0.5%
    t_phase2: float = 6.0,
    t_phase3: float = 9.0,
    probe_interval: float = 0.1,
) -> Fig02Result:
    """Run the Figure 2 scenario and sample the estimator state."""
    model = scheduled_loss(
        [
            (0.0, periodic_loss(phase1_period)),
            (t_phase2, periodic_loss(phase2_period)),
            (t_phase3, periodic_loss(phase3_period)),
        ]
    )
    result = Fig02Result()

    def probe(sim, flow) -> None:
        result.times.append(sim.now)
        result.current_interval.append(flow.receiver.detector.open_interval_packets())
        result.estimated_interval.append(flow.receiver.intervals.average_interval())
        result.loss_event_rate.append(flow.receiver.loss_event_rate())
        result.tx_rate_bytes.append(flow.sender.rate)

    run_single_tfrc_on_lossy_path(
        loss_model=model,
        duration=duration,
        rtt=rtt,
        probe=probe,
        probe_interval=probe_interval,
    )
    return result


def summarize(result: Fig02Result, t_phase2: float = 6.0, t_phase3: float = 9.0) -> dict:
    """Key scalars for EXPERIMENTS.md and the bench assertions."""
    stable = result.series_between(4.0, t_phase2 - 0.5, "estimated_interval")
    high = result.series_between(t_phase2 + 1.5, t_phase3, "loss_event_rate")
    low_phase = result.series_between(t_phase3 + 4.0, result.times[-1], "loss_event_rate")
    rate_high = result.series_between(t_phase2 + 1.5, t_phase3, "tx_rate_bytes")
    rate_stable = result.series_between(4.0, t_phase2 - 0.5, "tx_rate_bytes")
    return {
        "stable_interval_mean": sum(stable) / len(stable) if stable else 0.0,
        "stable_interval_spread": (max(stable) - min(stable)) if stable else 0.0,
        "p_during_10pct": sum(high) / len(high) if high else 0.0,
        "p_after_decrease": sum(low_phase) / len(low_phase) if low_phase else 0.0,
        "rate_drop_factor": (
            (sum(rate_stable) / len(rate_stable)) / (sum(rate_high) / len(rate_high))
            if rate_stable and rate_high
            else 0.0
        ),
    }
