"""Figure 2: the Average Loss Interval method under idealized periodic loss.

The paper drives a TFRC flow over a link whose loss rate is 1% before t=6 s,
10% from t=6 to t=9, and 0.5% afterwards, with *periodic* (deterministic)
loss, and plots: the current loss interval s0 and the estimated average
interval (top); the estimated loss event rate p and sqrt(p) (middle); and
the transmission rate (bottom).

Expected shape (paper section 3.3):

* a completely stable estimate while the loss rate is constant,
* a rapid rate reduction when the loss rate jumps to 10%,
* a smooth rate increase (no step changes) when it falls to 0.5%.

The run is one ``fig02_loss_interval`` scenario cell executed through
:class:`~repro.scenarios.sweep.SweepRunner`, so the runner CLI contract
(``--parallel N``, ``--cache``) and spec-hash result caching come for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.scenarios import ScenarioSpec, register_scenario, run_single_cell
from repro.scenarios.builders import (
    loss_model_from_spec,
    periodic_phase,
    run_single_tfrc_on_lossy_path,
)
from repro.scenarios.spec import JsonDict
from repro.scenarios.executors import ExecutorArg
from repro.scenarios.sweep import ProgressFn


@dataclass
class Fig02Result:
    """Time series sampled once per probe interval."""

    times: List[float] = field(default_factory=list)
    current_interval: List[float] = field(default_factory=list)
    estimated_interval: List[float] = field(default_factory=list)
    loss_event_rate: List[float] = field(default_factory=list)
    tx_rate_bytes: List[float] = field(default_factory=list)

    def series_between(self, t0: float, t1: float, name: str) -> List[float]:
        values = getattr(self, name)
        return [v for t, v in zip(self.times, values) if t0 <= t <= t1]


@register_scenario("fig02_loss_interval")
def loss_interval_scenario(spec: ScenarioSpec) -> JsonDict:
    """The Figure 2 probe run as one sweep cell.

    Spec layout::

        topology: {rtt?}
        loss:     {model: "scheduled", phases: [...]} (the 1%/10%/0.5% steps)
        extra:    {probe_interval?}
    """
    series: JsonDict = {
        "times": [],
        "current_interval": [],
        "estimated_interval": [],
        "loss_event_rate": [],
        "tx_rate_bytes": [],
    }

    def probe(sim, flow) -> None:
        series["times"].append(sim.now)
        series["current_interval"].append(
            flow.receiver.detector.open_interval_packets()
        )
        series["estimated_interval"].append(
            flow.receiver.intervals.average_interval()
        )
        series["loss_event_rate"].append(flow.receiver.loss_event_rate())
        series["tx_rate_bytes"].append(flow.sender.rate)

    run_single_tfrc_on_lossy_path(
        loss_model=loss_model_from_spec(dict(spec.loss)),
        duration=spec.duration,
        rtt=float(spec.topology.get("rtt", 0.1)),
        probe=probe,
        probe_interval=float(spec.extra.get("probe_interval", 0.1)),
    )
    return series


def run(
    duration: float = 16.0,
    rtt: float = 0.1,
    phase1_period: int = 100,   # 1% periodic loss
    phase2_period: int = 10,    # 10%
    phase3_period: int = 200,   # 0.5%
    t_phase2: float = 6.0,
    t_phase3: float = 9.0,
    probe_interval: float = 0.1,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> Fig02Result:
    """Run the Figure 2 scenario and sample the estimator state."""
    base = ScenarioSpec(
        scenario="fig02_loss_interval",
        duration=float(duration),
        topology={"rtt": float(rtt)},
        loss={
            "model": "scheduled",
            "phases": [
                periodic_phase(0.0, phase1_period),
                periodic_phase(t_phase2, phase2_period),
                periodic_phase(t_phase3, phase3_period),
            ],
        },
        extra={"probe_interval": float(probe_interval)},
    )
    data = run_single_cell(
        base, parallel=parallel, cache_dir=cache_dir, progress=progress,
        executor=executor, queue_dir=queue_dir,
    )
    return Fig02Result(
        times=list(data["times"]),
        current_interval=list(data["current_interval"]),
        estimated_interval=list(data["estimated_interval"]),
        loss_event_rate=list(data["loss_event_rate"]),
        tx_rate_bytes=list(data["tx_rate_bytes"]),
    )


def summarize(result: Fig02Result, t_phase2: float = 6.0, t_phase3: float = 9.0) -> dict:
    """Key scalars for EXPERIMENTS.md and the bench assertions."""
    stable = result.series_between(4.0, t_phase2 - 0.5, "estimated_interval")
    high = result.series_between(t_phase2 + 1.5, t_phase3, "loss_event_rate")
    low_phase = result.series_between(t_phase3 + 4.0, result.times[-1], "loss_event_rate")
    rate_high = result.series_between(t_phase2 + 1.5, t_phase3, "tx_rate_bytes")
    rate_stable = result.series_between(4.0, t_phase2 - 0.5, "tx_rate_bytes")
    return {
        "stable_interval_mean": sum(stable) / len(stable) if stable else 0.0,
        "stable_interval_spread": (max(stable) - min(stable)) if stable else 0.0,
        "p_during_10pct": sum(high) / len(high) if high else 0.0,
        "p_after_decrease": sum(low_phase) / len(low_phase) if low_phase else 0.0,
        "rate_drop_factor": (
            (sum(rate_stable) / len(rate_stable)) / (sum(rate_high) / len(rate_high))
            if rate_stable and rate_high
            else 0.0
        ),
    }
