"""Figures 3 and 4: TFRC oscillations over a Dummynet pipe.

One TFRC flow crosses a DropTail pipe whose buffer is swept over
{2, 8, 32, 64} packets (the paper's axis is 2..64).  With the RTT EWMA
weight at a small value and **without** the interpacket-spacing adjustment,
the flow overshoots the link and oscillates (Figure 3); enabling the
``sqrt(R0)/M`` adjustment of section 3.4 damps the oscillations (Figure 4).

The measured quantity is the send rate in KB/s sampled over small intervals;
the bench compares the oscillation amplitude (CoV of the rate in steady
state) with and without the adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cov import coefficient_of_variation
from repro.scenarios import ScenarioSpec, SweepRunner, register_scenario
from repro.scenarios.spec import JsonDict
from repro.scenarios.executors import ExecutorArg
from repro.scenarios.sweep import ProgressFn
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.core import TfrcFlow
from repro.net.dummynet import DummynetPipe
from repro.net.monitor import FlowMonitor
from repro.sim import Simulator


@dataclass
class PipeAdapter:
    """Adapt one direction of a DummynetPipe to the flow Port protocol."""

    pipe: DummynetPipe
    direction: str  # "forward" or "reverse"

    def send(self, packet) -> bool:
        if self.direction == "forward":
            return self.pipe.send_forward(packet)
        return self.pipe.send_reverse(packet)

    def connect(self, receiver) -> None:
        if self.direction == "forward":
            self.pipe.connect_forward(receiver)
        else:
            self.pipe.connect_reverse(receiver)


@dataclass
class Fig03Result:
    """Per-buffer-size send-rate series and their steady-state CoV."""

    buffer_sizes: List[int]
    rate_series: Dict[int, List[float]] = field(default_factory=dict)
    cov_by_buffer: Dict[int, float] = field(default_factory=dict)
    mean_rate_by_buffer: Dict[int, float] = field(default_factory=dict)


def run_one(
    buffer_packets: int,
    interpacket_adjustment: bool,
    duration: float = 60.0,
    bandwidth_bps: float = 2e6,
    delay: float = 0.05,
    rtt_ewma_weight: float = 0.05,
    tau: float = 0.5,
) -> Tuple[List[float], float, float]:
    """One pipe run; returns (rate series KB/s, steady-state CoV, mean)."""
    sim = Simulator()
    pipe = DummynetPipe(sim, bandwidth_bps, delay, buffer_packets)
    monitor = FlowMonitor()
    flow = TfrcFlow(
        sim,
        "tfrc",
        PipeAdapter(pipe, "forward"),
        PipeAdapter(pipe, "reverse"),
        on_data=monitor.on_packet,
        rtt_ewma_weight=rtt_ewma_weight,
        interpacket_adjustment=interpacket_adjustment,
    )
    flow.start()
    sim.run(until=duration)
    arrivals = monitor.arrivals.get("tfrc", [])
    t0 = duration * 0.3  # skip slow start
    series = arrivals_to_rate_series(arrivals, t0, duration, tau) / 1024.0
    series_list = [float(v) for v in series]
    return (
        series_list,
        coefficient_of_variation(series_list),
        sum(series_list) / len(series_list) if series_list else 0.0,
    )


@register_scenario("fig03_pipe")
def pipe_scenario(spec: ScenarioSpec) -> JsonDict:
    """Declarative Figure 3/4 pipe run, executable by the sweep runner."""
    series, cov, mean = run_one(
        buffer_packets=int(spec.queue["buffer_packets"]),
        interpacket_adjustment=bool(spec.flows["interpacket_adjustment"]),
        duration=spec.duration,
        bandwidth_bps=float(spec.topology.get("bandwidth_bps", 2e6)),
        delay=float(spec.topology.get("delay", 0.05)),
        rtt_ewma_weight=float(spec.extra.get("rtt_ewma_weight", 0.05)),
        tau=float(spec.extra.get("tau", 0.5)),
    )
    return {"series": series, "cov": cov, "mean": mean}


def run(
    buffer_sizes: Tuple[int, ...] = (2, 8, 32, 64),
    interpacket_adjustment: bool = False,
    duration: float = 60.0,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
    **kwargs,
) -> Fig03Result:
    """Sweep buffer sizes; ``interpacket_adjustment=True`` gives Figure 4.

    The buffer axis runs through the sweep runner, so ``parallel``/
    ``cache_dir`` fan out / re-use the per-buffer pipe simulations.
    """
    base = ScenarioSpec(
        scenario="fig03_pipe",
        duration=duration,
        flows={"interpacket_adjustment": bool(interpacket_adjustment)},
        topology={
            "bandwidth_bps": float(kwargs.pop("bandwidth_bps", 2e6)),
            "delay": float(kwargs.pop("delay", 0.05)),
        },
        extra={
            "rtt_ewma_weight": float(kwargs.pop("rtt_ewma_weight", 0.05)),
            "tau": float(kwargs.pop("tau", 0.5)),
        },
    )
    if kwargs:
        raise TypeError(f"unknown run() arguments: {sorted(kwargs)}")
    sweep = SweepRunner(
        base,
        {"queue.buffer_packets": [int(b) for b in buffer_sizes]},
        parallel=parallel,
        cache_dir=cache_dir,
        progress=progress,
        executor=executor,
        queue_dir=queue_dir,
    ).run()
    result = Fig03Result(buffer_sizes=list(buffer_sizes))
    for buffer_packets, cell in zip(buffer_sizes, sweep.cells):
        assert cell.result is not None
        result.rate_series[buffer_packets] = list(cell.result["series"])
        result.cov_by_buffer[buffer_packets] = float(cell.result["cov"])
        result.mean_rate_by_buffer[buffer_packets] = float(cell.result["mean"])
    return result
