"""Backwards-compatible re-exports of the scenario builders.

The shared scenario builders now live in :mod:`repro.scenarios.builders`
(one subsystem for specs, builders, and sweeps); this module keeps the
historical ``repro.experiments.common`` import path working for existing
figure modules, tests, and downstream studies.
"""

from repro.scenarios.builders import (
    RTT_RANGE,
    START_RANGE,
    MixedDumbbellResult,
    SingleTfrcResult,
    build_mixed_dumbbell,
    run_mixed_dumbbell,
    run_single_tfrc_on_lossy_path,
    steady_state_window,
)

__all__ = [
    "RTT_RANGE",
    "START_RANGE",
    "MixedDumbbellResult",
    "SingleTfrcResult",
    "build_mixed_dumbbell",
    "run_mixed_dumbbell",
    "run_single_tfrc_on_lossy_path",
    "steady_state_window",
]
