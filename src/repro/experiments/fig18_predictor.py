"""Figure 18: prediction quality of the TFRC loss estimator.

Section 4.4 scores loss-rate predictors on real loss traces: for history
sizes {2, 4, 8, 16, 32} and for constant vs decreasing weights, the average
error in predicting the next loss interval's rate.  The paper's traces come
from Internet experiments; ours come from simulated paths with ON/OFF cross
traffic (the substitution preserves what matters: bursty, non-stationary
loss interval sequences).

The expected shape: errors are broadly flat across history sizes with a
shallow optimum around 8 intervals, and decreasing weights do no worse than
constant weights.

Each trace collection (one path, one seed) is a registered ``fig18_trace``
scenario cell, so multi-path trace gathering runs as a
:class:`~repro.scenarios.sweep.SweepRunner` sweep (``--parallel``/
``--cache``); the predictor scoring itself is cheap numpy post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.predictor import predictor_errors
from repro.experiments.internet import PATHS, PathProfile
from repro.scenarios import ScenarioSpec, SweepRunner, register_scenario
from repro.scenarios.builders import run_tfrc_probe_path
from repro.scenarios.spec import JsonDict
from repro.scenarios.executors import ExecutorArg
from repro.scenarios.sweep import ProgressFn

PAPER_HISTORY_SIZES = (2, 4, 8, 16, 32)


@dataclass
class Fig18Result:
    """Mean error / error std per (history size, weighting scheme)."""

    history_sizes: List[int]
    constant_weights: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    decreasing_weights: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    trace_lengths: List[int] = field(default_factory=list)


def collect_loss_intervals(
    profile: PathProfile,
    duration: float = 150.0,
    seed: int = 0,
) -> List[float]:
    """Run one TFRC flow over a synthetic path; return its loss intervals."""
    run = run_tfrc_probe_path(profile, duration=duration, seed=seed)
    assert run.tfrc_flow is not None
    events = run.tfrc_flow.receiver.detector.events
    return [float(e.closed_interval) for e in events[1:]]  # skip the seed event


@register_scenario("fig18_trace")
def trace_scenario(spec: ScenarioSpec) -> JsonDict:
    """One loss-interval trace collection as a sweep cell.

    Spec layout::

        topology: the full :class:`PathProfile` as plain data

    The cell's ``seed`` is the spec seed (the runner sweeps an explicit
    ``seed`` axis zipped with the path axis via per-cell overrides).
    """
    profile = PathProfile.from_dict(dict(spec.topology))
    intervals = collect_loss_intervals(
        profile, duration=spec.duration, seed=spec.seed
    )
    return {"path": profile.name, "intervals": intervals}


def run(
    history_sizes: Sequence[int] = PAPER_HISTORY_SIZES,
    paths: Sequence[str] = ("ucl", "umass_linux", "nokia"),
    duration: float = 150.0,
    seed: int = 0,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> Fig18Result:
    """Score both weighting schemes on traces from several paths.

    Trace collection (the expensive part) is one sweep cell per path; the
    cells keep the historical per-path seeds (``seed + path_index``) via an
    explicit ``seed`` override zipped with the path axis.
    """
    if not paths:
        raise ValueError("paths must not be empty")
    base = ScenarioSpec(
        scenario="fig18_trace",
        duration=float(duration),
        seed=seed,
        topology=PATHS[paths[0]].to_dict(),
    )
    sweep = SweepRunner(
        base,
        {
            ("topology", "seed"): [
                (PATHS[name].to_dict(), seed + index)
                for index, name in enumerate(paths)
            ]
        },
        parallel=parallel,
        cache_dir=cache_dir,
        progress=progress,
        executor=executor,
        queue_dir=queue_dir,
    ).run()
    traces = []
    for name, cell in zip(paths, sweep.cells):
        assert cell.result is not None
        trace = [float(v) for v in cell.result["intervals"]]
        if len(trace) > max(history_sizes) + 5:
            traces.append(trace)
    if not traces:
        raise RuntimeError("no usable loss traces were collected")
    result = Fig18Result(history_sizes=list(history_sizes))
    result.trace_lengths = [len(t) for t in traces]
    for history in history_sizes:
        for decreasing, bucket in (
            (False, result.constant_weights),
            (True, result.decreasing_weights),
        ):
            errors = []
            stds = []
            for trace in traces:
                mean_err, std_err = predictor_errors(trace, history, decreasing)
                errors.append(mean_err)
                stds.append(std_err)
            bucket[history] = (float(np.mean(errors)), float(np.mean(stds)))
    return result
