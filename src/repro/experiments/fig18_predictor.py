"""Figure 18: prediction quality of the TFRC loss estimator.

Section 4.4 scores loss-rate predictors on real loss traces: for history
sizes {2, 4, 8, 16, 32} and for constant vs decreasing weights, the average
error in predicting the next loss interval's rate.  The paper's traces come
from Internet experiments; ours come from simulated paths with ON/OFF cross
traffic (the substitution preserves what matters: bursty, non-stationary
loss interval sequences).

The expected shape: errors are broadly flat across history sizes with a
shallow optimum around 8 intervals, and decreasing weights do no worse than
constant weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.predictor import predictor_errors
from repro.experiments.internet import PATHS, PathProfile
from repro.net import Dumbbell, DumbbellConfig
from repro.net.monitor import FlowMonitor
from repro.core import TfrcFlow
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.traffic.onoff import OnOffSource

PAPER_HISTORY_SIZES = (2, 4, 8, 16, 32)


@dataclass
class Fig18Result:
    """Mean error / error std per (history size, weighting scheme)."""

    history_sizes: List[int]
    constant_weights: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    decreasing_weights: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    trace_lengths: List[int] = field(default_factory=list)


def collect_loss_intervals(
    profile: PathProfile,
    duration: float = 150.0,
    seed: int = 0,
) -> List[float]:
    """Run one TFRC flow over a synthetic path; return its loss intervals."""
    registry = RngRegistry(seed)
    rng = registry.stream("topology")
    sim = Simulator()
    config = DumbbellConfig(
        bandwidth_bps=profile.bandwidth_bps,
        delay=profile.base_rtt / 4.0,
        queue_type=profile.queue_type,
        buffer_packets=profile.buffer_packets,
    )
    dumbbell = Dumbbell(sim, config, queue_rng=registry.stream("red"))
    monitor = FlowMonitor()
    fwd, rev = dumbbell.attach_flow("tfrc", profile.base_rtt)
    flow = TfrcFlow(sim, "tfrc", fwd, rev, on_data=monitor.on_packet)
    flow.start()
    cross_rng = registry.stream("cross")
    for i in range(profile.cross_sources):
        flow_id = f"cross-{i}"
        port, _ = dumbbell.attach_flow(flow_id, profile.base_rtt)
        OnOffSource(
            sim, flow_id, port, rng=cross_rng, peak_rate_bps=profile.cross_peak_bps
        ).start(at=rng.uniform(0.0, 5.0))
    sim.run(until=duration)
    events = flow.receiver.detector.events
    return [float(e.closed_interval) for e in events[1:]]  # skip the seed event


def run(
    history_sizes: Sequence[int] = PAPER_HISTORY_SIZES,
    paths: Sequence[str] = ("ucl", "umass_linux", "nokia"),
    duration: float = 150.0,
    seed: int = 0,
) -> Fig18Result:
    """Score both weighting schemes on traces from several paths."""
    traces = []
    for index, name in enumerate(paths):
        trace = collect_loss_intervals(PATHS[name], duration=duration, seed=seed + index)
        if len(trace) > max(history_sizes) + 5:
            traces.append(trace)
    if not traces:
        raise RuntimeError("no usable loss traces were collected")
    result = Fig18Result(history_sizes=list(history_sizes))
    result.trace_lengths = [len(t) for t in traces]
    for history in history_sizes:
        for decreasing, bucket in (
            (False, result.constant_weights),
            (True, result.decreasing_weights),
        ):
            errors = []
            stds = []
            for trace in traces:
                mean_err, std_err = predictor_errors(trace, history, decreasing)
                errors.append(mean_err)
                stds.append(std_err)
            bucket[history] = (float(np.mean(errors)), float(np.mean(stds)))
    return result
