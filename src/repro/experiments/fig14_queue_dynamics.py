"""Figure 14: queue dynamics under 40 long-lived TCP vs 40 TFRC flows.

The paper's scenario: a 15 Mb/s DropTail bottleneck, round-trip times around
45 ms, 40 long-lived flows with start times spaced over the first 20 s, 20%
of the link used by short-lived background TCP, and a little reverse-path
traffic.  Both the all-TCP and the all-TFRC variants reach ~99% utilization;
the claim under test is that TFRC "does not have a negative impact on queue
dynamics": comparable queue occupancy and drop rate (the paper reports 4.9%
drops for TCP vs 3.5% for TFRC).

Each protocol variant is one ``fig14_queue_dynamics`` scenario cell, so the
TCP-vs-TFRC comparison runs as a two-cell
:class:`~repro.scenarios.sweep.SweepRunner` grid (``--parallel 2`` runs the
variants concurrently; ``--cache`` re-uses them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core import TfrcFlow
from repro.net import Dumbbell, DumbbellConfig
from repro.net.monitor import FlowMonitor, LinkMonitor
from repro.scenarios import ScenarioSpec, SweepRunner, register_scenario
from repro.scenarios.spec import JsonDict
from repro.scenarios.executors import ExecutorArg
from repro.scenarios.sweep import ProgressFn
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.flow import TcpFlow
from repro.traffic.cbr import CbrSource
from repro.traffic.web import WebTrafficSource


@dataclass
class QueueDynamicsResult:
    """One protocol's run: queue samples plus link statistics."""

    protocol: str
    queue_series: List[Tuple[float, int]]
    drop_rate: float
    utilization: float
    mean_queue: float
    queue_std: float


@dataclass
class Fig14Result:
    tcp: QueueDynamicsResult
    tfrc: QueueDynamicsResult


def run_one(
    protocol: str,
    n_flows: int = 40,
    link_bps: float = 15e6,
    duration: float = 30.0,
    base_rtt: float = 0.045,
    start_spread: float = 20.0,
    buffer_packets: int = 250,
    web_fraction: float = 0.2,
    seed: int = 0,
    queue_type: str = "droptail",
    net_fastpath: bool = True,
) -> QueueDynamicsResult:
    """Run the Figure 14 scenario with all long-lived flows of one protocol.

    The paper's setup uses a DropTail bottleneck; ``queue_type="red"`` swaps
    in a RED queue (used by the net-fastpath equivalence tests), and
    ``net_fastpath=False`` pins the legacy network layer.
    """
    if protocol not in ("tcp", "tfrc"):
        raise ValueError("protocol must be 'tcp' or 'tfrc'")
    registry = RngRegistry(seed)
    rng = registry.stream("topology")
    sim = Simulator()
    config = DumbbellConfig(
        bandwidth_bps=link_bps,
        delay=0.010,
        queue_type=queue_type,
        buffer_packets=buffer_packets,
    )
    dumbbell = Dumbbell(
        sim, config, queue_rng=registry.stream("red"),
        net_fastpath=net_fastpath,
    )
    flow_monitor = FlowMonitor()
    link_monitor = LinkMonitor(sim, dumbbell.forward_link, sample_queue=True)

    for i in range(n_flows):
        flow_id = f"{protocol}-{i}"
        rtt = base_rtt * rng.uniform(0.9, 1.1)
        fwd, rev = dumbbell.attach_flow(flow_id, rtt)
        if protocol == "tcp":
            flow = TcpFlow(sim, flow_id, fwd, rev, variant="sack",
                           on_data=flow_monitor.on_packet,
                           incremental_sack=net_fastpath)
        else:
            flow = TfrcFlow(sim, flow_id, fwd, rev, on_data=flow_monitor.on_packet)
        flow.start(at=rng.uniform(0.0, start_spread))

    # Short-lived background web TCP at ~web_fraction of the link.
    mean_size = 20.0
    arrival_rate = web_fraction * link_bps / 8.0 / (mean_size * 1000)

    def port_pair(flow_id: str):
        return dumbbell.attach_flow(flow_id, base_rtt * rng.uniform(0.9, 1.1))

    web = WebTrafficSource(
        sim, port_pair, rng=registry.stream("web"),
        arrival_rate=arrival_rate, mean_size_packets=mean_size,
    )
    web.start(at=0.0)

    # A small amount of reverse-path traffic.
    reverse_cbr_port, _ = dumbbell.attach_flow("rev-cbr", base_rtt)
    # Reverse traffic flows on the reverse link; attach via the reverse port.
    _, rev_port = dumbbell.attach_flow("rev-cbr-2", base_rtt)
    CbrSource(sim, "rev-cbr-2", rev_port, rate_bps=0.05 * link_bps).start(at=0.0)

    sim.run(until=duration)

    samples = link_monitor.queue_series(t_min=duration * 0.2)
    depths = np.array([depth for _, depth in samples], dtype=float)
    return QueueDynamicsResult(
        protocol=protocol,
        queue_series=samples,
        drop_rate=link_monitor.loss_rate(),
        utilization=link_monitor.utilization(duration),
        mean_queue=float(depths.mean()) if depths.size else 0.0,
        queue_std=float(depths.std()) if depths.size else 0.0,
    )


@register_scenario("fig14_queue_dynamics")
def queue_dynamics_scenario(spec: ScenarioSpec) -> JsonDict:
    """One Figure 14 protocol variant as a sweep cell.

    Spec layout::

        topology: {bandwidth_bps?, base_rtt?, start_spread?}
        flows:    {protocol, n_flows?}
        queue:    {buffer_packets?, type?}
        extra:    {web_fraction?, net_fastpath?}
    """
    result = run_one(
        protocol=str(spec.flows["protocol"]),
        n_flows=int(spec.flows.get("n_flows", 40)),
        link_bps=float(spec.topology.get("bandwidth_bps", 15e6)),
        duration=spec.duration,
        base_rtt=float(spec.topology.get("base_rtt", 0.045)),
        start_spread=float(spec.topology.get("start_spread", 20.0)),
        buffer_packets=int(spec.queue.get("buffer_packets", 250)),
        web_fraction=float(spec.extra.get("web_fraction", 0.2)),
        seed=spec.seed,
        queue_type=str(spec.queue.get("type", "droptail")),
        net_fastpath=bool(spec.extra.get("net_fastpath", True)),
    )
    return {
        "protocol": result.protocol,
        "queue_series": [[float(t), int(d)] for t, d in result.queue_series],
        "drop_rate": result.drop_rate,
        "utilization": result.utilization,
        "mean_queue": result.mean_queue,
        "queue_std": result.queue_std,
    }


def _result_from_cell(data: JsonDict) -> QueueDynamicsResult:
    return QueueDynamicsResult(
        protocol=str(data["protocol"]),
        queue_series=[(float(t), int(d)) for t, d in data["queue_series"]],
        drop_rate=float(data["drop_rate"]),
        utilization=float(data["utilization"]),
        mean_queue=float(data["mean_queue"]),
        queue_std=float(data["queue_std"]),
    )


def run(
    duration: float = 30.0,
    seed: int = 0,
    n_flows: int = 40,
    link_bps: float = 15e6,
    base_rtt: float = 0.045,
    start_spread: float = 20.0,
    buffer_packets: int = 250,
    web_fraction: float = 0.2,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> Fig14Result:
    """Both variants of the Figure 14 scenario as a two-cell sweep."""
    base = ScenarioSpec(
        scenario="fig14_queue_dynamics",
        duration=float(duration),
        seed=seed,
        topology={
            "bandwidth_bps": float(link_bps),
            "base_rtt": float(base_rtt),
            "start_spread": float(start_spread),
        },
        flows={"protocol": "tcp", "n_flows": int(n_flows)},
        queue={"buffer_packets": int(buffer_packets)},
        extra={"web_fraction": float(web_fraction)},
    )
    sweep = SweepRunner(
        base,
        {"flows.protocol": ["tcp", "tfrc"]},
        parallel=parallel,
        cache_dir=cache_dir,
        progress=progress,
        executor=executor,
        queue_dir=queue_dir,
    ).run()
    by_protocol = {}
    for cell in sweep.cells:
        assert cell.result is not None
        result = _result_from_cell(cell.result)
        by_protocol[result.protocol] = result
    return Fig14Result(tcp=by_protocol["tcp"], tfrc=by_protocol["tfrc"])
