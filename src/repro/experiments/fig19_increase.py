"""Figure 19 / Appendix A.1: the bounded increase rate of TFRC.

One TFRC flow experiences a drop every 100th packet; at t=10 the loss stops
entirely.  The paper observes the allowed sending rate (packets per RTT):

* the flow does not increase at all until the current loss interval exceeds
  the average (~0.75 s after the loss stops);
* it then increases by ~0.12 packets/RTT each RTT;
* once history discounting engages (around t=11.5), the increase rate grows
  to at most ~0.28 packets/RTT.

The experiment samples the sender's allowed rate every RTT and reports the
observed per-RTT increments before and after discounting engages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.equations import (
    DELTA_T_DISCOUNTED_BOUND,
    DELTA_T_EQ1_BOUND,
    analytic_rate_increase,
)
from repro.experiments.common import run_single_tfrc_on_lossy_path
from repro.net.path import periodic_loss, scheduled_loss


@dataclass
class Fig19Result:
    times: List[float] = field(default_factory=list)
    rate_pkts_per_rtt: List[float] = field(default_factory=list)
    loss_stop_time: float = 10.0
    rtt: float = 0.1

    def increments(self, t0: float, t1: float) -> List[float]:
        """Per-sample rate increments (packets/RTT) within [t0, t1]."""
        pairs = [
            (t, r)
            for t, r in zip(self.times, self.rate_pkts_per_rtt)
            if t0 <= t <= t1
        ]
        return [b[1] - a[1] for a, b in zip(pairs, pairs[1:])]

    def max_increment(self, t0: float, t1: float) -> float:
        increments = self.increments(t0, t1)
        return max(increments) if increments else 0.0

    def mean_slope(self, t0: float, t1: float) -> float:
        """Average rate growth in packets/RTT per RTT over [t0, t1].

        This is the quantity the paper reports ("increases its sending rate
        by 0.12 packets each RTT"); per-sample increments are noisy because
        the feedback clock and the probe clock drift in phase.
        """
        pairs = [
            (t, r)
            for t, r in zip(self.times, self.rate_pkts_per_rtt)
            if t0 <= t <= t1
        ]
        if len(pairs) < 2:
            return 0.0
        (ta, ra), (tb, rb) = pairs[0], pairs[-1]
        if tb <= ta:
            return 0.0
        return (rb - ra) / ((tb - ta) / self.rtt)

    def increase_start_time(self) -> float:
        """First time after loss stops at which the rate exceeds its plateau."""
        plateau = None
        for t, r in zip(self.times, self.rate_pkts_per_rtt):
            if t >= self.loss_stop_time:
                if plateau is None:
                    plateau = r
                elif r > plateau * 1.02:
                    return t
        return float("inf")


def run(
    loss_period: int = 100,
    loss_stop_time: float = 10.0,
    duration: float = 13.0,
    rtt: float = 0.1,
    history_discounting: bool = True,
) -> Fig19Result:
    """Run the Appendix A.1 scenario, sampling once per RTT."""

    def no_loss(packet, now) -> bool:
        return False

    model = scheduled_loss(
        [(0.0, periodic_loss(loss_period)), (loss_stop_time, no_loss)]
    )
    result = Fig19Result(loss_stop_time=loss_stop_time, rtt=rtt)

    def probe(sim, flow) -> None:
        result.times.append(sim.now)
        result.rate_pkts_per_rtt.append(flow.sender.rate * rtt / flow.sender.packet_size)

    run_single_tfrc_on_lossy_path(
        loss_model=model,
        duration=duration,
        rtt=rtt,
        probe=probe,
        probe_interval=rtt,
        history_discounting=history_discounting,
    )
    return result


def analytic_bounds(average_interval: float = 100.0) -> dict:
    """The closed-form Appendix A.1 numbers for comparison."""
    return {
        "delta_normal_simple": analytic_rate_increase(average_interval, 1.0 / 6.0),
        "delta_discounted_simple": analytic_rate_increase(average_interval, 0.4),
        "paper_bound_eq1": DELTA_T_EQ1_BOUND,
        "paper_bound_discounted": DELTA_T_DISCOUNTED_BOUND,
    }
