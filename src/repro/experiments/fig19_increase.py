"""Figure 19 / Appendix A.1: the bounded increase rate of TFRC.

One TFRC flow experiences a drop every 100th packet; at t=10 the loss stops
entirely.  The paper observes the allowed sending rate (packets per RTT):

* the flow does not increase at all until the current loss interval exceeds
  the average (~0.75 s after the loss stops);
* it then increases by ~0.12 packets/RTT each RTT;
* once history discounting engages (around t=11.5), the increase rate grows
  to at most ~0.28 packets/RTT.

The experiment samples the sender's allowed rate every RTT and reports the
observed per-RTT increments before and after discounting engages.  Each run
is one ``fig19_increase`` scenario cell (the step-loss pattern is plain
spec data), executed through the sweep runner for ``--parallel``/``--cache``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.equations import (
    DELTA_T_DISCOUNTED_BOUND,
    DELTA_T_EQ1_BOUND,
    analytic_rate_increase,
)
from repro.scenarios import ScenarioSpec, register_scenario, run_single_cell
from repro.scenarios.builders import (
    lossless_phase,
    loss_model_from_spec,
    periodic_phase,
    run_single_tfrc_on_lossy_path,
)
from repro.scenarios.spec import JsonDict
from repro.scenarios.executors import ExecutorArg
from repro.scenarios.sweep import ProgressFn


@dataclass
class Fig19Result:
    times: List[float] = field(default_factory=list)
    rate_pkts_per_rtt: List[float] = field(default_factory=list)
    loss_stop_time: float = 10.0
    rtt: float = 0.1

    def increments(self, t0: float, t1: float) -> List[float]:
        """Per-sample rate increments (packets/RTT) within [t0, t1]."""
        pairs = [
            (t, r)
            for t, r in zip(self.times, self.rate_pkts_per_rtt)
            if t0 <= t <= t1
        ]
        return [b[1] - a[1] for a, b in zip(pairs, pairs[1:])]

    def max_increment(self, t0: float, t1: float) -> float:
        increments = self.increments(t0, t1)
        return max(increments) if increments else 0.0

    def mean_slope(self, t0: float, t1: float) -> float:
        """Average rate growth in packets/RTT per RTT over [t0, t1].

        This is the quantity the paper reports ("increases its sending rate
        by 0.12 packets each RTT"); per-sample increments are noisy because
        the feedback clock and the probe clock drift in phase.
        """
        pairs = [
            (t, r)
            for t, r in zip(self.times, self.rate_pkts_per_rtt)
            if t0 <= t <= t1
        ]
        if len(pairs) < 2:
            return 0.0
        (ta, ra), (tb, rb) = pairs[0], pairs[-1]
        if tb <= ta:
            return 0.0
        return (rb - ra) / ((tb - ta) / self.rtt)

    def increase_start_time(self) -> float:
        """First time after loss stops at which the rate exceeds its plateau."""
        plateau = None
        for t, r in zip(self.times, self.rate_pkts_per_rtt):
            if t >= self.loss_stop_time:
                if plateau is None:
                    plateau = r
                elif r > plateau * 1.02:
                    return t
        return float("inf")


@register_scenario("fig19_increase")
def increase_scenario(spec: ScenarioSpec) -> JsonDict:
    """The Appendix A.1 probe run as one sweep cell.

    Spec layout::

        topology: {rtt?}
        loss:     {model: "scheduled", phases: [...]} (loss stops mid-run)
        extra:    {probe_interval?, history_discounting?}
    """
    rtt = float(spec.topology.get("rtt", 0.1))
    series: JsonDict = {"times": [], "rate_pkts_per_rtt": []}

    def probe(sim, flow) -> None:
        series["times"].append(sim.now)
        series["rate_pkts_per_rtt"].append(
            flow.sender.rate * rtt / flow.sender.packet_size
        )

    run_single_tfrc_on_lossy_path(
        loss_model=loss_model_from_spec(dict(spec.loss)),
        duration=spec.duration,
        rtt=rtt,
        probe=probe,
        probe_interval=float(spec.extra.get("probe_interval", rtt)),
        history_discounting=bool(spec.extra.get("history_discounting", True)),
    )
    return series


def run(
    loss_period: int = 100,
    loss_stop_time: float = 10.0,
    duration: float = 13.0,
    rtt: float = 0.1,
    history_discounting: bool = True,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> Fig19Result:
    """Run the Appendix A.1 scenario, sampling once per RTT."""
    base = ScenarioSpec(
        scenario="fig19_increase",
        duration=float(duration),
        topology={"rtt": float(rtt)},
        loss={
            "model": "scheduled",
            "phases": [
                periodic_phase(0.0, loss_period),
                lossless_phase(loss_stop_time),
            ],
        },
        extra={
            "probe_interval": float(rtt),
            "history_discounting": bool(history_discounting),
        },
    )
    data = run_single_cell(
        base, parallel=parallel, cache_dir=cache_dir, progress=progress,
        executor=executor, queue_dir=queue_dir,
    )
    return Fig19Result(
        times=list(data["times"]),
        rate_pkts_per_rtt=list(data["rate_pkts_per_rtt"]),
        loss_stop_time=loss_stop_time,
        rtt=rtt,
    )


def analytic_bounds(average_interval: float = 100.0) -> dict:
    """The closed-form Appendix A.1 numbers for comparison."""
    return {
        "delta_normal_simple": analytic_rate_increase(average_interval, 1.0 / 6.0),
        "delta_discounted_simple": analytic_rate_increase(average_interval, 0.4),
        "paper_bound_eq1": DELTA_T_EQ1_BOUND,
        "paper_bound_discounted": DELTA_T_DISCOUNTED_BOUND,
    }
