"""CLI: run a paper experiment by figure id and print its headline numbers.

Usage::

    tfrc-experiment fig02
    tfrc-experiment fig06 --quick
    tfrc-experiment all --quick
    tfrc-experiment fig09 --plot     # append a text chart of the figure
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict


def _fig02(quick: bool, plot: bool = False, **sweep: object) -> None:
    from repro.experiments import fig02_loss_interval as fig02

    result = fig02.run(duration=12.0 if quick else 16.0, **sweep)
    summary = fig02.summarize(result)
    print("Figure 2 (Average Loss Interval under periodic loss)")
    for key, value in summary.items():
        print(f"  {key:28s} {value:.4f}")
    if plot:
        from repro.analysis.charts import line_chart, sparkline

        print()
        print(line_chart(
            {
                "current interval s0": list(zip(result.times, result.current_interval)),
                "estimated interval": list(zip(result.times, result.estimated_interval)),
            },
            title="Fig 2 (top): loss intervals",
            x_label="time (s)", y_label="packets",
        ))
        print()
        print("TX rate trace: " + sparkline(result.tx_rate_bytes, width=64))


def _fig03(quick: bool, plot: bool = False, **sweep: object) -> None:
    from repro.experiments import fig03_oscillation as fig03

    buffers = (8, 32) if quick else (2, 8, 32, 64)
    duration = 30.0 if quick else 60.0
    plain = fig03.run(
        buffer_sizes=buffers, interpacket_adjustment=False, duration=duration,
        **sweep,
    )
    damped = fig03.run(
        buffer_sizes=buffers, interpacket_adjustment=True, duration=duration,
        **sweep,
    )
    print("Figures 3/4 (oscillation CoV without -> with interpacket adjustment)")
    for b in buffers:
        print(
            f"  buffer {b:3d}: {plain.cov_by_buffer[b]:.3f} -> "
            f"{damped.cov_by_buffer[b]:.3f}"
        )


def _fig05(quick: bool, plot: bool = False, **sweep: object) -> None:
    from repro.experiments import fig05_loss_event_fraction as fig05

    result = fig05.run(monte_carlo=not quick, **sweep)
    print("Figure 5 (loss-event fraction vs loss probability)")
    for multiplier, curve in sorted(result.p_event_by_multiplier.items()):
        gap = result.max_relative_gap(multiplier)
        print(f"  rate x{multiplier:3.1f}: max (p_loss-p_event)/p_loss = {gap:.3f}")
    if plot:
        from repro.analysis.charts import line_chart

        series = {"y=x": [(p, p) for p in result.p_loss_values]}
        for multiplier, curve in sorted(result.p_event_by_multiplier.items()):
            series[f"rate x{multiplier:g}"] = list(
                zip(result.p_loss_values, curve)
            )
        print()
        print(line_chart(series, title="Fig 5: loss-event fraction",
                         x_label="loss probability",
                         y_label="loss-event fraction"))


def _fig06(quick: bool, plot: bool = False, **sweep: object) -> None:
    from repro.experiments import fig06_fairness_grid as fig06

    rates = (8, 16) if quick else (1, 2, 4, 8, 16, 32, 64)
    flows = (8, 32) if quick else (2, 8, 32, 128)
    duration = 60.0 if quick else 90.0
    result = fig06.run(
        link_rates_mbps=rates, flow_counts=flows, duration=duration, **sweep
    )
    print("Figure 6 (normalized TCP throughput vs TFRC)")
    for cell in result.cells:
        print(
            f"  {cell.queue_type:8s} {cell.link_bps/1e6:5.0f}Mb/s "
            f"{cell.total_flows:4d} flows: TCP {cell.mean_tcp_normalized:.2f} "
            f"TFRC {cell.mean_tfrc_normalized:.2f} util {cell.utilization:.2f}"
        )


def _fig08(quick: bool, plot: bool = False, **sweep: object) -> None:
    from repro.experiments import fig08_smoothness as fig08

    results = fig08.run_queues(
        queue_types=("red", "droptail"), duration=20.0 if quick else 30.0,
        **sweep,
    )
    for queue_type, result in results.items():
        print(
            f"Figure 8 ({queue_type}): mean CoV at 0.15s -- "
            f"TCP {result.mean_cov_tcp:.2f}, TFRC {result.mean_cov_tfrc:.2f}"
        )


def _fig09(quick: bool, plot: bool = False, **sweep: object) -> None:
    from repro.experiments import fig09_equivalence as fig09

    result = fig09.run(
        runs=2 if quick else 14,
        duration=60.0 if quick else 150.0,
        measure_seconds=40.0 if quick else 100.0,
        **sweep,
    )
    print("Figure 9 (equivalence ratio) / Figure 10 (CoV)")
    print("  tau    TFRC/TFRC  TCP/TCP  TFRC/TCP  CoV(TCP)  CoV(TFRC)")
    for tau in result.timescales:
        ee, _ = result.equivalence_tfrc_tfrc[tau]
        cc, _ = result.equivalence_tcp_tcp[tau]
        ec, _ = result.equivalence_tfrc_tcp[tau]
        ct, _ = result.cov_tcp[tau]
        cf, _ = result.cov_tfrc[tau]
        print(f"  {tau:5.1f}  {ee:9.2f}  {cc:7.2f}  {ec:8.2f}  {ct:8.2f}  {cf:9.2f}")
    if plot:
        from repro.analysis.charts import line_chart

        taus = list(result.timescales)
        print()
        print(line_chart(
            {
                "TFRC vs TFRC": [(t, result.equivalence_tfrc_tfrc[t][0]) for t in taus],
                "TCP vs TCP": [(t, result.equivalence_tcp_tcp[t][0]) for t in taus],
                "TFRC vs TCP": [(t, result.equivalence_tfrc_tcp[t][0]) for t in taus],
            },
            title="Fig 9: equivalence ratio", log_x=True,
            x_label="timescale (s)", y_label="equivalence",
        ))
        print()
        print(line_chart(
            {
                "TFRC": [(t, result.cov_tfrc[t][0]) for t in taus],
                "TCP": [(t, result.cov_tcp[t][0]) for t in taus],
            },
            title="Fig 10: coefficient of variation", log_x=True,
            x_label="timescale (s)", y_label="CoV",
        ))


def _fig11(quick: bool, plot: bool = False, **sweep: object) -> None:
    from repro.experiments import fig11_onoff as fig11

    counts = (60, 100) if quick else fig11.PAPER_SOURCE_COUNTS
    result = fig11.run(
        source_counts=counts, duration=100.0 if quick else 200.0, **sweep
    )
    print("Figures 11-13 (ON/OFF background traffic)")
    for run_result in result.runs:
        eq = run_result.equivalence_by_tau
        longest = max(eq) if eq else None
        eq_long = eq[longest] if longest else float("nan")
        print(
            f"  {run_result.sources:4d} sources: loss {run_result.loss_rate:.3f}, "
            f"equivalence@{longest}s {eq_long:.2f}"
        )


def _fig14(quick: bool, plot: bool = False, **sweep: object) -> None:
    from repro.experiments import fig14_queue_dynamics as fig14

    result = fig14.run(duration=20.0 if quick else 30.0, **sweep)
    print("Figure 14 (queue dynamics, 40 long-lived flows)")
    for res in (result.tcp, result.tfrc):
        print(
            f"  {res.protocol:5s}: drop {res.drop_rate:.3f} util {res.utilization:.3f} "
            f"queue mean {res.mean_queue:.1f} +- {res.queue_std:.1f}"
        )


def _fig15(quick: bool, plot: bool = False, **sweep: object) -> None:
    from repro.experiments import internet

    result = internet.run_path(
        internet.PATHS["ucl"], n_tcp=3, duration=60.0 if quick else 120.0,
        **sweep,
    )
    print("Figure 15 (3 TCP + 1 TFRC over the synthetic UCL path)")
    mean_tcp = sum(result.tcp_throughputs_bps) / len(result.tcp_throughputs_bps)
    print(f"  TFRC {result.tfrc_throughput_bps/1e3:.0f} kb/s, TCP mean {mean_tcp/1e3:.0f} kb/s")
    print(f"  loss rate {result.loss_rate:.3f}")


def _fig16(quick: bool, plot: bool = False, **sweep: object) -> None:
    from repro.experiments import internet

    results = internet.run_all(duration=60.0 if quick else 120.0, **sweep)
    print("Figures 16/17 (Internet paths): equivalence / CoV at tau=10s")
    for name, res in results.items():
        tau = max(res.equivalence_by_tau)
        print(
            f"  {name:14s} eq {res.equivalence_by_tau[tau]:.2f} "
            f"cov_tcp {res.cov_tcp_by_tau[tau]:.2f} cov_tfrc {res.cov_tfrc_by_tau[tau]:.2f}"
        )


def _fig18(quick: bool, plot: bool = False, **sweep: object) -> None:
    from repro.experiments import fig18_predictor as fig18

    result = fig18.run(duration=80.0 if quick else 150.0, **sweep)
    print("Figure 18 (loss predictor error)")
    print("  history  constant        decreasing")
    for h in result.history_sizes:
        c_mean, c_std = result.constant_weights[h]
        d_mean, d_std = result.decreasing_weights[h]
        print(f"  {h:7d}  {c_mean:.4f}+-{c_std:.4f}  {d_mean:.4f}+-{d_std:.4f}")
    if plot:
        from repro.analysis.charts import histogram

        labels = [f"const n={h}" for h in result.history_sizes]
        labels += [f"decr  n={h}" for h in result.history_sizes]
        values = [result.constant_weights[h][0] for h in result.history_sizes]
        values += [result.decreasing_weights[h][0] for h in result.history_sizes]
        print()
        print(histogram(labels, values, title="Fig 18: mean predictor error"))


def _fig19(quick: bool, plot: bool = False, **sweep: object) -> None:
    from repro.experiments import fig19_increase as fig19

    result = fig19.run(duration=13.0, **sweep)
    bounds = fig19.analytic_bounds()
    normal = result.max_increment(result.loss_stop_time + 0.5, result.loss_stop_time + 1.4)
    discounted = result.max_increment(result.loss_stop_time + 1.5, result.times[-1])
    print("Figure 19 (bounded increase rate)")
    print(f"  observed increase (normal):     {normal:.3f} pkts/RTT (paper ~0.12)")
    print(f"  observed increase (discounted): {discounted:.3f} pkts/RTT (paper <=0.29)")
    print(f"  analytic bounds: {bounds}")


def _fig20(quick: bool, plot: bool = False, **sweep_kwargs: object) -> None:
    from repro.experiments import fig20_halving as fig20

    result = fig20.run(**sweep_kwargs)
    print(f"Figure 20: RTTs to halve under persistent congestion = {result.rtts_to_halve()}")
    sweep = fig20.run_sweep(
        initial_periods=(100, 10) if quick else (200, 100, 50, 25, 10, 5, 4),
        **sweep_kwargs,
    )
    print("Figure 21: drop rate -> RTTs to halve")
    for p, n in zip(sweep.drop_rates, sweep.rtts_to_halve):
        print(f"  p={p:.3f}: {n if n is not None else 'not halved'}")
    if plot:
        from repro.analysis.charts import line_chart

        points = [
            (p, n)
            for p, n in zip(sweep.drop_rates, sweep.rtts_to_halve)
            if n is not None
        ]
        print()
        print(line_chart({"RTTs to halve": points},
                         title="Fig 21: response to persistent congestion",
                         x_label="packet drop rate", y_label="RTTs"))


EXPERIMENTS: Dict[str, Callable[[bool], None]] = {
    "fig02": _fig02,
    "fig03": _fig03,
    "fig05": _fig05,
    "fig06": _fig06,
    "fig08": _fig08,
    "fig09": _fig09,
    "fig11": _fig11,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "fig18": _fig18,
    "fig19": _fig19,
    "fig20": _fig20,
}


def main(argv=None) -> int:
    from repro.scenarios.executors import EXECUTOR_NAMES

    parser = argparse.ArgumentParser(
        description="Reproduce a figure from the TFRC paper."
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="figure id (fig02..fig20) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced durations/sweeps"
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="append a plain-text chart of the figure where available",
    )
    parser.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="run sweep cells on N worker processes (every figure); with "
        "--executor queue, N locally spawned tfrc-sweep-worker processes "
        "(0 = rely on externally started workers only)",
    )
    parser.add_argument(
        "--cache", nargs="?", const=".tfrc-sweep-cache", default=None,
        metavar="DIR",
        help="cache sweep cell results on disk (default dir: "
        ".tfrc-sweep-cache); cached cells are not re-simulated",
    )
    parser.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=None,
        help="sweep execution backend (default: serial, or a process pool "
        "when --parallel > 1); 'queue' coordinates tfrc-sweep-worker "
        "processes -- including on other hosts -- through --queue-dir; "
        "'vector' advances compatible cells in lockstep numpy batches "
        "(cells it cannot batch fall back to scalar with a warning)",
    )
    parser.add_argument(
        "--queue-dir", default=None, metavar="DIR",
        help="shared queue directory for --executor queue (results default "
        "to DIR/results unless --cache is given)",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=60.0, metavar="S",
        help="(--executor queue) reclaim a cell whose worker has not "
        "heartbeaten for S seconds (default: 60)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="(--executor queue) retry budget per cell spanning errors, "
        "timeouts, and lease expiries; an exhausted cell is dead-lettered "
        "to the queue's quarantine/ directory (default: 3)",
    )
    parser.add_argument(
        "--on-poison", choices=("raise", "quarantine"), default="raise",
        help="(--executor queue) what an exhausted cell does to the sweep: "
        "abort it ('raise', default) or skip the cell so the rest "
        "completes ('quarantine'); tfrc-sweep-fsck audits the leftovers",
    )
    args = parser.parse_args(argv)
    if args.parallel < (0 if args.executor == "queue" else 1):
        parser.error(
            "--parallel must be >= 1 (>= 0 with --executor queue)"
        )
    if args.executor == "queue" and args.queue_dir is None:
        parser.error("--executor queue requires --queue-dir")
    if args.queue_dir is not None and args.executor != "queue":
        parser.error("--queue-dir only applies to --executor queue")
    if args.lease_timeout <= 0:
        parser.error("--lease-timeout must be > 0")
    if args.max_attempts < 1:
        parser.error("--max-attempts must be >= 1")
    sweep_kwargs = {}
    if args.parallel != 1 or args.cache is not None or args.executor:
        from repro.scenarios import print_progress

        sweep_kwargs = {
            "parallel": args.parallel,
            "cache_dir": args.cache,
            "progress": print_progress(),
        }
        if args.executor == "queue":
            # Built directly (rather than resolved by name) so the
            # robustness knobs reach the coordinator.
            from repro.scenarios import FileQueueExecutor

            sweep_kwargs["executor"] = FileQueueExecutor(
                args.queue_dir,
                local_workers=max(0, args.parallel),
                lease_timeout=args.lease_timeout,
                max_attempts=args.max_attempts,
                on_poison=args.on_poison,
            )
        elif args.executor:
            sweep_kwargs["executor"] = args.executor
            sweep_kwargs["queue_dir"] = args.queue_dir
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        EXPERIMENTS[name](args.quick, args.plot, **sweep_kwargs)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
