"""Figures 20 and 21 / Appendix A.2: response to persistent congestion.

Figure 20: a single TFRC flow sees a drop every 100th packet until t=10,
then every 2nd packet (persistent congestion).  The paper shows the allowed
sending rate taking **five** round-trip times to halve.

Figure 21: the same scenario swept over initial drop rates 1/period for
period in a range; the number of RTTs to halve the rate ranges from three
to eight, with at least five at low drop rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import run_single_tfrc_on_lossy_path
from repro.net.path import periodic_loss, scheduled_loss


@dataclass
class HalvingResult:
    """Rate samples around the onset of persistent congestion."""

    times: List[float] = field(default_factory=list)
    rates: List[float] = field(default_factory=list)  # bytes/second
    onset: float = 10.0
    rtt: float = 0.1

    def rtts_to_halve(self) -> Optional[float]:
        """RTTs from onset until the allowed rate is half its pre-onset value.

        Returns None if the rate never halves within the samples.
        """
        pre = [r for t, r in zip(self.times, self.rates) if self.onset - 1.0 <= t < self.onset]
        if not pre:
            return None
        baseline = sum(pre) / len(pre)
        for t, r in zip(self.times, self.rates):
            if t >= self.onset and r <= baseline / 2.0:
                return (t - self.onset) / self.rtt
        return None


def run(
    initial_period: int = 100,
    congested_period: int = 2,
    onset: float = 10.0,
    duration: float = 14.0,
    rtt: float = 0.1,
) -> HalvingResult:
    """Run the Figure 20 scenario."""
    model = scheduled_loss(
        [
            (0.0, periodic_loss(initial_period)),
            (onset, periodic_loss(congested_period)),
        ]
    )
    result = HalvingResult(onset=onset, rtt=rtt)

    def probe(sim, flow) -> None:
        result.times.append(sim.now)
        result.rates.append(flow.sender.rate)

    run_single_tfrc_on_lossy_path(
        loss_model=model,
        duration=duration,
        rtt=rtt,
        probe=probe,
        probe_interval=rtt / 2.0,
    )
    return result


@dataclass
class Fig21Result:
    """RTTs-to-halve as a function of the initial packet drop rate."""

    drop_rates: List[float] = field(default_factory=list)
    rtts_to_halve: List[Optional[float]] = field(default_factory=list)

    def defined(self) -> List[Tuple[float, float]]:
        return [
            (p, n) for p, n in zip(self.drop_rates, self.rtts_to_halve) if n is not None
        ]


def run_sweep(
    initial_periods: Sequence[int] = (200, 100, 50, 25, 10, 5, 4),
    congested_period: int = 2,
    onset: float = 10.0,
    duration: float = 16.0,
    rtt: float = 0.1,
) -> Fig21Result:
    """Figure 21: sweep the pre-congestion drop rate."""
    result = Fig21Result()
    for period in initial_periods:
        halving = run(
            initial_period=period,
            congested_period=congested_period,
            onset=onset,
            duration=duration,
            rtt=rtt,
        )
        result.drop_rates.append(1.0 / period)
        result.rtts_to_halve.append(halving.rtts_to_halve())
    return result
