"""Figures 20 and 21 / Appendix A.2: response to persistent congestion.

Figure 20: a single TFRC flow sees a drop every 100th packet until t=10,
then every 2nd packet (persistent congestion).  The paper shows the allowed
sending rate taking **five** round-trip times to halve.

Figure 21: the same scenario swept over initial drop rates 1/period for
period in a range; the number of RTTs to halve the rate ranges from three
to eight, with at least five at low drop rates.

Each configuration is one ``fig20_halving`` scenario cell; Figure 21's drop
-rate axis is a :class:`~repro.scenarios.sweep.SweepRunner` grid over the
step-loss phases, so ``--parallel N`` fans the sweep out over worker
processes and ``--cache`` re-uses previously simulated cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.scenarios import (
    ScenarioSpec,
    SweepRunner,
    register_scenario,
    run_single_cell,
)
from repro.scenarios.builders import (
    loss_model_from_spec,
    periodic_phase,
    run_single_tfrc_on_lossy_path,
)
from repro.scenarios.spec import JsonDict
from repro.scenarios.executors import ExecutorArg
from repro.scenarios.sweep import ProgressFn


@dataclass
class HalvingResult:
    """Rate samples around the onset of persistent congestion."""

    times: List[float] = field(default_factory=list)
    rates: List[float] = field(default_factory=list)  # bytes/second
    onset: float = 10.0
    rtt: float = 0.1

    def rtts_to_halve(self) -> Optional[float]:
        """RTTs from onset until the allowed rate is half its pre-onset value.

        Returns None if the rate never halves within the samples.
        """
        pre = [r for t, r in zip(self.times, self.rates) if self.onset - 1.0 <= t < self.onset]
        if not pre:
            return None
        baseline = sum(pre) / len(pre)
        for t, r in zip(self.times, self.rates):
            if t >= self.onset and r <= baseline / 2.0:
                return (t - self.onset) / self.rtt
        return None


@register_scenario("fig20_halving")
def halving_scenario(spec: ScenarioSpec) -> JsonDict:
    """One persistent-congestion probe run as a sweep cell.

    Spec layout::

        topology: {rtt?}
        loss:     {model: "scheduled", phases: [...]} (congestion at onset)
        extra:    {probe_interval?}
    """
    rtt = float(spec.topology.get("rtt", 0.1))
    series: JsonDict = {"times": [], "rates": []}

    def probe(sim, flow) -> None:
        series["times"].append(sim.now)
        series["rates"].append(flow.sender.rate)

    run_single_tfrc_on_lossy_path(
        loss_model=loss_model_from_spec(dict(spec.loss)),
        duration=spec.duration,
        rtt=rtt,
        probe=probe,
        probe_interval=float(spec.extra.get("probe_interval", rtt / 2.0)),
    )
    return series


def _halving_spec(
    initial_period: int,
    congested_period: int,
    onset: float,
    duration: float,
    rtt: float,
) -> ScenarioSpec:
    return ScenarioSpec(
        scenario="fig20_halving",
        duration=float(duration),
        topology={"rtt": float(rtt)},
        loss={
            "model": "scheduled",
            "phases": _phases(initial_period, congested_period, onset),
        },
        extra={"probe_interval": float(rtt) / 2.0},
    )


def _phases(initial_period: int, congested_period: int, onset: float) -> List[JsonDict]:
    return [
        periodic_phase(0.0, initial_period),
        periodic_phase(onset, congested_period),
    ]


def run(
    initial_period: int = 100,
    congested_period: int = 2,
    onset: float = 10.0,
    duration: float = 14.0,
    rtt: float = 0.1,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> HalvingResult:
    """Run the Figure 20 scenario."""
    base = _halving_spec(initial_period, congested_period, onset, duration, rtt)
    data = run_single_cell(
        base, parallel=parallel, cache_dir=cache_dir, progress=progress,
        executor=executor, queue_dir=queue_dir,
    )
    return HalvingResult(
        times=list(data["times"]),
        rates=list(data["rates"]),
        onset=onset,
        rtt=rtt,
    )


@dataclass
class Fig21Result:
    """RTTs-to-halve as a function of the initial packet drop rate."""

    drop_rates: List[float] = field(default_factory=list)
    rtts_to_halve: List[Optional[float]] = field(default_factory=list)

    def defined(self) -> List[Tuple[float, float]]:
        return [
            (p, n) for p, n in zip(self.drop_rates, self.rtts_to_halve) if n is not None
        ]


def run_sweep(
    initial_periods: Sequence[int] = (200, 100, 50, 25, 10, 5, 4),
    congested_period: int = 2,
    onset: float = 10.0,
    duration: float = 16.0,
    rtt: float = 0.1,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> Fig21Result:
    """Figure 21: sweep the pre-congestion drop rate.

    One grid axis -- the scheduled loss phases, one value per initial drop
    period -- so every drop rate is an independent cell.
    """
    base = _halving_spec(
        initial_periods[0], congested_period, onset, duration, rtt
    )
    sweep = SweepRunner(
        base,
        {
            "loss.phases": [
                _phases(period, congested_period, onset)
                for period in initial_periods
            ]
        },
        parallel=parallel,
        cache_dir=cache_dir,
        progress=progress,
        executor=executor,
        queue_dir=queue_dir,
    ).run()
    result = Fig21Result()
    for period, cell in zip(initial_periods, sweep.cells):
        data = cell.result
        assert data is not None
        halving = HalvingResult(
            times=list(data["times"]),
            rates=list(data["rates"]),
            onset=onset,
            rtt=rtt,
        )
        result.drop_rates.append(1.0 / period)
        result.rtts_to_halve.append(halving.rtts_to_halve())
    return result
