"""Figure 8: per-flow throughput traces at a 0.15 s timescale.

The paper plots the throughput of four TCP and four TFRC flows (from the
32-flow, 15 Mb/s simulations of Figure 6) over the second half of the run,
averaged over 0.15 s intervals -- "a plausible candidate for a minimum
interval over which bandwidth variations would begin to be noticeable to
multimedia users".  The visual message: TFRC's traces are much smoother.

Quantified here as the mean per-flow CoV of the 0.15 s rate series for each
protocol, for both RED and DropTail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.cov import coefficient_of_variation
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.experiments.common import run_mixed_dumbbell, steady_state_window


@dataclass
class Fig08Result:
    queue_type: str
    tau: float
    traces_tcp: Dict[str, List[float]] = field(default_factory=dict)
    traces_tfrc: Dict[str, List[float]] = field(default_factory=dict)
    mean_cov_tcp: float = 0.0
    mean_cov_tfrc: float = 0.0


def run(
    queue_type: str = "red",
    total_flows: int = 32,
    link_bps: float = 15e6,
    duration: float = 30.0,
    tau: float = 0.15,
    traced_flows: int = 4,
    seed: int = 0,
) -> Fig08Result:
    """Run the Figure 8 scenario for one queue type."""
    n = total_flows // 2
    sim_result = run_mixed_dumbbell(
        duration=duration,
        n_tfrc=n,
        n_tcp=n,
        bandwidth_bps=link_bps,
        queue_type=queue_type,
        seed=seed,
    )
    t0, t1 = steady_state_window(duration, 0.5)
    result = Fig08Result(queue_type=queue_type, tau=tau)
    covs_tcp, covs_tfrc = [], []
    for rank, fid in enumerate(sim_result.tcp_ids):
        arrivals = sim_result.flow_monitor.arrivals.get(fid, [])
        series = [float(v) for v in arrivals_to_rate_series(arrivals, t0, t1, tau)]
        covs_tcp.append(coefficient_of_variation(series))
        if rank < traced_flows:
            result.traces_tcp[fid] = series
    for rank, fid in enumerate(sim_result.tfrc_ids):
        arrivals = sim_result.flow_monitor.arrivals.get(fid, [])
        series = [float(v) for v in arrivals_to_rate_series(arrivals, t0, t1, tau)]
        covs_tfrc.append(coefficient_of_variation(series))
        if rank < traced_flows:
            result.traces_tfrc[fid] = series
    result.mean_cov_tcp = float(np.mean(covs_tcp))
    result.mean_cov_tfrc = float(np.mean(covs_tfrc))
    return result
