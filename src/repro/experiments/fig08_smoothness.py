"""Figure 8: per-flow throughput traces at a 0.15 s timescale.

The paper plots the throughput of four TCP and four TFRC flows (from the
32-flow, 15 Mb/s simulations of Figure 6) over the second half of the run,
averaged over 0.15 s intervals -- "a plausible candidate for a minimum
interval over which bandwidth variations would begin to be noticeable to
multimedia users".  The visual message: TFRC's traces are much smoother.

Quantified here as the mean per-flow CoV of the 0.15 s rate series for each
protocol, for both RED and DropTail.  Each queue discipline is one
``fig08_smoothness`` scenario cell, so the two-queue comparison is a
:class:`~repro.scenarios.sweep.SweepRunner` grid (``--parallel``/``--cache``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.cov import coefficient_of_variation
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.scenarios import (
    ScenarioSpec,
    SweepRunner,
    register_scenario,
    run_mixed_dumbbell,
    run_single_cell,
    steady_state_window,
)
from repro.scenarios.spec import JsonDict
from repro.scenarios.executors import ExecutorArg
from repro.scenarios.sweep import ProgressFn


@dataclass
class Fig08Result:
    queue_type: str
    tau: float
    traces_tcp: Dict[str, List[float]] = field(default_factory=dict)
    traces_tfrc: Dict[str, List[float]] = field(default_factory=dict)
    mean_cov_tcp: float = 0.0
    mean_cov_tfrc: float = 0.0


@register_scenario("fig08_smoothness")
def smoothness_scenario(spec: ScenarioSpec) -> JsonDict:
    """One Figure 8 run (one queue discipline) as a sweep cell.

    Spec layout::

        topology: {bandwidth_bps?}
        flows:    {total?, traced?}
        queue:    {type}
        extra:    {tau?}
    """
    total_flows = int(spec.flows.get("total", 32))
    traced_flows = int(spec.flows.get("traced", 4))
    tau = float(spec.extra.get("tau", 0.15))
    n = total_flows // 2
    sim_result = run_mixed_dumbbell(
        duration=spec.duration,
        n_tfrc=n,
        n_tcp=n,
        bandwidth_bps=float(spec.topology.get("bandwidth_bps", 15e6)),
        queue_type=str(spec.queue.get("type", "red")),
        seed=spec.seed,
    )
    t0, t1 = steady_state_window(spec.duration, 0.5)
    out: JsonDict = {
        "queue_type": str(spec.queue.get("type", "red")),
        "tau": tau,
        "traces_tcp": {},
        "traces_tfrc": {},
    }
    covs_tcp, covs_tfrc = [], []
    for rank, fid in enumerate(sim_result.tcp_ids):
        arrivals = sim_result.flow_monitor.arrivals.get(fid, [])
        series = [float(v) for v in arrivals_to_rate_series(arrivals, t0, t1, tau)]
        covs_tcp.append(coefficient_of_variation(series))
        if rank < traced_flows:
            out["traces_tcp"][fid] = series
    for rank, fid in enumerate(sim_result.tfrc_ids):
        arrivals = sim_result.flow_monitor.arrivals.get(fid, [])
        series = [float(v) for v in arrivals_to_rate_series(arrivals, t0, t1, tau)]
        covs_tfrc.append(coefficient_of_variation(series))
        if rank < traced_flows:
            out["traces_tfrc"][fid] = series
    out["mean_cov_tcp"] = float(np.mean(covs_tcp))
    out["mean_cov_tfrc"] = float(np.mean(covs_tfrc))
    return out


def _result_from_cell(data: JsonDict) -> Fig08Result:
    return Fig08Result(
        queue_type=str(data["queue_type"]),
        tau=float(data["tau"]),
        traces_tcp={fid: list(s) for fid, s in data["traces_tcp"].items()},
        traces_tfrc={fid: list(s) for fid, s in data["traces_tfrc"].items()},
        mean_cov_tcp=float(data["mean_cov_tcp"]),
        mean_cov_tfrc=float(data["mean_cov_tfrc"]),
    )


def _base_spec(
    total_flows: int,
    link_bps: float,
    duration: float,
    tau: float,
    traced_flows: int,
    seed: int,
    queue_type: str,
) -> ScenarioSpec:
    return ScenarioSpec(
        scenario="fig08_smoothness",
        duration=float(duration),
        seed=seed,
        topology={"bandwidth_bps": float(link_bps)},
        flows={"total": int(total_flows), "traced": int(traced_flows)},
        queue={"type": str(queue_type)},
        extra={"tau": float(tau)},
    )


def run(
    queue_type: str = "red",
    total_flows: int = 32,
    link_bps: float = 15e6,
    duration: float = 30.0,
    tau: float = 0.15,
    traced_flows: int = 4,
    seed: int = 0,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> Fig08Result:
    """Run the Figure 8 scenario for one queue type."""
    base = _base_spec(
        total_flows, link_bps, duration, tau, traced_flows, seed, queue_type
    )
    data = run_single_cell(
        base, parallel=parallel, cache_dir=cache_dir, progress=progress,
        executor=executor, queue_dir=queue_dir,
    )
    return _result_from_cell(data)


def run_queues(
    queue_types: Sequence[str] = ("red", "droptail"),
    **kwargs,
) -> Dict[str, Fig08Result]:
    """The paper's two-queue comparison as one sweep (grid over ``queue.type``).

    Accepts the same keyword arguments as :func:`run` (``parallel``,
    ``cache_dir`` and ``progress`` fan out / re-use the per-queue cells).
    """
    if not queue_types:
        return {}
    parallel = kwargs.pop("parallel", 1)
    cache_dir = kwargs.pop("cache_dir", None)
    progress = kwargs.pop("progress", None)
    executor = kwargs.pop("executor", None)
    queue_dir = kwargs.pop("queue_dir", None)
    base = _base_spec(
        total_flows=kwargs.pop("total_flows", 32),
        link_bps=kwargs.pop("link_bps", 15e6),
        duration=kwargs.pop("duration", 30.0),
        tau=kwargs.pop("tau", 0.15),
        traced_flows=kwargs.pop("traced_flows", 4),
        seed=kwargs.pop("seed", 0),
        queue_type=str(queue_types[0]),
    )
    if kwargs:
        raise TypeError(f"unknown run_queues() arguments: {sorted(kwargs)}")
    sweep = SweepRunner(
        base,
        {"queue.type": [str(q) for q in queue_types]},
        parallel=parallel,
        cache_dir=cache_dir,
        progress=progress,
        executor=executor,
        queue_dir=queue_dir,
    ).run()
    results: Dict[str, Fig08Result] = {}
    for queue_type, cell in zip(queue_types, sweep.cells):
        assert cell.result is not None
        results[str(queue_type)] = _result_from_cell(cell.result)
    return results
