"""CSV export of figure data.

Each experiment's result object can be flattened into one or more CSV
files, so the paper's figures can be re-plotted with any tool:

    tfrc-experiment fig02 --quick          # numbers on stdout
    python -m repro.experiments.export fig02 out/   # data as CSV

The writers are deliberately dependency-free (no pandas/matplotlib): plain
``csv`` module, one file per figure panel.
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from typing import Dict, Iterable, List, Sequence


def write_csv(path: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Write one CSV file, creating parent directories.  Returns ``path``."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)
    return path


def export_fig02(out_dir: str, duration: float = 16.0) -> List[str]:
    """Figure 2: loss-interval estimator time series (three panels)."""
    from repro.experiments import fig02_loss_interval as fig02

    result = fig02.run(duration=duration)
    rows = zip(
        result.times,
        result.current_interval,
        result.estimated_interval,
        result.loss_event_rate,
        result.tx_rate_bytes,
    )
    return [
        write_csv(
            os.path.join(out_dir, "fig02_loss_interval.csv"),
            ["time_s", "current_interval_pkts", "estimated_interval_pkts",
             "loss_event_rate", "tx_rate_bytes_per_s"],
            rows,
        )
    ]


def export_fig03(out_dir: str, duration: float = 40.0) -> List[str]:
    """Figures 3/4: send-rate series per buffer size, with/without damping."""
    from repro.experiments import fig03_oscillation as fig03

    paths = []
    for adjusted, label in ((False, "fig03"), (True, "fig04")):
        result = fig03.run(interpacket_adjustment=adjusted, duration=duration)
        for buffer_packets, series in result.rate_series.items():
            rows = ((i, rate) for i, rate in enumerate(series))
            paths.append(
                write_csv(
                    os.path.join(out_dir, f"{label}_buffer{buffer_packets}.csv"),
                    ["bin", "rate_kb_per_s"],
                    rows,
                )
            )
    return paths


def export_fig05(out_dir: str) -> List[str]:
    """Figure 5: loss-event fraction curves."""
    from repro.experiments import fig05_loss_event_fraction as fig05

    result = fig05.run(monte_carlo=False)
    header = ["p_loss"] + [
        f"p_event_x{multiplier}" for multiplier in sorted(result.p_event_by_multiplier)
    ]
    rows = []
    for index, p_loss in enumerate(result.p_loss_values):
        row = [p_loss] + [
            result.p_event_by_multiplier[multiplier][index]
            for multiplier in sorted(result.p_event_by_multiplier)
        ]
        rows.append(row)
    return [write_csv(os.path.join(out_dir, "fig05_loss_event_fraction.csv"), header, rows)]


def export_fig09(out_dir: str, runs: int = 2, duration: float = 60.0) -> List[str]:
    """Figures 9/10: equivalence and CoV vs timescale."""
    from repro.experiments import fig09_equivalence as fig09

    result = fig09.run(runs=runs, duration=duration, measure_seconds=duration * 2 / 3)
    rows = [
        (
            tau,
            result.equivalence_tfrc_tfrc[tau][0],
            result.equivalence_tcp_tcp[tau][0],
            result.equivalence_tfrc_tcp[tau][0],
            result.cov_tcp[tau][0],
            result.cov_tfrc[tau][0],
        )
        for tau in result.timescales
    ]
    return [
        write_csv(
            os.path.join(out_dir, "fig09_fig10_equivalence_cov.csv"),
            ["tau_s", "eq_tfrc_tfrc", "eq_tcp_tcp", "eq_tfrc_tcp",
             "cov_tcp", "cov_tfrc"],
            rows,
        )
    ]


def export_fig19(out_dir: str) -> List[str]:
    """Figure 19: allowed rate around the end of congestion."""
    from repro.experiments import fig19_increase as fig19

    result = fig19.run(duration=13.0)
    rows = zip(result.times, result.rate_pkts_per_rtt)
    return [
        write_csv(
            os.path.join(out_dir, "fig19_increase.csv"),
            ["time_s", "allowed_rate_pkts_per_rtt"],
            rows,
        )
    ]


def export_fig20(out_dir: str) -> List[str]:
    """Figures 20/21: halving trace and sweep."""
    from repro.experiments import fig20_halving as fig20

    halving = fig20.run()
    sweep = fig20.run_sweep()
    return [
        write_csv(
            os.path.join(out_dir, "fig20_halving.csv"),
            ["time_s", "allowed_rate_bytes_per_s"],
            zip(halving.times, halving.rates),
        ),
        write_csv(
            os.path.join(out_dir, "fig21_halving_sweep.csv"),
            ["drop_rate", "rtts_to_halve"],
            (
                (p, n if n is not None else "")
                for p, n in zip(sweep.drop_rates, sweep.rtts_to_halve)
            ),
        ),
    ]


EXPORTERS: Dict[str, callable] = {
    "fig02": export_fig02,
    "fig03": export_fig03,
    "fig05": export_fig05,
    "fig09": export_fig09,
    "fig19": export_fig19,
    "fig20": export_fig20,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Export figure data as CSV.")
    parser.add_argument("experiment", choices=sorted(EXPORTERS) + ["all"])
    parser.add_argument("out_dir", help="directory to write CSV files into")
    args = parser.parse_args(argv)
    names = sorted(EXPORTERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        for path in EXPORTERS[name](args.out_dir):
            print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
