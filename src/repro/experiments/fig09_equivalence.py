"""Figures 9 and 10: equivalence ratio and CoV vs measurement timescale.

The paper's steady-state scenario (section 4.1.2): 16 SACK TCP and 16 TFRC
flows on a 15 Mb/s, 50 ms RED bottleneck; flow RTTs uniform in (80, 120) ms;
starts staggered over 10 s; 150 s duration measured over the last 100 s;
results averaged over 14 runs with 90% confidence intervals.

Figure 9 plots the mean equivalence ratio (TFRC/TFRC, TCP/TCP, TFRC/TCP
pairs) against the timescale tau in {0.2, 0.5, 1, 2, 5, 10} s; Figure 10
plots the mean CoV of TCP and of TFRC flows at the same timescales.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.cov import coefficient_of_variation
from repro.analysis.equivalence import equivalence_ratio
from repro.analysis.stats import mean_and_ci
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.experiments.common import run_mixed_dumbbell

PAPER_TIMESCALES = (0.2, 0.5, 1.0, 2.0, 5.0, 10.0)


@dataclass
class Fig09Result:
    """Per-timescale means and 90% CIs over the replicated runs."""

    timescales: List[float]
    equivalence_tfrc_tfrc: Dict[float, Tuple[float, float]] = field(default_factory=dict)
    equivalence_tcp_tcp: Dict[float, Tuple[float, float]] = field(default_factory=dict)
    equivalence_tfrc_tcp: Dict[float, Tuple[float, float]] = field(default_factory=dict)
    cov_tcp: Dict[float, Tuple[float, float]] = field(default_factory=dict)
    cov_tfrc: Dict[float, Tuple[float, float]] = field(default_factory=dict)
    loss_rates: List[float] = field(default_factory=list)


def _pair_up(ids: Sequence[str]) -> List[Tuple[str, str]]:
    """Adjacent disjoint pairs: (0,1), (2,3), ..."""
    return [(ids[i], ids[i + 1]) for i in range(0, len(ids) - 1, 2)]


def _cross_pairs(a: Sequence[str], b: Sequence[str]) -> List[Tuple[str, str]]:
    """Disjoint cross-protocol pairs: (a0,b0), (a1,b1), ..."""
    return list(zip(a, b))


def run(
    runs: int = 4,
    duration: float = 90.0,
    measure_seconds: float = 60.0,
    n_each: int = 16,
    link_bps: float = 15e6,
    timescales: Sequence[float] = PAPER_TIMESCALES,
    seed: int = 0,
) -> Fig09Result:
    """Run the replicated steady-state scenario.

    Defaults are scaled down from the paper's 14 x 150 s to keep runtimes
    sane; pass ``runs=14, duration=150, measure_seconds=100`` for the full
    configuration.
    """
    timescales = [t for t in timescales if t < measure_seconds / 2]
    samples: Dict[str, Dict[float, List[float]]] = {
        key: {tau: [] for tau in timescales}
        for key in ("ee", "cc", "ec", "cov_tcp", "cov_tfrc")
    }
    result = Fig09Result(timescales=list(timescales))
    for run_index in range(runs):
        sim_result = run_mixed_dumbbell(
            duration=duration,
            n_tfrc=n_each,
            n_tcp=n_each,
            bandwidth_bps=link_bps,
            queue_type="red",
            seed=seed + run_index,
        )
        result.loss_rates.append(sim_result.link_monitor.loss_rate())
        t0, t1 = duration - measure_seconds, duration
        for tau in timescales:
            series = {
                fid: arrivals_to_rate_series(
                    sim_result.flow_monitor.arrivals.get(fid, []), t0, t1, tau
                )
                for fid in sim_result.tfrc_ids + sim_result.tcp_ids
            }
            tfrc_pairs = _pair_up(sim_result.tfrc_ids)
            tcp_pairs = _pair_up(sim_result.tcp_ids)
            cross = _cross_pairs(sim_result.tfrc_ids, sim_result.tcp_ids)
            samples["ee"][tau].extend(
                equivalence_ratio(series[a], series[b]) for a, b in tfrc_pairs
            )
            samples["cc"][tau].extend(
                equivalence_ratio(series[a], series[b]) for a, b in tcp_pairs
            )
            samples["ec"][tau].extend(
                equivalence_ratio(series[a], series[b]) for a, b in cross
            )
            samples["cov_tcp"][tau].extend(
                coefficient_of_variation(series[fid]) for fid in sim_result.tcp_ids
            )
            samples["cov_tfrc"][tau].extend(
                coefficient_of_variation(series[fid]) for fid in sim_result.tfrc_ids
            )
    for tau in timescales:
        result.equivalence_tfrc_tfrc[tau] = mean_and_ci(
            [v for v in samples["ee"][tau] if not np.isnan(v)]
        )
        result.equivalence_tcp_tcp[tau] = mean_and_ci(
            [v for v in samples["cc"][tau] if not np.isnan(v)]
        )
        result.equivalence_tfrc_tcp[tau] = mean_and_ci(
            [v for v in samples["ec"][tau] if not np.isnan(v)]
        )
        result.cov_tcp[tau] = mean_and_ci(samples["cov_tcp"][tau])
        result.cov_tfrc[tau] = mean_and_ci(samples["cov_tfrc"][tau])
    return result
