"""Figures 9 and 10: equivalence ratio and CoV vs measurement timescale.

The paper's steady-state scenario (section 4.1.2): 16 SACK TCP and 16 TFRC
flows on a 15 Mb/s, 50 ms RED bottleneck; flow RTTs uniform in (80, 120) ms;
starts staggered over 10 s; 150 s duration measured over the last 100 s;
results averaged over 14 runs with 90% confidence intervals.

Figure 9 plots the mean equivalence ratio (TFRC/TFRC, TCP/TCP, TFRC/TCP
pairs) against the timescale tau in {0.2, 0.5, 1, 2, 5, 10} s; Figure 10
plots the mean CoV of TCP and of TFRC flows at the same timescales.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cov import coefficient_of_variation
from repro.analysis.equivalence import equivalence_ratio
from repro.analysis.stats import mean_and_ci
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.scenarios import (
    ScenarioSpec,
    SweepRunner,
    register_scenario,
    run_mixed_dumbbell,
)
from repro.scenarios.spec import JsonDict
from repro.scenarios.executors import ExecutorArg
from repro.scenarios.sweep import ProgressFn

PAPER_TIMESCALES = (0.2, 0.5, 1.0, 2.0, 5.0, 10.0)


@dataclass
class Fig09Result:
    """Per-timescale means and 90% CIs over the replicated runs."""

    timescales: List[float]
    equivalence_tfrc_tfrc: Dict[float, Tuple[float, float]] = field(default_factory=dict)
    equivalence_tcp_tcp: Dict[float, Tuple[float, float]] = field(default_factory=dict)
    equivalence_tfrc_tcp: Dict[float, Tuple[float, float]] = field(default_factory=dict)
    cov_tcp: Dict[float, Tuple[float, float]] = field(default_factory=dict)
    cov_tfrc: Dict[float, Tuple[float, float]] = field(default_factory=dict)
    loss_rates: List[float] = field(default_factory=list)


def _pair_up(ids: Sequence[str]) -> List[Tuple[str, str]]:
    """Adjacent disjoint pairs: (0,1), (2,3), ..."""
    return [(ids[i], ids[i + 1]) for i in range(0, len(ids) - 1, 2)]


def _cross_pairs(a: Sequence[str], b: Sequence[str]) -> List[Tuple[str, str]]:
    """Disjoint cross-protocol pairs: (a0,b0), (a1,b1), ..."""
    return list(zip(a, b))


@register_scenario("fig09_replication")
def replication_scenario(spec: ScenarioSpec) -> JsonDict:
    """One replicated steady-state run, reduced to per-pair samples.

    Returns tau-keyed (stringified, for JSON round-tripping) sample lists
    for the three equivalence pairings and the two CoV populations.
    """
    timescales = [float(t) for t in spec.extra["timescales"]]
    measure_seconds = float(spec.extra["measure_seconds"])
    n_each = int(spec.flows.get("n_each", 16))
    sim_result = run_mixed_dumbbell(
        duration=spec.duration,
        n_tfrc=n_each,
        n_tcp=n_each,
        bandwidth_bps=float(spec.topology.get("bandwidth_bps", 15e6)),
        queue_type=str(spec.queue.get("type", "red")),
        seed=spec.seed,
    )
    out: JsonDict = {
        "loss_rate": sim_result.link_monitor.loss_rate(),
        "ee": {}, "cc": {}, "ec": {}, "cov_tcp": {}, "cov_tfrc": {},
    }
    t0, t1 = spec.duration - measure_seconds, spec.duration
    for tau in timescales:
        series = {
            fid: arrivals_to_rate_series(
                sim_result.flow_monitor.arrivals.get(fid, []), t0, t1, tau
            )
            for fid in sim_result.tfrc_ids + sim_result.tcp_ids
        }
        key = repr(tau)
        out["ee"][key] = [
            float(equivalence_ratio(series[a], series[b]))
            for a, b in _pair_up(sim_result.tfrc_ids)
        ]
        out["cc"][key] = [
            float(equivalence_ratio(series[a], series[b]))
            for a, b in _pair_up(sim_result.tcp_ids)
        ]
        out["ec"][key] = [
            float(equivalence_ratio(series[a], series[b]))
            for a, b in _cross_pairs(sim_result.tfrc_ids, sim_result.tcp_ids)
        ]
        out["cov_tcp"][key] = [
            float(coefficient_of_variation(series[fid]))
            for fid in sim_result.tcp_ids
        ]
        out["cov_tfrc"][key] = [
            float(coefficient_of_variation(series[fid]))
            for fid in sim_result.tfrc_ids
        ]
    return out


def run(
    runs: int = 4,
    duration: float = 90.0,
    measure_seconds: float = 60.0,
    n_each: int = 16,
    link_bps: float = 15e6,
    timescales: Sequence[float] = PAPER_TIMESCALES,
    seed: int = 0,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[ExecutorArg] = None,
    queue_dir: Optional[str] = None,
) -> Fig09Result:
    """Run the replicated steady-state scenario as a sweep over seeds.

    Defaults are scaled down from the paper's 14 x 150 s to keep runtimes
    sane; pass ``runs=14, duration=150, measure_seconds=100`` for the full
    configuration.  The replications are independent cells, so
    ``parallel=N`` runs them N at a time.
    """
    timescales = [float(t) for t in timescales if t < measure_seconds / 2]
    base = ScenarioSpec(
        scenario="fig09_replication",
        duration=duration,
        seed=seed,
        flows={"n_each": int(n_each)},
        topology={"bandwidth_bps": float(link_bps)},
        queue={"type": "red"},
        extra={"timescales": timescales, "measure_seconds": float(measure_seconds)},
    )
    sweep = SweepRunner(
        base,
        {"seed": [seed + run_index for run_index in range(runs)]},
        parallel=parallel,
        cache_dir=cache_dir,
        progress=progress,
        executor=executor,
        queue_dir=queue_dir,
    ).run()
    samples: Dict[str, Dict[float, List[float]]] = {
        key: {tau: [] for tau in timescales}
        for key in ("ee", "cc", "ec", "cov_tcp", "cov_tfrc")
    }
    result = Fig09Result(timescales=list(timescales))
    for cell in sweep.cells:
        assert cell.result is not None
        result.loss_rates.append(float(cell.result["loss_rate"]))
        for key in samples:
            for tau in timescales:
                samples[key][tau].extend(cell.result[key][repr(tau)])
    for tau in timescales:
        result.equivalence_tfrc_tfrc[tau] = mean_and_ci(
            [v for v in samples["ee"][tau] if not np.isnan(v)]
        )
        result.equivalence_tcp_tcp[tau] = mean_and_ci(
            [v for v in samples["cc"][tau] if not np.isnan(v)]
        )
        result.equivalence_tfrc_tcp[tau] = mean_and_ci(
            [v for v in samples["ec"][tau] if not np.isnan(v)]
        )
        result.cov_tcp[tau] = mean_and_ci(samples["cov_tcp"][tau])
        result.cov_tfrc[tau] = mean_and_ci(samples["cov_tfrc"][tau])
    return result
