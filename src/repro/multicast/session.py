"""A complete single-source multicast TFRC session on the simulator.

Builds a star "multicast tree": the sender's packets are replicated onto
one :class:`~repro.net.path.LossyPath` per receiver (each with its own
delay and loss model), receiver reports return over per-receiver unicast
paths, and the sender echoes winning reports to the group (standing in for
the reports being multicast).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.multicast.receiver import MulticastReceiver, MulticastReport
from repro.multicast.sender import MulticastTfrcSender
from repro.net.packet import Packet
from repro.net.path import LossModel, LossyPath
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


class MulticastTfrcSession:
    """One sender, N receivers, suppression-based feedback."""

    def __init__(
        self,
        sim: Simulator,
        receiver_specs: Sequence[Tuple[float, Optional[LossModel]]],
        seed: int = 0,
        packet_size: int = 1000,
        round_duration: float = 1.0,
        conservatism: float = 1.0,
        session_id: str = "mcast",
    ) -> None:
        """``receiver_specs`` is a list of ``(one_way_delay, loss_model)``."""
        if not receiver_specs:
            raise ValueError("need at least one receiver")
        self.sim = sim
        self.session_id = session_id
        registry = RngRegistry(seed)
        self.receivers: List[MulticastReceiver] = []
        self._down_paths: List[LossyPath] = []
        self._up_paths: List[LossyPath] = []

        self.sender = MulticastTfrcSender(
            sim,
            session_id,
            send_packet=self._replicate,
            echo_report=self._echo_to_group,
            packet_size=packet_size,
            round_duration=round_duration,
        )
        self.sender.on_round_start = self._start_receiver_round

        for index, (delay, loss_model) in enumerate(receiver_specs):
            receiver_id = f"{session_id}-rx{index}"
            down = LossyPath(
                sim, delay=delay, loss_model=loss_model, name=f"{receiver_id}-down"
            )
            up = LossyPath(sim, delay=delay, name=f"{receiver_id}-up")
            up.connect(self.sender.on_report)
            receiver = MulticastReceiver(
                sim,
                receiver_id,
                send_report=up.send,
                rng=registry.stream(f"suppression-{index}"),
                packet_size=packet_size,
                round_duration=round_duration,
                conservatism=conservatism,
            )
            down.connect(receiver.receive)
            self.receivers.append(receiver)
            self._down_paths.append(down)
            self._up_paths.append(up)

    # ---------------------------------------------------------- replication

    def _replicate(self, packet: Packet) -> None:
        """Fan one data packet out to every receiver's downstream path."""
        for path in self._down_paths:
            copy = Packet(
                flow_id=packet.flow_id,
                seq=packet.seq,
                size=packet.size,
                ptype=packet.ptype,
                sent_at=packet.sent_at,
                payload=packet.payload,
            )
            path.send(copy)

    def _echo_to_group(self, report: MulticastReport) -> None:
        """The sender re-multicasts winning reports for suppression."""
        for receiver in self.receivers:
            receiver.on_heard_report(report)

    def _start_receiver_round(self) -> None:
        for receiver in self.receivers:
            receiver.start_round()

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        self.sender.start()

    def stop(self) -> None:
        self.sender.stop()
        for receiver in self.receivers:
            receiver.stop()

    @property
    def total_reports(self) -> int:
        return sum(r.reports_sent for r in self.receivers)

    def bottleneck_receiver(self) -> MulticastReceiver:
        """The receiver whose path currently allows the lowest rate."""
        return min(self.receivers, key=lambda r: r.calculated_rate())
