"""Multicast TFRC receiver.

Reuses the unicast receiver's loss machinery (ALI + loss-event detection)
but, per section 6, the *receiver* calculates the allowed rate ("for
multicast, it makes sense for the receiver to determine the relevant
parameters and calculate the allowed sending rate", section 3.1) and only
reports it when its suppression timer wins the round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.equations import tcp_response_rate
from repro.core.loss_events import LossEventDetector
from repro.core.loss_intervals import AverageLossIntervals
from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator
from repro.multicast.suppression import FeedbackSuppression


@dataclass
class MulticastReport:
    """Payload of a multicast receiver report."""

    receiver_id: str
    calculated_rate: float  # bytes/second the control equation allows
    p: float
    rtt_estimate: float


class MulticastReceiver:
    """One member of the multicast group."""

    REPORT_SIZE = 40

    def __init__(
        self,
        sim: Simulator,
        receiver_id: str,
        send_report: Callable[[Packet], None],
        rng: np.random.Generator,
        packet_size: int = 1000,
        initial_rtt: float = 0.3,
        round_duration: float = 1.0,
        conservatism: float = 1.0,
        on_data: Optional[Callable[[float, Packet], None]] = None,
    ) -> None:
        if conservatism < 1.0:
            raise ValueError("conservatism must be >= 1 (divide the rate)")
        self.sim = sim
        self.receiver_id = receiver_id
        self._send_report = send_report
        self.packet_size = packet_size
        self.on_data = on_data
        #: multicast sessions shade the rate down to absorb RTT-estimate
        #: error (section 6: "a little more conservative ... to ensure safe
        #: operation").
        self.conservatism = conservatism
        self._rtt = initial_rtt
        self.intervals = AverageLossIntervals()
        self.detector = LossEventDetector(
            rtt_fn=lambda: self._rtt, on_event=self._on_loss_event
        )
        self.suppression = FeedbackSuppression(
            sim,
            send_report=self._emit_report,
            rate_fn=self.calculated_rate,
            rng=rng,
            round_duration=round_duration,
        )
        self._last_seq: Optional[int] = None
        self.packets_received = 0
        self.reports_sent = 0

    # ------------------------------------------------------------- inbound

    def receive(self, packet: Packet) -> None:
        """Handle one multicast data packet."""
        if not packet.is_data:
            return
        self.packets_received += 1
        info = packet.payload
        if info is not None and getattr(info, "rtt_estimate", None):
            # The sender multicasts its current RTT-proxy for event grouping.
            self._rtt = info.rtt_estimate
        if self.on_data is not None:
            self.on_data(self.sim.now, packet)
        previous_open = self.detector.open_interval_packets()
        self.detector.on_arrival(packet.seq, self.sim.now)
        current_open = self.detector.open_interval_packets()
        if current_open > previous_open and self.detector.events:
            self.intervals.on_packet(current_open - previous_open)
        elif not self.detector.events:
            self.intervals.on_packet(1.0)
        self._last_seq = packet.seq

    def _on_loss_event(self, event) -> None:
        self.intervals.on_loss_event(event.closed_interval)

    # ------------------------------------------------------------- reports

    def loss_event_rate(self) -> float:
        return self.intervals.loss_event_rate()

    def calculated_rate(self) -> float:
        """The allowed rate this receiver's path supports, bytes/second."""
        p = self.loss_event_rate()
        if p <= 0:
            # No loss seen yet: report a high rate so we never suppress a
            # genuinely constrained receiver.
            return 1e9
        rate = tcp_response_rate(
            self.packet_size, self._rtt, p, t_rto=4.0 * self._rtt
        )
        return rate / self.conservatism

    def start_round(self) -> None:
        self.suppression.start_round()

    def on_heard_report(self, report: MulticastReport) -> None:
        if report.receiver_id != self.receiver_id:
            self.suppression.on_heard_report(report.calculated_rate)

    def _emit_report(self) -> None:
        report = MulticastReport(
            receiver_id=self.receiver_id,
            calculated_rate=self.calculated_rate(),
            p=self.loss_event_rate(),
            rtt_estimate=self._rtt,
        )
        packet = Packet(
            flow_id=self.receiver_id,
            seq=self._last_seq if self._last_seq is not None else 0,
            size=self.REPORT_SIZE,
            ptype=PacketType.FEEDBACK,
            sent_at=self.sim.now,
            payload=report,
        )
        self.reports_sent += 1
        self._send_report(packet)

    def stop(self) -> None:
        self.suppression.cancel()
