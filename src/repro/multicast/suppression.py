"""Feedback suppression for multicast TFRC (paper section 6).

"There is a need to limit feedback to the multicast sender to prevent
response implosion.  This requires either hierarchical aggregation of
feedback or a mechanism that suppresses feedback except from the receivers
calculating the lowest transmission rate."

This module implements the latter: each round, every receiver draws a
feedback delay that is *biased by its calculated rate* -- receivers whose
control equation allows only a low rate draw short delays; high-rate
receivers draw long ones.  When a report is multicast (the sender echoes it
to the group), receivers cancel their pending report unless their own rate
is lower by more than a configurable factor.

The expected number of reports per round is O(log N) in the worst case and
O(1) when one receiver is clearly the bottleneck, which is the scalability
property the bench asserts.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.process import Timer


class FeedbackSuppression:
    """Per-receiver biased feedback timer.

    Args:
        sim: the event loop.
        send_report: callback invoked when this receiver wins the round and
            should transmit its report.
        rate_fn: returns the receiver's current calculated allowed rate
            (bytes/second); lower rate -> earlier timer.
        rng: random stream for the exponential timer draw.
        round_duration: length of one feedback round (the sender announces
            this; several RTTs for multicast).
        bias_strength: how strongly the rate separates firing times; with
            ``b`` the deterministic component is ``T * (1 - b + b * u)``
            where ``u`` in [0,1] grows with the receiver's rate relative to
            ``rate_scale``.
        suppress_factor: a heard report with rate ``r`` suppresses this
            receiver unless ``own_rate < r / suppress_factor``.
    """

    def __init__(
        self,
        sim: Simulator,
        send_report: Callable[[], None],
        rate_fn: Callable[[], float],
        rng: np.random.Generator,
        round_duration: float = 1.0,
        bias_strength: float = 0.8,
        suppress_factor: float = 1.2,
        rate_scale: float = 1e6,
    ) -> None:
        if round_duration <= 0:
            raise ValueError("round_duration must be positive")
        if not 0 <= bias_strength <= 1:
            raise ValueError("bias_strength must be in [0, 1]")
        if suppress_factor < 1:
            raise ValueError("suppress_factor must be >= 1")
        self.sim = sim
        self._send_report = send_report
        self.rate_fn = rate_fn
        self._rng = rng
        self.round_duration = round_duration
        self.bias_strength = bias_strength
        self.suppress_factor = suppress_factor
        self.rate_scale = rate_scale
        self._timer = Timer(sim, self._fire)
        self._suppressed = False
        self.reports_sent = 0
        self.rounds_started = 0

    # ----------------------------------------------------------- round API

    def start_round(self) -> None:
        """Begin a feedback round: arm the biased timer."""
        self.rounds_started += 1
        self._suppressed = False
        self._timer.start(self._draw_delay())

    def cancel(self) -> None:
        self._timer.cancel()

    @property
    def pending(self) -> bool:
        return self._timer.pending

    def _draw_delay(self) -> float:
        """Rate-biased delay in (0, round_duration].

        The deterministic part orders receivers by rate (low rate earlier);
        a bounded uniform jitter randomizes ties so duplicate reports from
        equal-rate receivers stay limited.  Because the jitter is bounded by
        ``(1 - bias) * T``, two receivers whose deterministic components
        differ by more than that can never fire out of order.
        """
        rate = max(1.0, self.rate_fn())
        # Map rate onto [0, 1] logarithmically: 1 B/s .. rate_scale.
        u = min(1.0, max(0.0, math.log1p(rate) / math.log1p(self.rate_scale)))
        deterministic = self.round_duration * self.bias_strength * u
        random_part = self.round_duration * (1 - self.bias_strength)
        jitter = float(self._rng.uniform(0.0, random_part))
        return min(self.round_duration, deterministic + jitter)

    def _fire(self) -> None:
        if self._suppressed:
            return
        self.reports_sent += 1
        self._send_report()

    # ------------------------------------------------------- suppression in

    def on_heard_report(self, reported_rate: float) -> None:
        """Another receiver's report was echoed to the group.

        Cancel our pending report unless we are meaningfully worse off than
        the reporter (our rate lower by more than ``suppress_factor``).
        """
        if not self._timer.pending:
            return
        own = self.rate_fn()
        if own < reported_rate / self.suppress_factor:
            return  # we are the (new) bottleneck: keep our timer
        self._suppressed = True
        self._timer.cancel()
