"""Multicast TFRC sender.

Paces data to the whole group at the minimum of the receivers' reported
allowed rates.  Differences from the unicast sender, per section 6:

* feedback arrives in *rounds* (suppression timers), not per-RTT, so the
  control loop runs on round boundaries;
* slow start is more conservative: the rate doubles per round (not per RTT)
  and stops at the first loss report from any receiver;
* heard reports are echoed to the group so other receivers can suppress
  (the sender's echo stands in for multicast visibility of reports).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.sender import T_MBI, TfrcDataInfo
from repro.multicast.receiver import MulticastReport
from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer


class MulticastTfrcSender:
    """Single-source multicast sender driven by suppressed receiver reports."""

    def __init__(
        self,
        sim: Simulator,
        session_id: str,
        send_packet: Callable[[Packet], None],
        echo_report: Optional[Callable[[MulticastReport], None]] = None,
        packet_size: int = 1000,
        initial_rate: float = 2000.0,
        round_duration: float = 1.0,
        rtt_proxy: float = 0.3,
    ) -> None:
        self.sim = sim
        self.session_id = session_id
        self._send_packet = send_packet
        self._echo_report = echo_report
        self.packet_size = packet_size
        self.rate = float(initial_rate)  # bytes/second
        self.round_duration = round_duration
        self.rtt_proxy = rtt_proxy
        self.in_slow_start = True
        self._seq = 0
        self._send_timer = Timer(sim, self._send_next)
        self._round_process = PeriodicProcess(
            sim, self._round_boundary, lambda: self.round_duration
        )
        self._round_minimum: Optional[float] = None
        self._started = False
        self._stopped = False
        self.packets_sent = 0
        self.reports_received = 0
        self.rate_history = []
        self.on_round_start: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.rate_history.append((self.sim.now, self.rate))
        self._send_next()
        self._round_process.start(initial_delay=self.round_duration)
        if self.on_round_start is not None:
            self.on_round_start()

    def stop(self) -> None:
        self._stopped = True
        self._send_timer.cancel()
        self._round_process.stop()

    # ------------------------------------------------------------- reports

    def on_report(self, packet: Packet) -> None:
        """A receiver's (suppression-winning) report reached the sender."""
        if self._stopped or packet.ptype is not PacketType.FEEDBACK:
            return
        report = packet.payload
        if not isinstance(report, MulticastReport):
            return
        self.reports_received += 1
        if report.p > 0:
            self.in_slow_start = False
        if self._round_minimum is None or report.calculated_rate < self._round_minimum:
            self._round_minimum = report.calculated_rate
        if self._echo_report is not None:
            self._echo_report(report)

    def _round_boundary(self) -> None:
        """End of a feedback round: adapt the rate, start the next round."""
        if self._stopped:
            return
        if self._round_minimum is not None and not self.in_slow_start:
            self.rate = max(self.packet_size / T_MBI, self._round_minimum)
        elif self.in_slow_start:
            if self._round_minimum is not None:
                # Cap the doubling at the most constrained receiver's rate.
                self.rate = max(
                    self.packet_size / T_MBI,
                    min(2.0 * self.rate, self._round_minimum),
                )
            else:
                self.rate = 2.0 * self.rate
        else:
            # No feedback round: halve, like the unicast no-feedback timer.
            self.rate = max(self.packet_size / T_MBI, self.rate / 2.0)
        self.rate_history.append((self.sim.now, self.rate))
        self._round_minimum = None
        if self.on_round_start is not None:
            self.on_round_start()

    # -------------------------------------------------------------- pacing

    def _send_next(self) -> None:
        if self._stopped:
            return
        packet = Packet(
            flow_id=self.session_id,
            seq=self._seq,
            size=self.packet_size,
            ptype=PacketType.DATA,
            sent_at=self.sim.now,
            payload=TfrcDataInfo(ts=self.sim.now, rtt_estimate=self.rtt_proxy),
        )
        self._seq += 1
        self.packets_sent += 1
        self._send_packet(packet)
        self._send_timer.start(self.packet_size / self.rate)
