"""Multicast TFRC building blocks (paper section 6).

The paper argues that TFRC's receiver-side loss estimation and sender-side
rate adaptation "should be directly applicable to multicast", with three
additional problems to solve:

1. **Feedback implosion** -- the sender cannot take a report from every
   receiver each RTT.  :mod:`~repro.multicast.suppression` implements
   biased exponential feedback timers: receivers whose calculated rate is
   lower fire earlier, and a report from a receiver with a lower rate
   suppresses everyone else's pending reports.
2. **Slow start without timely feedback** -- the multicast sender uses a
   more conservative start (no doubling past the first loss report from
   *any* receiver).
3. **RTT estimation without synchronized clocks** -- receivers here measure
   a one-way-delay-change proxy seeded by an initial unicast-style
   handshake; the conservatism knob compensates for its error.

The deliverable is a working single-source, N-receiver TFRC-style session
(:class:`~repro.multicast.session.MulticastTfrcSession`): the sender tracks
the *minimum* allowed rate over receiver reports, scalably.
"""

from repro.multicast.suppression import FeedbackSuppression
from repro.multicast.receiver import MulticastReceiver
from repro.multicast.sender import MulticastTfrcSender
from repro.multicast.session import MulticastTfrcSession

__all__ = [
    "FeedbackSuppression",
    "MulticastReceiver",
    "MulticastTfrcSender",
    "MulticastTfrcSession",
]
