"""repro: equation-based congestion control for unicast applications (TFRC).

A from-scratch reproduction of Floyd, Handley, Padhye, Widmer,
"Equation-Based Congestion Control for Unicast Applications" (SIGCOMM 2000),
including the packet-level network simulator, TCP baselines, background
traffic models, and the analysis methodology the paper's evaluation uses.

Quickstart::

    from repro.sim import Simulator
    from repro.net import Dumbbell, DumbbellConfig
    from repro.core import TfrcFlow

    sim = Simulator()
    dumbbell = Dumbbell(sim, DumbbellConfig(bandwidth_bps=15e6))
    fwd, rev = dumbbell.attach_flow("tfrc-0", base_rtt=0.1)
    flow = TfrcFlow(sim, "tfrc-0", fwd, rev)
    flow.start()
    sim.run(until=30.0)

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

__version__ = "1.0.0"

from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.core import TfrcFlow, TfrcReceiver, TfrcSender

__all__ = [
    "Simulator",
    "RngRegistry",
    "Tracer",
    "TfrcFlow",
    "TfrcSender",
    "TfrcReceiver",
    "__version__",
]
