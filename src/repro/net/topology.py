"""Dumbbell topology builder.

The paper's fairness and smoothness experiments (Figures 6-14) all use the
"well-known single bottleneck (dumbbell) scenario" with provisioned access
links, so that drops occur only at the bottleneck.  This module builds that
topology:

* one shared forward bottleneck link (configurable bandwidth, delay, queue
  discipline),
* one shared reverse link for ACK/feedback traffic (normally uncongested,
  but usable for reverse-path traffic as in Figure 14),
* per-flow access segments implemented as pure delays (access links are
  provisioned by construction, matching the paper's setup), sized so each
  flow hits its target base RTT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.net.link import Link, Receiver
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, Queue, REDQueue
from repro.sim.engine import Simulator
from repro.sim.rng import BlockDraws


@dataclass
class DumbbellConfig:
    """Parameters of the dumbbell bottleneck.

    Defaults mirror the paper's steady-state scenario (section 4.1.2
    footnote): 15 Mb/s bottleneck, 50 ms one-way bottleneck delay,
    1000-byte packets, RED with gentle, buffer 100 packets, minthresh 10,
    maxthresh 50.
    """

    bandwidth_bps: float = 15e6
    delay: float = 0.050
    queue_type: str = "red"  # "red" or "droptail"
    buffer_packets: int = 100
    red_min_thresh: float = 10
    red_max_thresh: float = 50
    red_max_p: float = 0.1
    red_gentle: bool = True
    red_weight: float = 0.002
    mean_packet_size: int = 1000
    reverse_bandwidth_bps: Optional[float] = None  # defaults to forward bw
    reverse_buffer_packets: int = 1000
    queue_seed: int = 7
    #: per-packet access-segment processing jitter (anti-phase-effect);
    #: ~2 bottleneck packet times by default for the paper's 15 Mb/s link.
    access_jitter: float = 0.001

    def build_queue(
        self,
        rng: Optional[np.random.Generator] = None,
        fastpath: bool = True,
    ) -> Queue:
        """Instantiate the configured forward queue discipline."""
        if self.queue_type == "droptail":
            return DropTailQueue(
                self.buffer_packets, name="bottleneck-q", fastpath=fastpath
            )
        if self.queue_type == "red":
            return REDQueue(
                self.buffer_packets,
                min_thresh=self.red_min_thresh,
                max_thresh=self.red_max_thresh,
                max_p=self.red_max_p,
                weight=self.red_weight,
                gentle=self.red_gentle,
                rng=rng if rng is not None else np.random.default_rng(self.queue_seed),
                mean_packet_size=self.mean_packet_size,
                name="bottleneck-red",
                fastpath=fastpath,
            )
        raise ValueError(f"unknown queue type {self.queue_type!r}")


# Block-buffered uniform jitter draws.  One shared instance must be used by
# every port drawing from the same RNG (draw order across ports is the event
# order, which is deterministic); ``high`` is the jitter bound, so handed-out
# values match the legacy per-packet ``rng.uniform(0, high)`` bit for bit.
# The buffering logic itself lives in ``repro.sim.rng.BlockDraws``.
_BatchedJitter = BlockDraws


class FlowPort:
    """One direction of a flow's attachment to the dumbbell.

    ``send`` injects a packet (after the flow's ingress access delay);
    packets addressed to this flow that exit the shared link are delivered to
    the callback registered with ``connect`` after the egress access delay.
    """

    def __init__(
        self,
        sim: Simulator,
        shared_link: Link,
        ingress_delay: float,
        egress_delay: float,
        jitter_rng: Optional[np.random.Generator] = None,
        jitter_max: float = 0.0,
        fast_scheduling: bool = True,
        jitter_stream: Optional[BlockDraws] = None,
    ) -> None:
        self._sim = sim
        self._link = shared_link
        self.ingress_delay = ingress_delay
        self.egress_delay = egress_delay
        self.jitter_rng = jitter_rng
        self.jitter_max = jitter_max
        # A shared batched stream only substitutes for per-call draws when
        # its bound matches this port's; otherwise fall back silently to
        # the scalar path rather than draw with the wrong bound.
        if jitter_stream is not None and jitter_stream.high != jitter_max:
            jitter_stream = None
        self._jitter_stream = jitter_stream
        #: access-segment handoffs are never cancelled, so by default they
        #: ride ``schedule_fast`` (no Event handle per packet); ``False``
        #: pins the legacy Event-allocating path for perf baselines.
        self.fast_scheduling = fast_scheduling
        self._last_ingress_arrival = 0.0
        self._receiver: Optional[Receiver] = None
        # Per-packet hoists: whether any jitter applies, and the link's
        # (possibly fused fast-path) send entry point.
        self._jittered = jitter_rng is not None and jitter_max > 0
        self._link_send = shared_link.send

    def connect(self, receiver: Receiver) -> None:
        self._receiver = receiver

    def send(self, packet: Packet) -> bool:
        delay = self.ingress_delay
        if self._jittered:
            # Small random processing jitter.  Deterministic simulators
            # otherwise exhibit phase effects: window-based (ACK-clocked)
            # arrivals synchronize with bottleneck departures while paced
            # arrivals do not, skewing DropTail drop probabilities.  The
            # jitter is clamped so packets of one flow never reorder.
            stream = self._jitter_stream
            if stream is not None:
                delay += stream.next()
            else:
                delay += float(self.jitter_rng.uniform(0.0, self.jitter_max))
        elif delay <= 0:
            return self._link_send(packet)
        # Always go through the scheduler when delayed/jittered: clamping to
        # the previous arrival plus heap FIFO keeps per-flow order even when
        # a later packet draws a smaller jitter.
        sim = self._sim
        arrival = sim._now + delay
        if arrival < self._last_ingress_arrival:
            arrival = self._last_ingress_arrival
        self._last_ingress_arrival = arrival
        # Schedule at the *absolute* arrival time: recomputing now + (arrival
        # - now) loses bits and can invert the order of two equal arrivals.
        if self.fast_scheduling:
            # Straight heap push (schedule_fast minus the range check):
            # the clamp above keeps arrival >= now by construction.
            heappush(
                sim._heap,
                (arrival, 0, sim._seq, self._link_send, (packet,), None),
            )
            sim._seq += 1
        else:
            sim.schedule(arrival, self._link_send, packet)
        return True  # access links never drop; loss is at the bottleneck

    def deliver(self, packet: Packet) -> None:
        if self._receiver is None:
            return  # flow detached; drop silently
        if self.egress_delay > 0:
            if self.fast_scheduling:
                sim = self._sim
                heappush(
                    sim._heap,
                    (
                        sim._now + self.egress_delay,
                        0,
                        sim._seq,
                        self._receiver,
                        (packet,),
                        None,
                    ),
                )
                sim._seq += 1
            else:
                self._sim.schedule_in(self.egress_delay, self._receiver, packet)
        else:
            self._receiver(packet)


class Dumbbell:
    """Shared-bottleneck topology with per-flow base RTTs."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[DumbbellConfig] = None,
        queue_rng: Optional[np.random.Generator] = None,
        jitter_rng: Optional[np.random.Generator] = None,
        fast_scheduling: bool = True,
        net_fastpath: bool = True,
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else DumbbellConfig()
        self.fast_scheduling = fast_scheduling
        #: the PR-4 network-layer flag: batched link wake chains plus the
        #: fused RED enqueue (``False`` pins the per-event legacy paths).
        self.net_fastpath = net_fastpath
        self._jitter_rng = (
            jitter_rng if jitter_rng is not None else np.random.default_rng(11)
        )
        # All ports draw jitter from one shared stream so batched (fast) and
        # per-call (legacy) draws hand out identical values in event order.
        self._jitter_stream = (
            BlockDraws(self._jitter_rng, high=self.config.access_jitter, block=256)
            if fast_scheduling and self.config.access_jitter > 0
            else None
        )
        cfg = self.config
        self.forward_link = Link(
            sim,
            cfg.bandwidth_bps,
            cfg.delay,
            cfg.build_queue(queue_rng, fastpath=net_fastpath),
            name="bottleneck-fwd",
            fastpath=net_fastpath,
        )
        if isinstance(self.forward_link.queue, REDQueue):
            # RED's idle decay needs the link speed; Link wires it up at
            # construction.  Checked unconditionally (not an assert, which
            # -O would strip) so a future refactor cannot silently
            # reintroduce the frozen-average bug at the bottleneck.
            if not self.forward_link.queue.has_service_rate:
                raise RuntimeError(
                    "bottleneck RED queue has no service rate wired up"
                )
        reverse_bw = (
            cfg.reverse_bandwidth_bps
            if cfg.reverse_bandwidth_bps is not None
            else cfg.bandwidth_bps
        )
        self.reverse_link = Link(
            sim,
            reverse_bw,
            cfg.delay,
            DropTailQueue(
                cfg.reverse_buffer_packets, name="bottleneck-rev-q",
                fastpath=net_fastpath,
            ),
            name="bottleneck-rev",
            fastpath=net_fastpath,
        )
        self._forward_ports: Dict[str, FlowPort] = {}
        self._reverse_ports: Dict[str, FlowPort] = {}
        self.forward_link.connect(self._route_forward)
        self.reverse_link.connect(self._route_reverse)

    def _route_forward(self, packet: Packet) -> None:
        port = self._forward_ports.get(packet.flow_id)
        if port is not None:
            port.deliver(packet)

    def _route_reverse(self, packet: Packet) -> None:
        port = self._reverse_ports.get(packet.flow_id)
        if port is not None:
            port.deliver(packet)

    def attach_flow(self, flow_id: str, base_rtt: float) -> Tuple[FlowPort, FlowPort]:
        """Attach a flow with the given base (no-queueing) round-trip time.

        Returns ``(forward_port, reverse_port)``.  The residual RTT beyond
        the two bottleneck traversals is split evenly over the four access
        segments.  ``base_rtt`` smaller than twice the bottleneck delay is
        clipped (segments cannot have negative delay).
        """
        if flow_id in self._forward_ports:
            raise ValueError(f"flow {flow_id!r} already attached")
        residual = max(0.0, base_rtt - 2 * self.config.delay)
        segment = residual / 4.0
        jitter = self.config.access_jitter
        fwd = FlowPort(
            self.sim, self.forward_link, segment, segment,
            jitter_rng=self._jitter_rng, jitter_max=jitter,
            fast_scheduling=self.fast_scheduling,
            jitter_stream=self._jitter_stream,
        )
        rev = FlowPort(
            self.sim, self.reverse_link, segment, segment,
            jitter_rng=self._jitter_rng, jitter_max=jitter,
            fast_scheduling=self.fast_scheduling,
            jitter_stream=self._jitter_stream,
        )
        self._forward_ports[flow_id] = fwd
        self._reverse_ports[flow_id] = rev
        return fwd, rev

    def detach_flow(self, flow_id: str) -> None:
        self._forward_ports.pop(flow_id, None)
        self._reverse_ports.pop(flow_id, None)

    @property
    def flow_count(self) -> int:
        return len(self._forward_ports)
