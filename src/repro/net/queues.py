"""Queue disciplines: DropTail and RED.

RED follows Floyd & Jacobson (1993) with the ``gentle`` extension the paper
enables for its simulations (footnote to Figure 8 and section 4.1.2): between
``maxthresh`` and ``2*maxthresh`` the drop probability rises linearly from
``max_p`` to 1 instead of jumping to 1.

Both disciplines count bytes and packets and expose conservation counters so
tests can assert ``enqueued == dequeued + dropped + len(queue)``.
"""

from __future__ import annotations

from collections import deque
from math import exp, log
from typing import Callable, Deque, List, Optional

import numpy as np

from repro.net.packet import Packet
from repro.net.redmath import RedParams, red_drop_probability
from repro.sim.rng import BlockDraws


class Queue:
    """Abstract queue discipline.

    Subclasses implement :meth:`enqueue`; dequeue order is FIFO for both
    disciplines used in the paper.  ``drop_hook`` (if set) is called with each
    dropped packet, which the monitors and the TFRC/TCP test fixtures use.
    """

    def __init__(self, capacity_packets: int, name: str = "queue") -> None:
        if capacity_packets <= 0:
            raise ValueError("queue capacity must be at least one packet")
        self.capacity_packets = capacity_packets
        self.name = name
        self._queue: Deque[Packet] = deque()
        self.bytes_queued = 0
        # Conservation counters.
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.drop_hook: Optional[Callable[[Packet], None]] = None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Try to accept ``packet``; return True if queued, False if dropped."""
        raise NotImplementedError

    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the head-of-line packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.bytes_queued -= packet.size
        self.dequeued += 1
        return packet

    def _accept(self, packet: Packet) -> bool:
        self._queue.append(packet)
        self.bytes_queued += packet.size
        self.enqueued += 1
        return True

    def _drop(self, packet: Packet) -> bool:
        self.dropped += 1
        if self.drop_hook is not None:
            self.drop_hook(packet)
        return False


class DropTailQueue(Queue):
    """FIFO queue that drops arrivals when full (tail drop).

    ``fastpath`` (default) rebinds ``enqueue`` to a fused variant with the
    accept/drop bookkeeping inlined; decisions are identical either way.
    """

    def __init__(
        self,
        capacity_packets: int,
        name: str = "queue",
        fastpath: bool = True,
    ) -> None:
        super().__init__(capacity_packets, name=name)
        self.fastpath = fastpath
        if fastpath:
            self.enqueue = self._enqueue_fast  # type: ignore[method-assign]

    def enqueue(self, packet: Packet, now: float) -> bool:
        if len(self._queue) >= self.capacity_packets:
            return self._drop(packet)
        return self._accept(packet)

    def _enqueue_fast(self, packet: Packet, now: float) -> bool:
        queue = self._queue
        if len(queue) >= self.capacity_packets:
            self.dropped += 1
            if self.drop_hook is not None:
                self.drop_hook(packet)
            return False
        queue.append(packet)
        self.bytes_queued += packet.size
        self.enqueued += 1
        return True


class REDQueue(Queue):
    """Random Early Detection with the ``gentle`` option.

    Parameters follow the paper's simulations: for the 15 Mb/s bottleneck it
    uses ``min_thresh=10``, ``max_thresh=50``, total buffer 100 packets,
    ``max_p=0.1``, gentle enabled (section 4.1.2 footnote; the Figure 8
    footnote sets min_thresh 25 and max_thresh 5*min_thresh).

    The average queue size is an EWMA over instantaneous occupancy, updated
    on every arrival; while the link is idle the average decays as if
    ``idle_departures`` small packets had been serviced, per the RED paper.
    The owning :class:`~repro.net.link.Link` reports its speed via
    :meth:`set_service_rate`; a standalone queue falls back to
    :attr:`fallback_service_rate_bps` so the idle decay never silently
    freezes (``avg`` stuck across arbitrarily long idle periods was a
    long-standing bug when no service rate was wired up).

    Two per-packet code paths exist:

    * the **fast path** (default): one fused ``enqueue`` with the EWMA
      update, drop-probability and uniformization inlined, hoisted
      constants (threshold range, per-packet service time, ``1 - w`` and
      its log for the idle decay via ``exp``), and block-buffered uniform
      draws -- numpy fills array draws from the same bit stream as repeated
      scalar calls, so the decision stream is unchanged.  Because draws are
      buffered ahead, the queue's ``rng`` must not be shared with any other
      consumer (every in-repo builder hands RED a dedicated stream).
    * the **legacy path** (``fastpath=False``): the original per-packet
      recomputation, kept as the perf baseline.  Both paths make
      bit-identical decisions (fuzz-tested in
      ``tests/test_net_fastpath.py``).

    Forced drops (buffer overflow or ``p_b >= 1``) reset the uniformization
    counter to 0, matching ns-2 RED and the 1993 RED paper's pseudocode
    (``count <- 0`` on every drop); the counter is -1 only while the
    average sits below ``min_thresh``.
    """

    #: idle-decay fallback when :meth:`set_service_rate` was never called:
    #: the paper's nominal 15 Mb/s bottleneck, giving a mean-packet service
    #: time of ~0.53 ms for the default 1000-byte packets.
    fallback_service_rate_bps = 15e6

    def __init__(
        self,
        capacity_packets: int,
        min_thresh: float,
        max_thresh: float,
        max_p: float = 0.1,
        weight: float = 0.002,
        gentle: bool = True,
        rng: Optional[np.random.Generator] = None,
        mean_packet_size: int = 1000,
        ecn: bool = False,
        name: str = "red",
        fastpath: bool = True,
    ) -> None:
        super().__init__(capacity_packets, name=name)
        # Parameter validation and the hoisted decision constants live in
        # the shared RedParams (also consumed by the batched cell kernel).
        self.params = RedParams(
            min_thresh=float(min_thresh),
            max_thresh=float(max_thresh),
            max_p=float(max_p),
            weight=float(weight),
            gentle=gentle,
        )
        self.min_thresh = self.params.min_thresh
        self.max_thresh = self.params.max_thresh
        self.max_p = self.params.max_p
        self.weight = self.params.weight
        self.gentle = gentle
        self.mean_packet_size = mean_packet_size
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.avg = 0.0
        self._count_since_drop = -1  # -1: average below min_thresh
        self._idle_since: Optional[float] = None
        self._service_rate_bps: Optional[float] = None  # set by the owning link
        #: with ECN enabled, early congestion marks capable packets instead
        #: of dropping them (RFC 2481; forced drops still drop).
        self.ecn = ecn
        self.early_drops = 0
        self.forced_drops = 0
        self.ecn_marks = 0
        self.fastpath = fastpath
        # Hoisted per-packet constants.  Each is produced (in RedParams) by
        # the *same* float expression the legacy path evaluates per packet,
        # so using the cached value is bit-identical; only the idle-decay
        # ``exp(log(1-w) * m)`` replaces ``(1-w) ** m`` (equal to within
        # the last ulp of libm -- decision-identical in practice, asserted
        # against the legacy path in the equivalence tests).
        self._thresh_range = self.params.thresh_range
        self._two_max_thresh = self.params.two_max_thresh
        self._one_minus_max_p = self.params.one_minus_max_p
        # ``weight == 1`` (legal, degenerate EWMA) has no finite log; the
        # fast path then falls back to the legacy power expression.
        self._ln_one_minus_w = (
            log(1.0 - self.weight) if self.weight < 1.0 else None
        )
        self._packet_time = (
            self.mean_packet_size * 8
        ) / self.fallback_service_rate_bps
        # Block-buffered uniform draws (fast path only); the shared helper
        # consumes the same bit stream as per-call scalar draws, so the
        # decision stream is unchanged.  ``next`` is hoisted to a bound
        # method so the fused path pays one call, no extra lookups.
        self._draws = BlockDraws(self._rng, block=64)
        self._next_draw = self._draws.next
        if fastpath:
            self.enqueue = self._enqueue_fast  # type: ignore[method-assign]

    def set_service_rate(self, bits_per_second: float) -> None:
        """Tell RED the link speed so the idle-decay estimate is sensible."""
        if bits_per_second <= 0:
            raise ValueError("service rate must be positive")
        self._service_rate_bps = bits_per_second
        self._packet_time = (self.mean_packet_size * 8) / bits_per_second

    @property
    def has_service_rate(self) -> bool:
        """True once the owning link wired up :meth:`set_service_rate`."""
        return self._service_rate_bps is not None

    def _update_average(self, now: float) -> None:
        if self._queue:
            self.avg += self.weight * (len(self._queue) - self.avg)
            return
        # Queue is idle: decay avg as if m packets had departed while idle,
        # estimating the per-packet service time from the link speed (or
        # the nominal fallback when no link ever reported one).
        if self._idle_since is None:
            self._idle_since = now
        rate = self._service_rate_bps or self.fallback_service_rate_bps
        idle = max(0.0, now - self._idle_since)
        packet_time = (self.mean_packet_size * 8) / rate
        if packet_time > 0:
            self.avg *= (1.0 - self.weight) ** (idle / packet_time)
        # Re-anchor so the next arrival decays only the incremental idle
        # time; if this arrival is accepted the queue becomes busy and a
        # later dequeue-to-empty re-establishes the idle start.
        self._idle_since = now

    def _drop_probability(self) -> float:
        """Instantaneous mark probability p_b from the average queue size."""
        return red_drop_probability(self.params, self.avg)

    def enqueue(self, packet: Packet, now: float) -> bool:
        # Legacy per-packet path (the fast-path ctor rebinds ``enqueue`` to
        # :meth:`_enqueue_fast`); kept as the perf baseline.
        self._update_average(now)
        if len(self._queue) >= self.capacity_packets:
            self.forced_drops += 1
            self._count_since_drop = 0  # ns-2 RED: count <- 0 on every drop
            return self._drop(packet)
        p_b = self._drop_probability()
        if p_b >= 1.0:
            self.forced_drops += 1
            self._count_since_drop = 0
            return self._drop(packet)
        if p_b > 0.0:
            self._count_since_drop += 1
            # Uniformize inter-drop gaps: p_a = p_b / (1 - count * p_b).
            denom = 1.0 - self._count_since_drop * p_b
            p_a = 1.0 if denom <= 0 else min(1.0, p_b / denom)
            if self._next_uniform() < p_a:
                self._count_since_drop = 0
                if self.ecn and packet.ecn_capable:
                    packet.ecn_marked = True
                    self.ecn_marks += 1
                    return self._accept(packet)
                self.early_drops += 1
                return self._drop(packet)
        else:
            self._count_since_drop = -1
        return self._accept(packet)

    def _next_uniform(self) -> float:
        # Legacy-path draw: scalar, straight off the bit stream -- unless a
        # fast-path buffer is outstanding (a queue toggled mid-run), in
        # which case the buffer must drain first to keep the stream aligned.
        buffered = self._draws.take_buffered()
        if buffered is not None:
            return buffered
        return float(self._rng.random())

    def _enqueue_fast(self, packet: Packet, now: float) -> bool:
        """Fused fast-path enqueue: identical decisions, hoisted math.

        Inlines :meth:`_update_average`, :meth:`_drop_probability`, the
        uniformization step and :meth:`_accept` into one frame, against
        the constants precomputed in the constructor.
        """
        queue = self._queue
        qlen = len(queue)
        # --- EWMA update (inlined _update_average)
        if qlen:
            avg = self.avg + self.weight * (qlen - self.avg)
            self.avg = avg
        else:
            idle_since = self._idle_since
            if idle_since is None:
                idle_since = now
            idle = now - idle_since
            if idle < 0.0:
                idle = 0.0
            # (1-w)**m  ==  exp(ln(1-w) * m), with ln(1-w) hoisted.
            ln_base = self._ln_one_minus_w
            m = idle / self._packet_time
            if ln_base is not None:
                avg = self.avg * exp(ln_base * m)
            else:
                avg = self.avg * (1.0 - self.weight) ** m
            self.avg = avg
            self._idle_since = now
        # --- forced drop: buffer overflow
        if qlen >= self.capacity_packets:
            self.forced_drops += 1
            self._count_since_drop = 0
            return self._drop(packet)
        # --- drop probability (inlined _drop_probability)
        if avg < self.min_thresh:
            self._count_since_drop = -1
        else:
            if avg < self.max_thresh:
                p_b = (avg - self.min_thresh) / self._thresh_range * self.max_p
            elif self.gentle and avg < self._two_max_thresh:
                p_b = (
                    self.max_p
                    + (avg - self.max_thresh) / self.max_thresh
                    * self._one_minus_max_p
                )
            else:
                self.forced_drops += 1
                self._count_since_drop = 0
                return self._drop(packet)
            if p_b >= 1.0:
                self.forced_drops += 1
                self._count_since_drop = 0
                return self._drop(packet)
            if p_b > 0.0:
                count = self._count_since_drop + 1
                self._count_since_drop = count
                denom = 1.0 - count * p_b
                p_a = 1.0 if denom <= 0 else min(1.0, p_b / denom)
                # --- block-buffered uniform draw (shared BlockDraws helper)
                if self._next_draw() < p_a:
                    self._count_since_drop = 0
                    if self.ecn and packet.ecn_capable:
                        packet.ecn_marked = True
                        self.ecn_marks += 1
                        queue.append(packet)
                        self.bytes_queued += packet.size
                        self.enqueued += 1
                        return True
                    self.early_drops += 1
                    return self._drop(packet)
            else:
                self._count_since_drop = -1
        # --- accept (inlined _accept)
        queue.append(packet)
        self.bytes_queued += packet.size
        self.enqueued += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        packet = super().dequeue(now)
        if packet is not None and not self._queue:
            self._idle_since = now
        return packet
