"""RED decision math, factored out of the queue for reuse by batch kernels.

:class:`~repro.net.queues.REDQueue` fuses this math into its per-packet
enqueue for speed; the batched cell kernel (``repro.sim.vector_kernel``)
needs the *same float expressions* applied across a vector of per-cell
average-queue states.  Keeping one definition of the constants and the
drop-probability / uniformization expressions here guarantees the scalar
and vectorized forms stay bit-identical: every vector helper evaluates,
element-wise, exactly the arithmetic its scalar twin evaluates (selection
via ``np.where`` discards the untaken branches' values, just as control
flow does in the scalar form).

Follows Floyd & Jacobson (1993) with the ``gentle`` extension (drop
probability rising linearly from ``max_p`` to 1 between ``maxthresh`` and
``2*maxthresh``) and the ns-2 uniformization ``p_a = p_b / (1 - count*p_b)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class RedParams:
    """RED parameters plus the hoisted per-packet constants.

    The derived fields are produced by the same float expressions the
    legacy per-packet path evaluates, so substituting them is bit-exact.
    """

    min_thresh: float
    max_thresh: float
    max_p: float = 0.1
    weight: float = 0.002
    gentle: bool = True
    # Hoisted constants, derived in __post_init__.
    thresh_range: float = field(init=False)
    two_max_thresh: float = field(init=False)
    one_minus_max_p: float = field(init=False)

    def __post_init__(self) -> None:
        if not 0 < self.min_thresh < self.max_thresh:
            raise ValueError("need 0 < min_thresh < max_thresh")
        if not 0 < self.max_p <= 1:
            raise ValueError("max_p must be in (0, 1]")
        if not 0 < self.weight <= 1:
            raise ValueError("EWMA weight must be in (0, 1]")
        object.__setattr__(self, "thresh_range", self.max_thresh - self.min_thresh)
        object.__setattr__(self, "two_max_thresh", 2 * self.max_thresh)
        object.__setattr__(self, "one_minus_max_p", 1.0 - self.max_p)


def red_drop_probability(params: RedParams, avg: float) -> float:
    """Instantaneous mark probability p_b from the average queue size."""
    if avg < params.min_thresh:
        return 0.0
    if avg < params.max_thresh:
        return (avg - params.min_thresh) / params.thresh_range * params.max_p
    if params.gentle and avg < params.two_max_thresh:
        return (
            params.max_p
            + (avg - params.max_thresh) / params.max_thresh
            * params.one_minus_max_p
        )
    return 1.0


# tfrc-audit: twin-of repro.net.redmath.red_drop_probability
def red_drop_probability_vec(params: RedParams, avg: np.ndarray) -> np.ndarray:
    """Element-wise :func:`red_drop_probability` over a vector of averages."""
    mid = (avg - params.min_thresh) / params.thresh_range * params.max_p
    below_max = avg < params.max_thresh
    if below_max.all():
        # Common case: every average sits below maxthresh, so the gentle /
        # forced zones are never selected and need not be evaluated.
        return np.where(avg < params.min_thresh, 0.0, mid)
    if params.gentle:
        gentle_zone = (
            params.max_p
            + (avg - params.max_thresh) / params.max_thresh
            * params.one_minus_max_p
        )
        above = np.where(avg < params.two_max_thresh, gentle_zone, 1.0)
    else:
        above = np.full_like(avg, 1.0)
    return np.where(
        avg < params.min_thresh,
        0.0,
        np.where(below_max, mid, above),
    )


def red_uniformized(p_b: float, count: int) -> float:
    """Uniformize inter-drop gaps: p_a = p_b / (1 - count * p_b)."""
    denom = 1.0 - count * p_b
    return 1.0 if denom <= 0 else min(1.0, p_b / denom)


# tfrc-audit: twin-of repro.net.redmath.red_uniformized
def red_uniformized_vec(p_b: np.ndarray, count: np.ndarray) -> np.ndarray:
    """Element-wise :func:`red_uniformized` over vectors of p_b and counts."""
    denom = 1.0 - count * p_b
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = p_b / denom
    return np.where(denom <= 0.0, 1.0, np.minimum(1.0, ratio))


def red_ewma(weight: float, avg: float, qlen: float) -> float:
    """One busy-queue EWMA step: ``avg + w * (qlen - avg)``."""
    return avg + weight * (qlen - avg)


# tfrc-audit: twin-of repro.net.redmath.red_ewma
def red_ewma_vec(weight: float, avg: np.ndarray, qlen: np.ndarray) -> np.ndarray:
    """Element-wise :func:`red_ewma` over vectors of averages/occupancies."""
    return avg + weight * (qlen - avg)
