"""Link and flow monitors.

Monitors observe the network without influencing it.  They accumulate the
raw material the analysis layer needs: per-flow byte arrival events (for the
send-rate time series of paper Eq. 2), link drop/forward counts (loss rate,
utilization), and queue-occupancy samples (Figure 14).

Accumulators are **columnar** by default: per-flow parallel arrays (arrival
times + cumulative bytes) instead of dict-of-tuple-lists, so the per-packet
callback is two list appends and window queries (`throughput_bps`,
`queue_series`) are ``bisect`` slices on sorted time arrays instead of full
scans.  The PR-1 accumulators are kept behind ``columnar=False`` for the
perf-trajectory baseline; both modes return identical values (byte totals
are exact integer sums either way).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class LinkMonitor:
    """Tracks a link's departures, drops, and queue occupancy over time."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        tracer: Optional[Tracer] = None,
        sample_queue: bool = True,
        columnar: bool = True,
    ) -> None:
        self.sim = sim
        self.link = link
        self.tracer = tracer
        self.columnar = columnar
        # Columnar storage: parallel (time, value) arrays.
        self._queue_times: List[float] = []
        self._queue_depths: List[int] = []
        self._drop_times: List[float] = []
        self._drop_flows: List[str] = []
        # Legacy storage: lists of tuples.
        self._queue_samples_legacy: List[Tuple[float, int]] = []
        self._drops_legacy: List[Tuple[float, str]] = []
        self._wrap_queue()
        if sample_queue:
            link.add_queue_sample_hook(self._make_queue_hook())

    @property
    def queue_samples(self) -> List[Tuple[float, int]]:
        """Queue-depth samples as ``(time, depth)`` pairs, in time order."""
        if not self.columnar:
            return self._queue_samples_legacy
        return list(zip(self._queue_times, self._queue_depths))

    @property
    def drops(self) -> List[Tuple[float, str]]:
        """Drops as ``(time, flow_id)`` pairs, in time order."""
        if not self.columnar:
            return self._drops_legacy
        return list(zip(self._drop_times, self._drop_flows))

    def _wrap_queue(self) -> None:
        previous_hook = self.link.queue.drop_hook

        def on_drop(packet: Packet) -> None:
            now = self.sim.now
            if self.columnar:
                self._drop_times.append(now)
                self._drop_flows.append(packet.flow_id)
            else:
                self._drops_legacy.append((now, packet.flow_id))
            if self.tracer is not None:
                self.tracer.record(
                    now, "drop", self.link.name, packet.size,
                    meta={"flow": packet.flow_id, "seq": packet.seq},
                )
            if previous_hook is not None:
                previous_hook(packet)

        self.link.queue.drop_hook = on_drop

    def _on_queue_sample(self, now: float, depth: int) -> None:
        if self.columnar:
            self._queue_times.append(now)
            self._queue_depths.append(depth)
        else:
            self._queue_samples_legacy.append((now, depth))
        if self.tracer is not None:
            self.tracer.record(now, "queue", self.link.name, depth)

    def _make_queue_hook(self):
        """A per-sample hook specialized once for this monitor's mode.

        Queue samples fire on every enqueue *and* dequeue of a monitored
        link, so the columnar/tracer branches of
        :meth:`_on_queue_sample` are resolved here instead of per packet.
        """
        tracer = self.tracer
        if not self.columnar:
            # Legacy mode is the perf baseline: keep the generic method.
            return self._on_queue_sample
        times_append = self._queue_times.append
        depths_append = self._queue_depths.append
        if tracer is None:
            def hook(now: float, depth: int) -> None:
                times_append(now)
                depths_append(depth)
            return hook
        record = tracer.record
        name = self.link.name

        def hook(now: float, depth: int) -> None:
            times_append(now)
            depths_append(depth)
            record(now, "queue", name, depth)
        return hook

    @property
    def drop_count(self) -> int:
        if not self.columnar:
            return len(self._drops_legacy)
        return len(self._drop_times)

    def loss_rate(self) -> float:
        """Fraction of offered packets the queue dropped."""
        offered = self.link.queue.enqueued + self.link.queue.dropped
        if offered == 0:
            return 0.0
        return self.link.queue.dropped / offered

    def utilization(self, duration: float) -> float:
        """Fraction of ``duration`` the link spent transmitting."""
        if duration <= 0:
            return 0.0
        return min(1.0, self.link.utilization_seconds / duration)

    def queue_series(
        self, t_min: float = 0.0, t_max: Optional[float] = None
    ) -> List[Tuple[float, int]]:
        """Queue-depth samples within a window (bisect-sliced, no scan)."""
        if not self.columnar:
            return [
                (t, d)
                for t, d in self._queue_samples_legacy
                if t >= t_min and (t_max is None or t <= t_max)
            ]
        times = self._queue_times
        lo = bisect_left(times, t_min)
        hi = len(times) if t_max is None else bisect_right(times, t_max)
        return list(zip(times[lo:hi], self._queue_depths[lo:hi]))


class _ArrivalsView(Mapping):
    """Read-only per-flow view over a columnar :class:`FlowMonitor`."""

    __slots__ = ("_monitor",)

    def __init__(self, monitor: "FlowMonitor") -> None:
        self._monitor = monitor

    def __getitem__(self, flow_id: str) -> List[Tuple[float, int]]:
        if flow_id not in self._monitor._series:
            raise KeyError(flow_id)
        return self._monitor.arrival_series(flow_id)

    def __iter__(self) -> Iterator[str]:
        return iter(self._monitor._series)

    def __len__(self) -> int:
        return len(self._monitor._series)


class _FlowSeries:
    """Columnar per-flow arrival series: times plus cumulative bytes."""

    __slots__ = ("times", "cum", "total")

    def __init__(self) -> None:
        self.times: List[float] = []
        self.cum: List[int] = []  # cum[i] = bytes delivered through arrival i
        self.total = 0


class FlowMonitor:
    """Accumulates per-flow arrival events at a measurement point.

    Endpoints call :meth:`on_packet` for every data packet they deliver to
    the application.  :attr:`arrivals` exposes the time-ordered
    ``(time, bytes)`` pairs per flow -- the exact input needed to compute the
    paper's R_tau send-rate time series -- while :meth:`throughput_bps`
    answers window queries from the cumulative-byte arrays in O(log n).
    """

    def __init__(
        self, tracer: Optional[Tracer] = None, columnar: bool = True
    ) -> None:
        self.tracer = tracer
        self.columnar = columnar
        self._series: Dict[str, _FlowSeries] = {}
        # Legacy accumulators (PR-1 behaviour).
        self._arrivals_legacy: Dict[str, List[Tuple[float, int]]] = {}
        self._bytes_legacy: Dict[str, int] = {}
        self._packets_legacy: Dict[str, int] = {}

    def on_packet(self, now: float, packet: Packet) -> None:
        """Record the delivery of ``packet`` at time ``now``."""
        flow_id = packet.flow_id
        size = packet.size
        if self.columnar:
            series = self._series.get(flow_id)
            if series is None:
                series = _FlowSeries()
                self._series[flow_id] = series
            series.times.append(now)
            series.total += size
            series.cum.append(series.total)
        else:
            self._arrivals_legacy.setdefault(flow_id, []).append((now, size))
            self._bytes_legacy[flow_id] = (
                self._bytes_legacy.get(flow_id, 0) + size
            )
            self._packets_legacy[flow_id] = (
                self._packets_legacy.get(flow_id, 0) + 1
            )
        if self.tracer is not None:
            self.tracer.record(now, "recv", flow_id, size)

    # ------------------------------------------------------- derived views

    @property
    def arrivals(self) -> Mapping[str, List[Tuple[float, int]]]:
        """Per-flow time-ordered ``(time, bytes)`` pairs.

        In columnar mode this is a lazy read-only mapping: each lookup
        reconstructs only the requested flow's pair list from the arrays.
        """
        if not self.columnar:
            return self._arrivals_legacy
        return _ArrivalsView(self)

    def arrival_series(self, flow_id: str) -> List[Tuple[float, int]]:
        """One flow's ``(time, bytes)`` pairs ([] for unknown flows)."""
        if not self.columnar:
            return self._arrivals_legacy.get(flow_id, [])
        series = self._series.get(flow_id)
        if series is None:
            return []
        cum = series.cum
        sizes = [cum[0]] if cum else []
        sizes.extend(cum[i] - cum[i - 1] for i in range(1, len(cum)))
        return list(zip(series.times, sizes))

    @property
    def bytes_by_flow(self) -> Dict[str, int]:
        if not self.columnar:
            return self._bytes_legacy
        return {fid: s.total for fid, s in self._series.items()}

    @property
    def packets_by_flow(self) -> Dict[str, int]:
        if not self.columnar:
            return self._packets_legacy
        return {fid: len(s.times) for fid, s in self._series.items()}

    def throughput_bps(self, flow_id: str, t_min: float, t_max: float) -> float:
        """Average delivered rate for ``flow_id`` over [t_min, t_max]."""
        if t_max <= t_min:
            raise ValueError("need t_max > t_min")
        if not self.columnar:
            total = sum(
                size
                for time, size in self._arrivals_legacy.get(flow_id, [])
                if t_min <= time <= t_max
            )
            return total * 8 / (t_max - t_min)
        series = self._series.get(flow_id)
        if series is None:
            return 0.0
        times = series.times
        lo = bisect_left(times, t_min)
        hi = bisect_right(times, t_max)
        if hi <= lo:
            return 0.0
        cum = series.cum
        total = cum[hi - 1] - (cum[lo - 1] if lo else 0)
        return total * 8 / (t_max - t_min)

    def flows(self) -> List[str]:
        if not self.columnar:
            return sorted(self._arrivals_legacy)
        return sorted(self._series)
