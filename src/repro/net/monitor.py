"""Link and flow monitors.

Monitors observe the network without influencing it.  They accumulate the
raw material the analysis layer needs: per-flow byte arrival events (for the
send-rate time series of paper Eq. 2), link drop/forward counts (loss rate,
utilization), and queue-occupancy samples (Figure 14).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class LinkMonitor:
    """Tracks a link's departures, drops, and queue occupancy over time."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        tracer: Optional[Tracer] = None,
        sample_queue: bool = True,
    ) -> None:
        self.sim = sim
        self.link = link
        self.tracer = tracer
        self.queue_samples: List[Tuple[float, int]] = []
        self.drops: List[Tuple[float, str]] = []
        self._wrap_queue()
        if sample_queue:
            link.add_queue_sample_hook(self._on_queue_sample)

    def _wrap_queue(self) -> None:
        previous_hook = self.link.queue.drop_hook

        def on_drop(packet: Packet) -> None:
            self.drops.append((self.sim.now, packet.flow_id))
            if self.tracer is not None:
                self.tracer.record(
                    self.sim.now, "drop", self.link.name, packet.size,
                    meta={"flow": packet.flow_id, "seq": packet.seq},
                )
            if previous_hook is not None:
                previous_hook(packet)

        self.link.queue.drop_hook = on_drop

    def _on_queue_sample(self, now: float, depth: int) -> None:
        self.queue_samples.append((now, depth))
        if self.tracer is not None:
            self.tracer.record(now, "queue", self.link.name, depth)

    @property
    def drop_count(self) -> int:
        return len(self.drops)

    def loss_rate(self) -> float:
        """Fraction of offered packets the queue dropped."""
        offered = self.link.queue.enqueued + self.link.queue.dropped
        if offered == 0:
            return 0.0
        return self.link.queue.dropped / offered

    def utilization(self, duration: float) -> float:
        """Fraction of ``duration`` the link spent transmitting."""
        if duration <= 0:
            return 0.0
        return min(1.0, self.link.utilization_seconds / duration)

    def queue_series(
        self, t_min: float = 0.0, t_max: Optional[float] = None
    ) -> List[Tuple[float, int]]:
        """Queue-depth samples within a window."""
        return [
            (t, d)
            for t, d in self.queue_samples
            if t >= t_min and (t_max is None or t <= t_max)
        ]


class FlowMonitor:
    """Accumulates per-flow arrival events at a measurement point.

    Endpoints call :meth:`on_packet` for every data packet they deliver to
    the application.  ``arrivals[flow_id]`` is a time-ordered list of
    ``(time, bytes)`` pairs, the exact input needed to compute the paper's
    R_tau send-rate time series.
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer
        self.arrivals: Dict[str, List[Tuple[float, int]]] = {}
        self.bytes_by_flow: Dict[str, int] = {}
        self.packets_by_flow: Dict[str, int] = {}

    def on_packet(self, now: float, packet: Packet) -> None:
        """Record the delivery of ``packet`` at time ``now``."""
        self.arrivals.setdefault(packet.flow_id, []).append((now, packet.size))
        self.bytes_by_flow[packet.flow_id] = (
            self.bytes_by_flow.get(packet.flow_id, 0) + packet.size
        )
        self.packets_by_flow[packet.flow_id] = (
            self.packets_by_flow.get(packet.flow_id, 0) + 1
        )
        if self.tracer is not None:
            self.tracer.record(now, "recv", packet.flow_id, packet.size)

    def throughput_bps(self, flow_id: str, t_min: float, t_max: float) -> float:
        """Average delivered rate for ``flow_id`` over [t_min, t_max]."""
        if t_max <= t_min:
            raise ValueError("need t_max > t_min")
        total = sum(
            size
            for time, size in self.arrivals.get(flow_id, [])
            if t_min <= time <= t_max
        )
        return total * 8 / (t_max - t_min)

    def flows(self) -> List[str]:
        return sorted(self.arrivals)
