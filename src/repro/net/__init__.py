"""Packet-level network model.

This package replaces the ns-2 link/queue substrate the paper evaluates on:

* :mod:`~repro.net.packet` -- packets with flow ids, sequence numbers, and
  protocol payloads.
* :mod:`~repro.net.queues` -- DropTail and RED queue disciplines.
* :mod:`~repro.net.link` -- store-and-forward links that serialize packets at
  a configured bandwidth and add propagation delay.
* :mod:`~repro.net.path` -- unidirectional paths (chains of links) plus the
  convenience :class:`~repro.net.path.LossyPath` used for Bernoulli /
  deterministic loss models in the protocol-mechanics figures.
* :mod:`~repro.net.monitor` -- per-link and per-flow counters.
* :mod:`~repro.net.topology` -- the dumbbell builder used by the fairness
  experiments.
* :mod:`~repro.net.dummynet` -- a single configurable pipe mirroring how the
  paper uses Rizzo's Dummynet for the oscillation experiments.
* :mod:`~repro.net.lossmodels` -- correlated (Gilbert-Elliott), trace-replay
  and policer loss models for emulating real-path loss behaviour.
"""

from repro.net.packet import Packet, PacketType
from repro.net.queues import DropTailQueue, Queue, REDQueue
from repro.net.link import Link
from repro.net.path import LossyPath, Path
from repro.net.monitor import FlowMonitor, LinkMonitor
from repro.net.topology import Dumbbell, DumbbellConfig
from repro.net.dummynet import DummynetPipe
from repro.net.lossmodels import (
    GilbertElliottLoss,
    TraceLoss,
    gilbert_elliott_from_rate,
)

__all__ = [
    "Packet",
    "PacketType",
    "Queue",
    "DropTailQueue",
    "REDQueue",
    "Link",
    "Path",
    "LossyPath",
    "LinkMonitor",
    "FlowMonitor",
    "Dumbbell",
    "DumbbellConfig",
    "DummynetPipe",
    "GilbertElliottLoss",
    "TraceLoss",
    "gilbert_elliott_from_rate",
]
