"""Unidirectional paths and controlled-loss paths.

:class:`Path` chains links so a packet injected at the head is delivered to
the sink after traversing every hop.  :class:`LossyPath` wraps an ideal path
with a programmable loss model -- Bernoulli, deterministic every-Nth, or a
time-varying schedule -- which the protocol-mechanics figures (2, 19, 20, 21)
use to impose exact loss patterns, exactly as the paper's appendix
simulations do.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.link import Link, Receiver
from repro.net.packet import Packet
from repro.sim.engine import Simulator


class Path:
    """A chain of links delivering packets to a final receiver."""

    def __init__(self, links: Sequence[Link], name: str = "path") -> None:
        if not links:
            raise ValueError("a path needs at least one link")
        self.links: List[Link] = list(links)
        self.name = name
        for upstream, downstream in zip(self.links, self.links[1:]):
            upstream.connect(downstream.send)

    def connect(self, receiver: Receiver) -> None:
        """Attach the endpoint that consumes packets leaving the last link."""
        self.links[-1].connect(receiver)

    def send(self, packet: Packet) -> bool:
        """Inject ``packet`` at the head of the path."""
        return self.links[0].send(packet)

    @property
    def min_bandwidth_bps(self) -> float:
        return min(link.bandwidth_bps for link in self.links)

    @property
    def base_delay(self) -> float:
        """Sum of propagation delays (excludes queueing/serialization)."""
        return sum(link.propagation_delay for link in self.links)


LossModel = Callable[[Packet, float], bool]
"""A loss model maps ``(packet, now)`` to True when the packet is dropped."""


def bernoulli_loss(probability: float, rng: np.random.Generator) -> LossModel:
    """Drop each packet independently with ``probability``."""
    if not 0 <= probability < 1:
        raise ValueError("loss probability must be in [0, 1)")

    def model(packet: Packet, now: float) -> bool:
        return rng.random() < probability

    return model


def periodic_loss(period: int, offset: int = 0) -> LossModel:
    """Drop every ``period``-th packet deterministically.

    With ``period=100`` this reproduces the appendix scenario "every 100th
    packet dropped".  Only data packets are counted.
    """
    if period < 1:
        raise ValueError("period must be >= 1")
    counter = {"n": offset}

    def model(packet: Packet, now: float) -> bool:
        if not packet.is_data:
            return False
        counter["n"] += 1
        return counter["n"] % period == 0

    return model


def scheduled_loss(schedule: Sequence[Tuple[float, LossModel]]) -> LossModel:
    """Switch between loss models over time.

    ``schedule`` is a list of ``(start_time, model)`` pairs in increasing
    start-time order; the model whose start time most recently passed is
    active.  Used for Figure 2's 1% -> 10% -> 0.5% pattern and Figure 20's
    switch to persistent congestion at t=10.
    """
    if not schedule:
        raise ValueError("schedule must not be empty")
    times = [t for t, _ in schedule]
    if any(b <= a for a, b in zip(times, times[1:])):
        raise ValueError("schedule start times must be strictly increasing")

    def model(packet: Packet, now: float) -> bool:
        active = schedule[0][1]
        for start, candidate in schedule:
            if now >= start:
                active = candidate
            else:
                break
        return active(packet, now)

    return model


class LossyPath:
    """An ideal fixed-delay pipe with an explicit loss model.

    Unlike :class:`Path`, congestion loss never occurs here; losses come
    only from the model.  This isolates the protocol mechanics under study
    from queue dynamics -- the methodology of the paper's Figures 2 and
    19-21.

    When ``bandwidth_bps`` is set the pipe serializes packets one after
    another (an unbounded FIFO): delivery cannot exceed the configured
    rate, and overdriving the pipe shows up as growing delay -- which is
    what makes the slow-start receive-rate cap observable on this path.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        loss_model: Optional[LossModel] = None,
        bandwidth_bps: Optional[float] = None,
        name: str = "lossy-path",
    ) -> None:
        if delay < 0:
            raise ValueError("delay cannot be negative")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        self.sim = sim
        self.delay = float(delay)
        self.loss_model = loss_model
        self.bandwidth_bps = bandwidth_bps
        self.name = name
        self._receiver: Optional[Receiver] = None
        self._busy_until = 0.0
        self.packets_sent = 0
        self.packets_dropped = 0

    def connect(self, receiver: Receiver) -> None:
        self._receiver = receiver

    def send(self, packet: Packet) -> bool:
        if self._receiver is None:
            raise RuntimeError(f"path {self.name} has no receiver connected")
        self.packets_sent += 1
        if self.loss_model is not None and self.loss_model(packet, self.sim.now):
            self.packets_dropped += 1
            return False
        departure = self.sim.now
        if self.bandwidth_bps:
            serialization = packet.size * 8 / self.bandwidth_bps
            departure = max(self.sim.now, self._busy_until) + serialization
            self._busy_until = departure
        self.sim.schedule(departure + self.delay, self._receiver, packet)
        return True
