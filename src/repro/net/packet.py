"""Packets and packet metadata.

A packet is a small mutable record.  Protocol-specific state (TCP flags,
TFRC feedback fields) travels in the ``payload`` attribute so the network
layer stays protocol-agnostic.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional


class PacketType(enum.Enum):
    """Coarse packet classification used by queues and monitors."""

    DATA = "data"
    ACK = "ack"
    FEEDBACK = "feedback"


_packet_uid = itertools.count()


class Packet:
    """A simulated packet.

    Attributes:
        flow_id: opaque string identifying the flow, used by monitors and by
            receivers to demultiplex.
        seq: per-flow sequence number (data packets) or cumulative ACK number
            (ACK packets).
        size: size in bytes, including headers.
        ptype: coarse type (data / ack / feedback).
        sent_at: timestamp the packet entered the network (set by the sender).
        payload: protocol-specific object (e.g. a TFRC feedback report).
        uid: globally unique id, handy for tracing retransmissions, which
            reuse ``seq`` but get a fresh ``uid``.
        ecn_capable: the flow understands ECN; RED (with ECN enabled) marks
            this packet under early congestion instead of dropping it.
        ecn_marked: set by a queue that signalled congestion on this packet.
    """

    __slots__ = (
        "flow_id", "seq", "size", "ptype", "sent_at", "payload", "uid",
        "ecn_capable", "ecn_marked",
    )

    def __init__(
        self,
        flow_id: str,
        seq: int,
        size: int,
        ptype: PacketType = PacketType.DATA,
        sent_at: float = 0.0,
        payload: Optional[Any] = None,
        ecn_capable: bool = False,
    ) -> None:
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.flow_id = flow_id
        self.seq = seq
        self.size = size
        self.ptype = ptype
        self.sent_at = sent_at
        self.payload = payload
        self.uid = next(_packet_uid)
        #: ECN (RFC 2481, cited by the paper as a future direction): a
        #: capable packet is marked instead of early-dropped by RED.
        self.ecn_capable = ecn_capable
        self.ecn_marked = False

    @property
    def is_data(self) -> bool:
        return self.ptype is PacketType.DATA

    @property
    def is_ack(self) -> bool:
        return self.ptype is PacketType.ACK

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet {self.flow_id} seq={self.seq} {self.ptype.value} "
            f"{self.size}B uid={self.uid}>"
        )
