"""A Dummynet-style single pipe.

The paper uses Rizzo's Dummynet to study TFRC oscillations against a single
DropTail bottleneck with a configurable buffer (Figures 3 and 4).  This is
the equivalent construct on our simulator: one forward link with a small
DropTail queue, and a fixed-delay reverse channel for feedback.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.link import Link, Receiver
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator


class DummynetPipe:
    """One bidirectional emulated pipe: rate-limit + delay + finite buffer."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        delay: float,
        buffer_packets: int,
        name: str = "dummynet",
    ) -> None:
        self.sim = sim
        self.name = name
        self.delay = float(delay)
        self.queue = DropTailQueue(buffer_packets, name=f"{name}-q")
        self.forward_link = Link(
            sim, bandwidth_bps, delay, self.queue, name=f"{name}-fwd"
        )
        self._reverse_receiver: Optional[Receiver] = None

    def connect_forward(self, receiver: Receiver) -> None:
        """Attach the receiver-side endpoint (gets data packets)."""
        self.forward_link.connect(receiver)

    def connect_reverse(self, receiver: Receiver) -> None:
        """Attach the sender-side endpoint (gets feedback packets)."""
        self._reverse_receiver = receiver

    def send_forward(self, packet: Packet) -> bool:
        """Sender -> receiver direction, through the rate limiter."""
        return self.forward_link.send(packet)

    def send_reverse(self, packet: Packet) -> bool:
        """Receiver -> sender direction: fixed delay, no loss, no queueing.

        Feedback packets are small and the paper's Dummynet experiments do
        not congest the return path.
        """
        if self._reverse_receiver is None:
            raise RuntimeError("reverse endpoint not connected")
        self.sim.schedule_in(self.delay, self._reverse_receiver, packet)
        return True

    @property
    def base_rtt(self) -> float:
        """Round-trip propagation time, excluding queueing."""
        return 2 * self.delay
