"""Stochastic loss models beyond Bernoulli.

:mod:`repro.net.path` defines the ``LossModel`` callable contract --
``(packet, now) -> dropped?`` -- and the simple Bernoulli / periodic /
scheduled models the protocol-mechanics figures need.  This module adds the
models required to emulate *real* paths (the paper's section 4.3 Internet
experiments observed bursty, correlated loss that a Bernoulli process cannot
produce):

* :class:`GilbertElliottLoss` -- the classic two-state Markov loss model.
  Real Internet paths drop packets in bursts (router buffer overflows hit
  consecutive arrivals); Gilbert-Elliott captures this with a GOOD state
  (low loss) and a BAD state (high loss) with geometric sojourn times.
* :class:`TraceLoss` -- replays a recorded boolean drop sequence, so a loss
  pattern captured from one experiment can be imposed verbatim on another
  (used by the Figure 18 predictor methodology, which evaluates estimators
  on *fixed* loss traces).
* :func:`rate_limited_loss` -- wraps another model so it never exceeds a
  drop budget over a sliding window, modelling policers.

All models are deterministic given their ``numpy`` Generator, preserving the
repository-wide reproducibility guarantee.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.packet import Packet
from repro.net.path import LossModel


class GilbertElliottLoss:
    """Two-state Markov (Gilbert-Elliott) packet loss model.

    The chain has a GOOD and a BAD state.  On each data packet the model
    first makes a state transition, then drops the packet with the loss
    probability of the current state.

    Args:
        p_good_to_bad: transition probability GOOD -> BAD per packet.
        p_bad_to_good: transition probability BAD -> GOOD per packet.
        loss_good: drop probability while in GOOD (often 0 or tiny).
        loss_bad: drop probability while in BAD (often large, e.g. 0.5).
        rng: numpy random generator (seeded by the caller).

    The stationary probability of being in BAD is
    ``p_good_to_bad / (p_good_to_bad + p_bad_to_good)``, giving a long-run
    loss rate of ``pi_good * loss_good + pi_bad * loss_bad`` (exposed as
    :attr:`stationary_loss_rate` and verified by property tests).
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_good: float,
        loss_bad: float,
        rng: np.random.Generator,
    ) -> None:
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if p_good_to_bad + p_bad_to_good == 0:
            raise ValueError("the chain must be able to change state")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.rng = rng
        self.in_bad_state = False
        self.packets_seen = 0
        self.packets_dropped = 0

    @property
    def stationary_bad_probability(self) -> float:
        """Long-run fraction of time the chain spends in the BAD state."""
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run packet loss rate implied by the chain parameters."""
        pi_bad = self.stationary_bad_probability
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad

    @property
    def mean_burst_length(self) -> float:
        """Expected number of packets per BAD-state sojourn."""
        return 1.0 / self.p_bad_to_good if self.p_bad_to_good > 0 else float("inf")

    def __call__(self, packet: Packet, now: float) -> bool:
        if not packet.is_data:
            return False
        self.packets_seen += 1
        if self.in_bad_state:
            if self.rng.random() < self.p_bad_to_good:
                self.in_bad_state = False
        else:
            if self.rng.random() < self.p_good_to_bad:
                self.in_bad_state = True
        loss_p = self.loss_bad if self.in_bad_state else self.loss_good
        dropped = bool(self.rng.random() < loss_p)
        if dropped:
            self.packets_dropped += 1
        return dropped


def gilbert_elliott_from_rate(
    target_loss_rate: float,
    mean_burst_length: float,
    rng: np.random.Generator,
    loss_bad: float = 1.0,
) -> GilbertElliottLoss:
    """Construct a Gilbert-Elliott model from observable quantities.

    ``target_loss_rate`` is the desired long-run loss fraction and
    ``mean_burst_length`` the average number of *consecutive* drops.  The
    GOOD state is lossless; the BAD state drops with ``loss_bad``.

    With ``loss_bad = 1`` every BAD packet is dropped, so the burst length
    equals the BAD sojourn, giving ``p_bad_to_good = 1 / mean_burst_length``
    and ``pi_bad = target_loss_rate``.
    """
    if not 0 < target_loss_rate < 1:
        raise ValueError("target_loss_rate must be in (0, 1)")
    if mean_burst_length < 1:
        raise ValueError("mean_burst_length must be >= 1")
    if not 0 < loss_bad <= 1:
        raise ValueError("loss_bad must be in (0, 1]")
    pi_bad = target_loss_rate / loss_bad
    if pi_bad >= 1:
        raise ValueError(
            f"target_loss_rate {target_loss_rate} unreachable with "
            f"loss_bad {loss_bad}"
        )
    p_bad_to_good = 1.0 / mean_burst_length
    p_good_to_bad = p_bad_to_good * pi_bad / (1.0 - pi_bad)
    return GilbertElliottLoss(
        p_good_to_bad=p_good_to_bad,
        p_bad_to_good=p_bad_to_good,
        loss_good=0.0,
        loss_bad=loss_bad,
        rng=rng,
    )


class TraceLoss:
    """Replay a recorded drop pattern.

    ``trace`` is a sequence of booleans (True = drop) consumed one entry per
    data packet.  When the trace is exhausted the model either repeats from
    the start (``loop=True``, the default) or stops dropping.

    Recording the decisions of another model is supported via
    :meth:`recording`, which wraps a model so its verdicts are captured for
    later replay -- the Figure 18 predictor study runs every estimator
    configuration against identical loss traces this way.
    """

    def __init__(self, trace: Iterable[bool], loop: bool = True) -> None:
        self.trace: List[bool] = [bool(x) for x in trace]
        if not self.trace:
            raise ValueError("trace must not be empty")
        self.loop = loop
        self._index = 0
        self.packets_seen = 0
        self.packets_dropped = 0

    @classmethod
    def recording(cls, inner: LossModel) -> Tuple[LossModel, List[bool]]:
        """Wrap ``inner`` so its drop decisions are recorded.

        Returns ``(wrapped_model, record)`` where ``record`` grows one entry
        per data packet and can later seed ``TraceLoss(record)``.
        """
        record: List[bool] = []

        def model(packet: Packet, now: float) -> bool:
            dropped = inner(packet, now)
            if packet.is_data:
                record.append(bool(dropped))
            return dropped

        return model, record

    def __call__(self, packet: Packet, now: float) -> bool:
        if not packet.is_data:
            return False
        self.packets_seen += 1
        if self._index >= len(self.trace):
            if not self.loop:
                return False
            self._index = 0
        dropped = self.trace[self._index]
        self._index += 1
        if dropped:
            self.packets_dropped += 1
        return dropped


def rate_limited_loss(
    inner: LossModel, max_drops: int, window: float
) -> LossModel:
    """Cap ``inner`` to at most ``max_drops`` drops per ``window`` seconds.

    Useful for modelling token-bucket policers and for bounding synthetic
    impairment so a test path cannot starve a flow outright.
    """
    if max_drops < 0:
        raise ValueError("max_drops cannot be negative")
    if window <= 0:
        raise ValueError("window must be positive")
    recent: Deque[float] = deque()

    def model(packet: Packet, now: float) -> bool:
        while recent and recent[0] <= now - window:
            recent.popleft()
        if not inner(packet, now):
            return False
        if len(recent) >= max_drops:
            return False  # budget exhausted: let the packet through
        recent.append(now)
        return True

    return model


def loss_run_lengths(trace: Sequence[bool]) -> List[int]:
    """Lengths of consecutive-drop runs in a boolean drop trace.

    Analysis helper for validating burstiness: for a Gilbert-Elliott model
    with ``loss_bad = 1`` the mean run length estimates the BAD sojourn.
    """
    runs: List[int] = []
    current = 0
    for dropped in trace:
        if dropped:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return runs
