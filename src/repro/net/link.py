"""Store-and-forward links.

A :class:`Link` models one unidirectional hop: packets are queued by the
attached queue discipline, serialized at ``bandwidth_bps`` (transmission
delay = size*8/bandwidth), then delivered ``propagation_delay`` seconds later
to the downstream receiver.  Congestion arises naturally when offered load
exceeds the service rate and the queue overflows or RED starts dropping.

Two scheduling strategies are implemented:

* the **batched fast path** (default): a single self-rescheduling wakeup
  loop per link tracks both the packet in service and the in-flight
  propagation train, using :meth:`Simulator.schedule_fast` entries that
  allocate no :class:`~repro.sim.engine.Event` handles.  The wake chain is
  fused: one frame dequeues the next packet, notifies the queue-sample
  hooks, drains due deliveries and re-arms, against locals and a per-size
  transmission-delay cache (packet sizes are few; each cached value is
  produced by the same ``size*8/bandwidth`` expression, so timings stay
  bit-identical).  Packet timings are identical to the legacy path; only
  the bookkeeping is cheaper.
* the **legacy per-packet path** (``fastpath=False``): one heap event per
  transmission completion plus one per delivery, kept as the baseline for
  ``benchmarks/test_engine_fastpath.py`` and the ``tfrc-bench`` legacy
  cells.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from math import inf
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, Queue, REDQueue
from repro.sim.engine import Simulator

Receiver = Callable[[Packet], None]


class Link:
    """One unidirectional link with an attached queue discipline."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        propagation_delay: float,
        queue: Queue,
        name: str = "link",
        fastpath: bool = True,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_delay = float(propagation_delay)
        self.queue = queue
        self.name = name
        self.fastpath = fastpath
        self._receiver: Optional[Receiver] = None
        self._busy = False
        self.bytes_forwarded = 0
        self.packets_forwarded = 0
        self._busy_accum = 0.0  # total seconds charged for transmissions
        self._sample_hooks: List[Callable[[float, int], None]] = []
        # Per-size transmission delays: simulations use a handful of packet
        # sizes, so the division is paid once per distinct size.
        self._tx_times: Dict[int, float] = {}
        # Fast-path state: the packet in service, its finish time, the
        # propagation train (delivery times are monotone since the finish
        # times are and the propagation delay is constant), and the time of
        # the earliest pending wakeup (inf when none is known-pending).
        self._tx_packet: Optional[Packet] = None
        self._tx_finish = inf
        self._in_flight: Deque[Tuple[float, Packet]] = deque()
        self._armed_time = inf
        if isinstance(queue, REDQueue):
            queue.set_service_rate(self.bandwidth_bps)
        # The wake chain may inline the dequeue bookkeeping only for the
        # two stock disciplines (their dequeue is pure FIFO bookkeeping
        # plus, for RED, the idle timestamp); a custom subclass keeps its
        # dequeue override honored.
        self._red_queue = queue if type(queue) is REDQueue else None
        self._inline_dequeue = type(queue) in (DropTailQueue, REDQueue)
        if fastpath:
            # Rebind the per-packet entry point to the fused variant.
            self.send = self._send_fast  # type: ignore[method-assign]

    def connect(self, receiver: Receiver) -> None:
        """Attach the downstream consumer of delivered packets."""
        self._receiver = receiver

    def add_queue_sample_hook(self, hook: Callable[[float, int], None]) -> None:
        """Register ``hook(now, queue_len)`` called on every enqueue/dequeue."""
        self._sample_hooks.append(hook)

    def transmission_delay(self, packet: Packet) -> float:
        """Seconds to clock ``packet`` onto the wire at this link's rate."""
        size = packet.size
        tx = self._tx_times.get(size)
        if tx is None:
            self._tx_times[size] = tx = size * 8 / self.bandwidth_bps
        return tx

    @property
    def utilization_seconds(self) -> float:
        """Cumulative busy time; divide by elapsed time for utilization.

        Transmissions are charged in full when service starts; a packet
        still on the wire at query time is clipped back to the portion
        actually transmitted so mid-run (or end-of-run) utilization never
        overcounts.
        """
        accum = self._busy_accum
        if self._busy:
            remaining = self._tx_finish - self.sim.now
            if remaining > 0:
                accum -= remaining
        return accum

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link; returns False if the queue dropped it.

        This body only serves ``fastpath=False`` links: the constructor
        rebinds ``self.send`` to :meth:`_send_fast` on fast-path links.
        """
        if self._receiver is None:
            raise RuntimeError(f"link {self.name} has no receiver connected")
        accepted = self.queue.enqueue(packet, self.sim.now)
        if self._sample_hooks:
            self._notify_queue_sample()
        if accepted and not self._busy:
            self._start_transmission()
        return accepted

    def _send_fast(self, packet: Packet) -> bool:
        """Fused fast-path :meth:`send`: inlined sample notify, no
        per-packet fastpath branch (the constructor rebinding is the
        branch)."""
        if self._receiver is None:
            raise RuntimeError(f"link {self.name} has no receiver connected")
        queue = self.queue
        sim = self.sim
        accepted = queue.enqueue(packet, sim._now)
        hooks = self._sample_hooks
        if hooks:
            now = sim._now
            depth = len(queue._queue)
            for hook in hooks:
                hook(now, depth)
        if accepted and not self._busy:
            self._begin_service()
        return accepted

    def _notify_queue_sample(self) -> None:
        # Call sites pre-check ``self._sample_hooks`` so unmonitored links
        # skip the call entirely.
        now = self.sim._now
        depth = len(self.queue._queue)
        for hook in self._sample_hooks:
            hook(now, depth)

    # ------------------------------------------------------- batched fast path

    def _begin_service(self) -> None:
        """Dequeue the next packet and put it in service."""
        now = self.sim._now
        queue = self.queue
        packet = queue.dequeue(now)
        hooks = self._sample_hooks
        if hooks:
            depth = len(queue._queue)
            for hook in hooks:
                hook(now, depth)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        size = packet.size
        tx = self._tx_times.get(size)
        if tx is None:
            self._tx_times[size] = tx = size * 8 / self.bandwidth_bps
        self._busy_accum += tx
        self._tx_packet = packet
        need = self._tx_finish = now + tx
        # Arm (inlined): a wakeup must be pending no later than the next
        # due time.  Stale (redundant) wakeups are possible -- fast-path
        # entries cannot be cancelled -- but :meth:`_wake` is idempotent,
        # so they only cost a no-op pop.  They arise solely when service
        # starts from idle while a propagation train is still in flight.
        # Entries are pushed straight onto the heap (schedule_fast minus
        # the range check): wake times are structurally >= now.
        in_flight = self._in_flight
        if in_flight and in_flight[0][0] < need:
            need = in_flight[0][0]
        if need < self._armed_time:
            self._armed_time = need
            sim = self.sim
            heappush(sim._heap, (need, 0, sim._seq, self._wake, (), None))
            sim._seq += 1

    def _wake(self) -> None:
        """One fused service step: finish tx, restock, deliver, re-arm."""
        sim = self.sim
        now = sim._now
        if now >= self._armed_time:
            self._armed_time = inf
        packet = self._tx_packet
        in_flight = self._in_flight
        if packet is not None and self._tx_finish <= now:
            self.bytes_forwarded += packet.size
            self.packets_forwarded += 1
            in_flight.append((self._tx_finish + self.propagation_delay, packet))
            # Put the next queued packet in service (inlined _begin_service).
            # The emptiness pre-check mirrors the legacy path, which never
            # dequeues (nor samples the queue) when nothing is waiting.
            queue = self.queue
            q = queue._queue
            if q:
                if self._inline_dequeue:
                    packet = q.popleft()
                    queue.bytes_queued -= packet.size
                    queue.dequeued += 1
                    if not q and self._red_queue is not None:
                        self._red_queue._idle_since = now
                else:
                    packet = queue.dequeue(now)
                if self._sample_hooks:
                    depth = len(q)
                    for hook in self._sample_hooks:
                        hook(now, depth)
                size = packet.size
                tx = self._tx_times.get(size)
                if tx is None:
                    self._tx_times[size] = tx = size * 8 / self.bandwidth_bps
                self._busy_accum += tx
                self._tx_packet = packet
                self._tx_finish = now + tx
            else:
                self._tx_packet = None
                self._tx_finish = inf
                self._busy = False
        if in_flight:
            receiver = self._receiver
            popleft = in_flight.popleft
            while in_flight and in_flight[0][0] <= now:
                receiver(popleft()[1])
        need = self._tx_finish
        if in_flight and in_flight[0][0] < need:
            need = in_flight[0][0]
        if need < self._armed_time:
            self._armed_time = need
            heappush(sim._heap, (need, 0, sim._seq, self._wake, (), None))
            sim._seq += 1

    # ------------------------------------------------ legacy per-packet path

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue(self.sim.now)
        if self._sample_hooks:
            self._notify_queue_sample()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx = self.transmission_delay(packet)
        self._busy_accum += tx
        self._tx_finish = self.sim.now + tx
        self.sim.schedule_in(tx, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.bytes_forwarded += packet.size
        self.packets_forwarded += 1
        self.sim.schedule_in(self.propagation_delay, self._deliver, packet)
        # Start on the next queued packet, if any.
        self._busy = False
        self._tx_finish = inf
        if not self.queue.is_empty:
            self._start_transmission()

    def _deliver(self, packet: Packet) -> None:
        assert self._receiver is not None
        self._receiver(packet)
