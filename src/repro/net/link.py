"""Store-and-forward links.

A :class:`Link` models one unidirectional hop: packets are queued by the
attached queue discipline, serialized at ``bandwidth_bps`` (transmission
delay = size*8/bandwidth), then delivered ``propagation_delay`` seconds later
to the downstream receiver.  Congestion arises naturally when offered load
exceeds the service rate and the queue overflows or RED starts dropping.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.packet import Packet
from repro.net.queues import Queue, REDQueue
from repro.sim.engine import Simulator

Receiver = Callable[[Packet], None]


class Link:
    """One unidirectional link with an attached queue discipline."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        propagation_delay: float,
        queue: Queue,
        name: str = "link",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_delay = float(propagation_delay)
        self.queue = queue
        self.name = name
        self._receiver: Optional[Receiver] = None
        self._busy = False
        self.bytes_forwarded = 0
        self.packets_forwarded = 0
        self._busy_accum = 0.0  # total seconds spent transmitting
        self._tx_started_at: Optional[float] = None
        self._sample_hooks: List[Callable[[float, int], None]] = []
        if isinstance(queue, REDQueue):
            queue.set_service_rate(self.bandwidth_bps)

    def connect(self, receiver: Receiver) -> None:
        """Attach the downstream consumer of delivered packets."""
        self._receiver = receiver

    def add_queue_sample_hook(self, hook: Callable[[float, int], None]) -> None:
        """Register ``hook(now, queue_len)`` called on every enqueue/dequeue."""
        self._sample_hooks.append(hook)

    def transmission_delay(self, packet: Packet) -> float:
        """Seconds to clock ``packet`` onto the wire at this link's rate."""
        return packet.size * 8 / self.bandwidth_bps

    @property
    def utilization_seconds(self) -> float:
        """Cumulative busy time; divide by elapsed time for utilization."""
        return self._busy_accum

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link; returns False if the queue dropped it."""
        if self._receiver is None:
            raise RuntimeError(f"link {self.name} has no receiver connected")
        accepted = self.queue.enqueue(packet, self.sim.now)
        self._notify_queue_sample()
        if accepted and not self._busy:
            self._start_transmission()
        return accepted

    def _notify_queue_sample(self) -> None:
        for hook in self._sample_hooks:
            hook(self.sim.now, len(self.queue))

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue(self.sim.now)
        self._notify_queue_sample()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx = self.transmission_delay(packet)
        self._busy_accum += tx
        self.sim.schedule_in(tx, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.bytes_forwarded += packet.size
        self.packets_forwarded += 1
        self.sim.schedule_in(self.propagation_delay, self._deliver, packet)
        # Start on the next queued packet, if any.
        self._busy = False
        if not self.queue.is_empty:
            self._start_transmission()

    def _deliver(self, packet: Packet) -> None:
        assert self._receiver is not None
        self._receiver(packet)
