"""Store-and-forward links.

A :class:`Link` models one unidirectional hop: packets are queued by the
attached queue discipline, serialized at ``bandwidth_bps`` (transmission
delay = size*8/bandwidth), then delivered ``propagation_delay`` seconds later
to the downstream receiver.  Congestion arises naturally when offered load
exceeds the service rate and the queue overflows or RED starts dropping.

Two scheduling strategies are implemented:

* the **batched fast path** (default): a single self-rescheduling wakeup
  loop per link tracks both the packet in service and the in-flight
  propagation train, using :meth:`Simulator.schedule_fast` entries that
  allocate no :class:`~repro.sim.engine.Event` handles.  Packet timings are
  identical to the legacy path; only the scheduler bookkeeping is cheaper.
* the **legacy per-packet path** (``fastpath=False``): one heap event per
  transmission completion plus one per delivery, kept as the baseline for
  ``benchmarks/test_engine_fastpath.py``.
"""

from __future__ import annotations

from collections import deque
from math import inf
from typing import Callable, Deque, List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.queues import Queue, REDQueue
from repro.sim.engine import Simulator

Receiver = Callable[[Packet], None]


class Link:
    """One unidirectional link with an attached queue discipline."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        propagation_delay: float,
        queue: Queue,
        name: str = "link",
        fastpath: bool = True,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_delay = float(propagation_delay)
        self.queue = queue
        self.name = name
        self.fastpath = fastpath
        self._receiver: Optional[Receiver] = None
        self._busy = False
        self.bytes_forwarded = 0
        self.packets_forwarded = 0
        self._busy_accum = 0.0  # total seconds spent transmitting
        self._tx_started_at: Optional[float] = None
        self._sample_hooks: List[Callable[[float, int], None]] = []
        # Fast-path state: the packet in service, its finish time, the
        # propagation train (delivery times are monotone since the finish
        # times are and the propagation delay is constant), and the time of
        # the earliest pending wakeup (inf when none is known-pending).
        self._tx_packet: Optional[Packet] = None
        self._tx_finish = inf
        self._in_flight: Deque[Tuple[float, Packet]] = deque()
        self._armed_time = inf
        if isinstance(queue, REDQueue):
            queue.set_service_rate(self.bandwidth_bps)

    def connect(self, receiver: Receiver) -> None:
        """Attach the downstream consumer of delivered packets."""
        self._receiver = receiver

    def add_queue_sample_hook(self, hook: Callable[[float, int], None]) -> None:
        """Register ``hook(now, queue_len)`` called on every enqueue/dequeue."""
        self._sample_hooks.append(hook)

    def transmission_delay(self, packet: Packet) -> float:
        """Seconds to clock ``packet`` onto the wire at this link's rate."""
        return packet.size * 8 / self.bandwidth_bps

    @property
    def utilization_seconds(self) -> float:
        """Cumulative busy time; divide by elapsed time for utilization."""
        return self._busy_accum

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link; returns False if the queue dropped it."""
        if self._receiver is None:
            raise RuntimeError(f"link {self.name} has no receiver connected")
        accepted = self.queue.enqueue(packet, self.sim.now)
        if self._sample_hooks:
            self._notify_queue_sample()
        if accepted and not self._busy:
            if self.fastpath:
                self._begin_service()
            else:
                self._start_transmission()
        return accepted

    def _notify_queue_sample(self) -> None:
        # Call sites pre-check ``self._sample_hooks`` so unmonitored links
        # skip the call entirely.
        now = self.sim.now
        depth = len(self.queue)
        for hook in self._sample_hooks:
            hook(now, depth)

    # ------------------------------------------------------- batched fast path

    def _begin_service(self) -> None:
        """Dequeue the next packet and put it in service."""
        packet = self.queue.dequeue(self.sim.now)
        if self._sample_hooks:
            self._notify_queue_sample()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx = packet.size * 8 / self.bandwidth_bps
        self._busy_accum += tx
        self._tx_packet = packet
        self._tx_finish = self.sim.now + tx
        self._arm()

    def _arm(self) -> None:
        """Ensure a wakeup is pending no later than the next due time.

        Stale (redundant) wakeups are possible -- fast-path entries cannot
        be cancelled -- but :meth:`_wake` is idempotent, so they only cost a
        no-op pop.  They arise solely when service starts from idle while a
        propagation train is still in flight.
        """
        need = self._tx_finish if self._tx_packet is not None else inf
        if self._in_flight and self._in_flight[0][0] < need:
            need = self._in_flight[0][0]
        if need < self._armed_time:
            self._armed_time = need
            self.sim.schedule_fast(need, self._wake)

    def _wake(self) -> None:
        sim = self.sim
        now = sim.now
        if now >= self._armed_time:
            self._armed_time = inf
        packet = self._tx_packet
        in_flight = self._in_flight
        if packet is not None and self._tx_finish <= now:
            self.bytes_forwarded += packet.size
            self.packets_forwarded += 1
            in_flight.append((self._tx_finish + self.propagation_delay, packet))
            # Put the next queued packet in service (inlined _begin_service).
            packet = self.queue.dequeue(now)
            if self._sample_hooks:
                self._notify_queue_sample()
            if packet is None:
                self._tx_packet = None
                self._tx_finish = inf
                self._busy = False
            else:
                tx = packet.size * 8 / self.bandwidth_bps
                self._busy_accum += tx
                self._tx_packet = packet
                self._tx_finish = now + tx
        while in_flight and in_flight[0][0] <= now:
            self._receiver(in_flight.popleft()[1])
        need = self._tx_finish
        if in_flight and in_flight[0][0] < need:
            need = in_flight[0][0]
        if need < self._armed_time:
            self._armed_time = need
            sim.schedule_fast(need, self._wake)

    # ------------------------------------------------ legacy per-packet path

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue(self.sim.now)
        if self._sample_hooks:
            self._notify_queue_sample()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx = self.transmission_delay(packet)
        self._busy_accum += tx
        self.sim.schedule_in(tx, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.bytes_forwarded += packet.size
        self.packets_forwarded += 1
        self.sim.schedule_in(self.propagation_delay, self._deliver, packet)
        # Start on the next queued packet, if any.
        self._busy = False
        if not self.queue.is_empty:
            self._start_transmission()

    def _deliver(self, packet: Packet) -> None:
        assert self._receiver is not None
        self._receiver(packet)
