"""UDP impairment proxy: the real-stack substitute for Dummynet.

The paper used Rizzo's Dummynet (a FreeBSD kernel shim) to test the
real-world TFRC implementation under controlled loss and delay.  Nothing
kernel-level is available here, so this module provides the userspace
equivalent: a UDP relay that sits between the TFRC sender and receiver and
imposes

* one-way propagation delay in each direction,
* a programmable drop decision per datagram (with helpers for
  every-Nth-data and Bernoulli drops), and
* an optional bandwidth cap with a bounded FIFO queue, which adds
  serialization/queueing delay and tail-drops on overflow -- the same
  behaviour as a Dummynet "pipe".

Topology: senders address the proxy; the proxy forwards to the configured
server (receiver) address; datagrams arriving *from* the server are
relayed back to the client the flow belongs to.  Clients are identified
by the TFRC flow id in the headers, so several concurrent flows (e.g. a
real-stack fairness experiment) can share one proxy; non-TFRC datagrams
fall back to the most recent client.  The receiver never needs to know
the proxy exists because it replies to the datagram source address.
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.rt.scheduler import RealtimeScheduler
from repro.wire.headers import WireFormatError, decode_packet

Address = Tuple[str, int]

#: Drop decision over a raw datagram: ``(data, scheduler_now) -> dropped?``
DatagramLossModel = Callable[[bytes, float], bool]

_RECV_CHUNK = 65536


def _is_data_datagram(data: bytes) -> bool:
    """True when ``data`` parses as a TFRC data packet (else leave it be)."""
    try:
        return decode_packet(data).__class__.__name__ == "DataPacket"
    except WireFormatError:
        return False


def drop_every_nth_data(n: int) -> DatagramLossModel:
    """Drop every ``n``-th TFRC *data* datagram (feedback always passes).

    The real-stack analogue of :func:`repro.net.path.periodic_loss`; used
    to impose the appendix-style exact loss patterns on the UDP stack.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    counter = {"seen": 0}

    def model(data: bytes, now: float) -> bool:
        if not _is_data_datagram(data):
            return False
        counter["seen"] += 1
        return counter["seen"] % n == 0

    return model


def drop_bernoulli(probability: float, rng) -> DatagramLossModel:
    """Drop each data datagram independently with ``probability``.

    ``rng`` is a ``numpy`` Generator (or anything with ``.random()``).
    """
    if not 0 <= probability < 1:
        raise ValueError("probability must be in [0, 1)")

    def model(data: bytes, now: float) -> bool:
        return _is_data_datagram(data) and rng.random() < probability

    return model


class UdpImpairmentProxy:
    """Bidirectional UDP relay with loss, delay, and an optional rate cap.

    Args:
        scheduler: event loop shared with (or separate from) the endpoints.
        server: address datagrams from the client side are forwarded to.
        delay: one-way added delay in seconds, applied in both directions
            (so the RTT grows by ``2 * delay``).
        loss_model: applied to client->server datagrams (the data
            direction).
        reverse_loss_model: applied to server->client datagrams (the
            feedback direction); defaults to None (reliable reverse path,
            matching how the paper's Dummynet experiments were
            configured), but real networks drop feedback too and the
            sender's no-feedback timer exists for exactly that.
        bandwidth_bps: when set, client->server datagrams are serialized
            through a token-less FIFO "pipe" at this rate with at most
            ``queue_packets`` waiting; overflow is tail-dropped.
    """

    def __init__(
        self,
        scheduler: RealtimeScheduler,
        server: Address,
        delay: float = 0.0,
        loss_model: Optional[DatagramLossModel] = None,
        reverse_loss_model: Optional[DatagramLossModel] = None,
        bandwidth_bps: Optional[float] = None,
        queue_packets: int = 50,
        bind: Optional[Address] = None,
    ) -> None:
        if delay < 0:
            raise ValueError("delay cannot be negative")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if queue_packets < 1:
            raise ValueError("queue_packets must be >= 1")
        self.scheduler = scheduler
        self.server = server
        self.delay = delay
        self.loss_model = loss_model
        self.reverse_loss_model = reverse_loss_model
        self.bandwidth_bps = bandwidth_bps
        self.queue_packets = queue_packets
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setblocking(False)
        self.sock.bind(bind if bind is not None else ("127.0.0.1", 0))
        scheduler.add_reader(self.sock, self._on_readable)
        self._client: Optional[Address] = None
        self._client_by_flow: Dict[int, Address] = {}
        self._pipe: Deque[bytes] = deque()
        self._pipe_busy_until = 0.0
        self.forwarded_to_server = 0
        self.forwarded_to_client = 0
        self.dropped = 0
        self.queue_drops = 0

    @property
    def local_address(self) -> Address:
        return self.sock.getsockname()

    def close(self) -> None:
        self.scheduler.remove_reader(self.sock)
        self.sock.close()

    # -------------------------------------------------------------- inbound

    def _on_readable(self, sock: socket.socket) -> None:
        while True:
            try:
                data, addr = sock.recvfrom(_RECV_CHUNK)
            except (BlockingIOError, OSError):
                return
            self._relay(data, addr)

    @staticmethod
    def _flow_id_of(data: bytes) -> Optional[int]:
        try:
            return decode_packet(data).flow_id
        except WireFormatError:
            return None

    def _relay(self, data: bytes, addr: Address) -> None:
        if addr == self.server:
            if self.reverse_loss_model is not None and self.reverse_loss_model(
                data, self.scheduler.now
            ):
                self.dropped += 1
                return
            flow_id = self._flow_id_of(data)
            dest = self._client_by_flow.get(flow_id, self._client)
            self._deliver(data, dest, reverse=True)
            return
        self._client = addr
        flow_id = self._flow_id_of(data)
        if flow_id is not None:
            self._client_by_flow[flow_id] = addr
        if self.loss_model is not None and self.loss_model(data, self.scheduler.now):
            self.dropped += 1
            return
        if self.bandwidth_bps is None:
            self._deliver(data, self.server, reverse=False)
        else:
            self._enqueue_pipe(data)

    # ----------------------------------------------------------- rate cap

    def _enqueue_pipe(self, data: bytes) -> None:
        if len(self._pipe) >= self.queue_packets:
            self.queue_drops += 1
            return
        self._pipe.append(data)
        now = self.scheduler.now
        start = max(now, self._pipe_busy_until)
        assert self.bandwidth_bps is not None
        serialization = len(data) * 8 / self.bandwidth_bps
        self._pipe_busy_until = start + serialization
        self.scheduler.schedule(self._pipe_busy_until, self._drain_pipe)

    def _drain_pipe(self) -> None:
        if self._pipe:
            self._deliver(self._pipe.popleft(), self.server, reverse=False)

    # ------------------------------------------------------------- deliver

    def _deliver(self, data: bytes, dest: Optional[Address], reverse: bool) -> None:
        if dest is None:
            return
        if self.delay > 0:
            self.scheduler.schedule_in(self.delay, self._send_now, data, dest, reverse)
        else:
            self._send_now(data, dest, reverse)

    def _send_now(self, data: bytes, dest: Address, reverse: bool) -> None:
        try:
            self.sock.sendto(data, dest)
        except OSError:
            return
        if reverse:
            self.forwarded_to_client += 1
        else:
            self.forwarded_to_server += 1
