"""Wall-clock scheduler with the :class:`~repro.sim.engine.Simulator` API.

The TFRC protocol machines (:class:`~repro.core.sender.TfrcSender`,
:class:`~repro.core.receiver.TfrcReceiver`) touch their host environment
through exactly three things: ``now``, ``schedule(time, cb)`` /
``schedule_in(delay, cb)`` returning cancellable events, and the callbacks
the network invokes on them.  This class provides that same surface over
real time and real sockets, so the very code validated in simulation runs
unmodified on the wire.

The loop is ``select``-based: it sleeps until the earliest pending timer or
socket readiness, dispatches ready sockets first, then fires due timers.
``time_fn`` is injectable for unit tests; the default is
``time.monotonic`` (never jumps backwards, unaffected by NTP steps).
"""

from __future__ import annotations

import heapq
import math
import select
import socket
import time
from typing import Any, Callable, Dict, List, Optional

from repro.sim.engine import Event, SimulationError

ReadCallback = Callable[[socket.socket], None]

#: Largest select timeout used; keeps the loop responsive to ``stop()``
#: calls from socket callbacks even when no timer is pending.
_MAX_POLL = 0.5


class RealtimeScheduler:
    """Timers plus socket readiness over wall-clock time.

    Duck-type compatible with :class:`~repro.sim.engine.Simulator` for the
    subset protocol endpoints use (``now``, ``schedule``, ``schedule_in``,
    ``stop``).  Additionally sockets may be registered with
    :meth:`add_reader`; their callbacks run from :meth:`run` whenever the
    socket is readable.
    """

    def __init__(self, time_fn: Callable[[], float] = time.monotonic) -> None:
        self._time_fn = time_fn
        self._epoch = time_fn()
        self._heap: List[Event] = []
        self._seq = 0
        self._stopped = False
        self._readers: Dict[socket.socket, ReadCallback] = {}
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Seconds since this scheduler was created."""
        return self._time_fn() - self._epoch

    # -------------------------------------------------------------- timers

    def schedule(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute scheduler time ``when``.

        Unlike the simulator, a time slightly in the past is accepted (the
        wall clock moves while user code runs); it fires on the next loop
        iteration.  Non-finite times are still rejected.
        """
        if not math.isfinite(when):
            raise SimulationError(f"cannot schedule at non-finite time {when!r}")
        event = Event(when, priority, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self.now + delay, callback, *args, priority=priority)

    def schedule_fast(
        self,
        when: float,
        callback: Callable[..., None],
        priority: int = 0,
        args: tuple = (),
    ) -> None:
        """Handle-free scheduling, mirroring ``Simulator.schedule_fast``.

        Endpoints built on :class:`~repro.sim.process.FastTimer` (the
        default) arm their timers through this entry point.  Real time has
        no hot heap path to protect, so it simply drops the handle.
        """
        self.schedule(when, callback, *args, priority=priority)

    def pending_count(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    # ------------------------------------------------------------- sockets

    def add_reader(self, sock: socket.socket, callback: ReadCallback) -> None:
        """Invoke ``callback(sock)`` whenever ``sock`` is readable.

        The socket should be non-blocking; the callback is expected to
        drain it (loop over ``recvfrom`` until ``BlockingIOError``).
        """
        sock.setblocking(False)
        self._readers[sock] = callback

    def remove_reader(self, sock: socket.socket) -> None:
        self._readers.pop(sock, None)

    # ----------------------------------------------------------------- run

    def stop(self) -> None:
        """Make :meth:`run` return after the current dispatch."""
        self._stopped = True

    def _pop_due(self) -> Optional[Event]:
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if event.time <= self.now:
                return heapq.heappop(self._heap)
            return None
        return None

    def _next_deadline(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run_once(self, max_wait: float = _MAX_POLL) -> None:
        """One loop iteration: wait (bounded), dispatch sockets and timers."""
        deadline = self._next_deadline()
        timeout = max_wait
        if deadline is not None:
            timeout = min(max_wait, max(0.0, deadline - self.now))
        if self._readers:
            readable, _, _ = select.select(list(self._readers), [], [], timeout)
        else:
            if timeout > 0:
                time.sleep(timeout)
            readable = []
        for sock in readable:
            callback = self._readers.get(sock)
            if callback is not None:
                callback(sock)
        while True:
            event = self._pop_due()
            if event is None:
                break
            event.callback(*event.args)
            self.events_processed += 1

    def run(self, until: Optional[float] = None) -> float:
        """Run until :meth:`stop` or scheduler time ``until``.

        With no sockets and no timers pending (and no ``until``), returns
        immediately rather than spinning forever.
        """
        self._stopped = False
        while not self._stopped:
            if until is not None and self.now >= until:
                break
            if until is None and not self._readers and self._next_deadline() is None:
                break
            max_wait = _MAX_POLL
            if until is not None:
                max_wait = min(max_wait, max(0.0, until - self.now))
            self.run_once(max_wait=max_wait)
        return self.now
