"""One-process loopback TFRC sessions over real UDP sockets.

Wires a :class:`~repro.rt.udp.UdpTfrcSender`, an
:class:`~repro.rt.proxy.UdpImpairmentProxy`, and a
:class:`~repro.rt.udp.UdpTfrcReceiver` onto a single
:class:`~repro.rt.scheduler.RealtimeScheduler` and runs them for a wall-
clock duration.  This is the harness behind
``examples/realtime_loopback.py`` and the real-stack integration tests:
the full protocol -- wire encoding, checksums, loss detection, ALI
estimation, equation-driven pacing -- exercised end-to-end through the
operating system's UDP stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.rt.proxy import DatagramLossModel, UdpImpairmentProxy
from repro.rt.scheduler import RealtimeScheduler
from repro.rt.udp import UdpTfrcReceiver, UdpTfrcSender


@dataclass
class LoopbackResult:
    """Outcome of a loopback session.

    Attributes:
        duration: wall-clock seconds the session ran.
        datagrams_sent: data datagrams the sender emitted.
        datagrams_received: data datagrams the receiver accepted.
        datagrams_dropped: datagrams the proxy's loss model discarded.
        feedback_received: feedback reports the sender processed.
        loss_event_rate: receiver's final ``p`` estimate.
        mean_rate_bps: sender's time-averaged allowed rate, bytes/second.
        final_rate_bps: sender's allowed rate when the session ended.
        srtt: sender's final smoothed RTT estimate (None before the first
            sample).
    """

    duration: float
    datagrams_sent: int
    datagrams_received: int
    datagrams_dropped: int
    feedback_received: int
    loss_event_rate: float
    mean_rate_bps: float
    final_rate_bps: float
    srtt: Optional[float]

    @property
    def delivery_ratio(self) -> float:
        if self.datagrams_sent == 0:
            return 0.0
        return self.datagrams_received / self.datagrams_sent


def _time_averaged_rate(history, end_time: float) -> float:
    """Average of a stepwise (time, rate) series over [first_time, end]."""
    if not history:
        return 0.0
    total = 0.0
    for (t0, rate), (t1, _next_rate) in zip(history, history[1:]):
        total += rate * (t1 - t0)
    last_t, last_rate = history[-1]
    total += last_rate * max(0.0, end_time - last_t)
    span = end_time - history[0][0]
    return total / span if span > 0 else history[-1][1]


def run_loopback_session(
    duration: float = 2.0,
    one_way_delay: float = 0.02,
    loss_model: Optional[DatagramLossModel] = None,
    bandwidth_bps: Optional[float] = None,
    packet_size: int = 500,
    initial_rtt: float = 0.05,
    **sender_kwargs,
) -> LoopbackResult:
    """Run a sender -> proxy -> receiver TFRC session on 127.0.0.1.

    All sockets bind ephemeral loopback ports; nothing leaves the machine.
    The proxy adds ``one_way_delay`` in each direction so the session has a
    realistic RTT instead of loopback's microseconds (rates would otherwise
    be equation-degenerate).

    Returns a :class:`LoopbackResult`; all endpoints and sockets are closed
    before returning, even on error.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    scheduler = RealtimeScheduler()
    receiver = UdpTfrcReceiver(scheduler)
    proxy = UdpImpairmentProxy(
        scheduler,
        server=receiver.local_address,
        delay=one_way_delay,
        loss_model=loss_model,
        bandwidth_bps=bandwidth_bps,
    )
    sender = UdpTfrcSender(
        scheduler,
        peer=proxy.local_address,
        packet_size=packet_size,
        initial_rtt=initial_rtt,
        **sender_kwargs,
    )
    try:
        sender.start()
        end = scheduler.run(until=duration)
        return LoopbackResult(
            duration=end,
            datagrams_sent=sender.datagrams_sent,
            datagrams_received=receiver.datagrams_received,
            datagrams_dropped=proxy.dropped + proxy.queue_drops,
            feedback_received=sender.feedback_datagrams,
            loss_event_rate=receiver.core.loss_event_rate(),
            mean_rate_bps=_time_averaged_rate(sender.core.rate_history, end),
            final_rate_bps=sender.core.rate,
            srtt=sender.core.srtt,
        )
    finally:
        sender.close()
        proxy.close()
        receiver.close()
