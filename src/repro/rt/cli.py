"""Command-line endpoints for the real TFRC stack.

Run each piece in its own terminal (or machine -- the stack speaks real
UDP) to reproduce the paper's userspace-implementation experiments:

    # terminal 1: the receiver
    python -m repro.rt.cli recv --port 9000

    # terminal 2: an impairment proxy (optional; the Dummynet substitute)
    python -m repro.rt.cli proxy --port 9001 --server 127.0.0.1:9000 \
        --delay-ms 20 --loss-period 25

    # terminal 3: the sender, through the proxy
    python -m repro.rt.cli send --peer 127.0.0.1:9001 --duration 10

Each endpoint prints one status line per second.  ``send`` exits after
``--duration`` seconds; ``recv`` and ``proxy`` run until interrupted.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Tuple

from repro.rt.proxy import UdpImpairmentProxy, drop_every_nth_data
from repro.rt.scheduler import RealtimeScheduler
from repro.rt.udp import UdpTfrcReceiverMux, UdpTfrcSender

Address = Tuple[str, int]


def parse_endpoint(text: str) -> Address:
    """Parse ``host:port`` (or bare ``port`` meaning 127.0.0.1)."""
    host, _, port_text = text.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad port in {text!r}")
    if not 0 < port < 65536:
        raise argparse.ArgumentTypeError(f"port {port} out of range")
    return host, port


def _every_second(scheduler: RealtimeScheduler, callback) -> None:
    """Schedule ``callback`` once per second, forever."""

    def tick() -> None:
        callback()
        scheduler.schedule_in(1.0, tick)

    scheduler.schedule_in(1.0, tick)


def run_send(args) -> int:
    scheduler = RealtimeScheduler()
    sender = UdpTfrcSender(
        scheduler,
        peer=args.peer,
        flow_id=args.flow_id,
        packet_size=args.packet_size,
        initial_rtt=args.initial_rtt,
    )
    last = {"sent": 0}

    def report() -> None:
        sent = sender.datagrams_sent
        srtt = sender.core.srtt
        if srtt is None:
            line = f"[send] t={scheduler.now:5.1f}s sent={sent} (no feedback yet)"
        else:
            feedback = sender.core.last_feedback
            p = feedback.p if feedback is not None else 0.0
            line = (
                f"[send] t={scheduler.now:5.1f}s sent={sent} "
                f"(+{sent - last['sent']}/s) "
                f"rate={sender.core.rate / 1e3:.1f}KB/s "
                f"p={p:.4f} srtt={srtt * 1e3:.1f}ms"
            )
        print(line, flush=True)
        last["sent"] = sent

    _every_second(scheduler, report)
    sender.start()
    try:
        scheduler.run(until=args.duration)
    except KeyboardInterrupt:
        pass
    finally:
        sender.close()
    print(f"[send] done: {sender.datagrams_sent} data datagrams, "
          f"{sender.feedback_datagrams} feedback reports", flush=True)
    return 0


def run_recv(args) -> int:
    scheduler = RealtimeScheduler()
    mux = UdpTfrcReceiverMux(scheduler, bind=("0.0.0.0", args.port))
    print(f"[recv] listening on UDP port {args.port}", flush=True)

    def report() -> None:
        for flow_id, receiver in sorted(mux.flows.items()):
            print(
                f"[recv] t={scheduler.now:5.1f}s flow={flow_id} "
                f"received={receiver.datagrams_received} "
                f"p={receiver.core.loss_event_rate():.4f} "
                f"rate={receiver.core.receive_rate() / 1e3:.1f}KB/s",
                flush=True,
            )

    _every_second(scheduler, report)
    try:
        scheduler.run(until=args.duration)
    except KeyboardInterrupt:
        pass
    finally:
        mux.close()
    return 0


def run_proxy(args) -> int:
    scheduler = RealtimeScheduler()
    loss = drop_every_nth_data(args.loss_period) if args.loss_period else None
    proxy = UdpImpairmentProxy(
        scheduler,
        server=args.server,
        delay=args.delay_ms / 1e3,
        loss_model=loss,
        bandwidth_bps=args.bandwidth_kbps * 1e3 if args.bandwidth_kbps else None,
        bind=("0.0.0.0", args.port),
    )
    print(f"[proxy] UDP {args.port} -> {args.server[0]}:{args.server[1]} "
          f"delay={args.delay_ms}ms "
          f"loss={'1/' + str(args.loss_period) if args.loss_period else 'none'}",
          flush=True)

    def report() -> None:
        print(
            f"[proxy] t={scheduler.now:5.1f}s fwd={proxy.forwarded_to_server} "
            f"rev={proxy.forwarded_to_client} dropped={proxy.dropped} "
            f"queue_drops={proxy.queue_drops}",
            flush=True,
        )

    _every_second(scheduler, report)
    try:
        scheduler.run(until=args.duration)
    except KeyboardInterrupt:
        pass
    finally:
        proxy.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.rt.cli",
        description="Real-stack TFRC endpoints over UDP.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    send = sub.add_parser("send", help="TFRC sender")
    send.add_argument("--peer", type=parse_endpoint, required=True,
                      help="receiver or proxy address, host:port")
    send.add_argument("--flow-id", type=int, default=1)
    send.add_argument("--packet-size", type=int, default=500)
    send.add_argument("--initial-rtt", type=float, default=0.1)
    send.add_argument("--duration", type=float, default=10.0,
                      help="seconds to run (default 10)")
    send.set_defaults(run=run_send)

    recv = sub.add_parser("recv", help="TFRC receiver (multi-flow)")
    recv.add_argument("--port", type=int, required=True)
    recv.add_argument("--duration", type=float, default=None,
                      help="seconds to run (default: until Ctrl-C)")
    recv.set_defaults(run=run_recv)

    proxy = sub.add_parser("proxy", help="impairment proxy (Dummynet substitute)")
    proxy.add_argument("--port", type=int, required=True)
    proxy.add_argument("--server", type=parse_endpoint, required=True)
    proxy.add_argument("--delay-ms", type=float, default=0.0)
    proxy.add_argument("--loss-period", type=int, default=None,
                       help="drop every Nth data datagram")
    proxy.add_argument("--bandwidth-kbps", type=float, default=None,
                       help="serialize through a pipe at this rate")
    proxy.add_argument("--duration", type=float, default=None,
                       help="seconds to run (default: until Ctrl-C)")
    proxy.set_defaults(run=run_proxy)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
