"""UDP socket endpoints hosting the TFRC protocol machines.

Each endpoint owns a non-blocking UDP socket registered with a
:class:`~repro.rt.scheduler.RealtimeScheduler` and translates between the
wire encodings (:mod:`repro.wire`) and the in-memory packet objects the
core protocol machines exchange in simulation:

* :class:`UdpTfrcSender` wraps :class:`~repro.core.sender.TfrcSender`:
  outgoing simulated packets become :class:`~repro.wire.DataPacket`
  datagrams; incoming feedback datagrams become
  :class:`~repro.core.receiver.TfrcFeedback` objects fed to
  ``on_feedback``.
* :class:`UdpTfrcReceiver` wraps :class:`~repro.core.receiver.TfrcReceiver`
  symmetrically.

Timestamps cross the wire as microseconds of the *sender's* scheduler
clock, echoed back verbatim, so RTT measurement needs no clock
synchronization -- exactly the sequence-number-echo scheme of paper
section 3.2.  Malformed datagrams (bad magic, checksum, truncation) are
counted and dropped, never raised: on a real network they are line noise.
"""

from __future__ import annotations

import socket
from typing import Optional, Tuple

from repro.core.receiver import TfrcFeedback, TfrcReceiver
from repro.core.sender import TfrcDataInfo, TfrcSender
from repro.net.packet import Packet, PacketType
from repro.rt.scheduler import RealtimeScheduler
from repro.wire.headers import (
    DATA_HEADER_SIZE,
    DataPacket,
    FeedbackPacket,
    WireFormatError,
    decode_packet,
)
from repro.wire.seqnum import seq_diff

Address = Tuple[str, int]

_RECV_CHUNK = 65536
_MAX_RTT_US = 0xFFFFFFFF


def _us(seconds: float) -> int:
    """Seconds to non-negative integer microseconds."""
    return max(0, round(seconds * 1e6))


def _open_udp(bind: Optional[Address]) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.setblocking(False)
    sock.bind(bind if bind is not None else ("127.0.0.1", 0))
    return sock


class UdpTfrcSender:
    """TFRC sender endpoint over a real UDP socket.

    Args:
        scheduler: the real-time event loop to run on (shared loops are
            fine: several endpoints can register on one scheduler, which is
            how the loopback session runs everything in one process).
        peer: receiver (or impairment proxy) address.
        flow_id: 32-bit on-wire flow identifier.
        packet_size: wire bytes per data packet; the data header is padded
            with zero payload bytes up to this size, like a media frame.
        **sender_kwargs: forwarded to :class:`~repro.core.sender.TfrcSender`
            (EWMA weight, interpacket adjustment, initial RTT, ...).
    """

    def __init__(
        self,
        scheduler: RealtimeScheduler,
        peer: Address,
        flow_id: int = 1,
        packet_size: int = 1000,
        bind: Optional[Address] = None,
        **sender_kwargs,
    ) -> None:
        if packet_size < DATA_HEADER_SIZE:
            raise ValueError(
                f"packet_size must be >= {DATA_HEADER_SIZE} (the data header)"
            )
        self.scheduler = scheduler
        self.peer = peer
        self.flow_id = flow_id
        self.packet_size = packet_size
        self.sock = _open_udp(bind)
        scheduler.add_reader(self.sock, self._on_readable)
        self.core = TfrcSender(
            sim=scheduler,
            flow_id=str(flow_id),
            send_packet=self._transmit,
            packet_size=packet_size,
            **sender_kwargs,
        )
        self.datagrams_sent = 0
        self.feedback_datagrams = 0
        self.malformed_datagrams = 0
        self.send_errors = 0

    # ------------------------------------------------------------ lifecycle

    @property
    def local_address(self) -> Address:
        return self.sock.getsockname()

    def start(self) -> None:
        self.core.start()

    def stop(self) -> None:
        self.core.stop()
        self.scheduler.remove_reader(self.sock)

    def close(self) -> None:
        self.stop()
        self.sock.close()

    # ------------------------------------------------------------- outbound

    def _transmit(self, packet: Packet) -> None:
        info = packet.payload
        assert isinstance(info, TfrcDataInfo)
        wire = DataPacket(
            flow_id=self.flow_id,
            seq=packet.seq & 0xFFFFFFFF,
            send_ts_us=_us(info.ts),
            rtt_us=min(_MAX_RTT_US, _us(info.rtt_estimate)),
            ecn_capable=packet.ecn_capable,
            payload=b"\x00" * (self.packet_size - DATA_HEADER_SIZE),
        )
        try:
            self.sock.sendto(wire.encode(), self.peer)
            self.datagrams_sent += 1
        except OSError:
            self.send_errors += 1

    # -------------------------------------------------------------- inbound

    def _on_readable(self, sock: socket.socket) -> None:
        while True:
            try:
                data, _addr = sock.recvfrom(_RECV_CHUNK)
            except BlockingIOError:
                return
            except OSError:
                return
            self._handle_datagram(data)

    def _handle_datagram(self, data: bytes) -> None:
        try:
            parsed = decode_packet(data)
        except WireFormatError:
            self.malformed_datagrams += 1
            return
        if not isinstance(parsed, FeedbackPacket) or parsed.flow_id != self.flow_id:
            self.malformed_datagrams += 1
            return
        self.feedback_datagrams += 1
        feedback = TfrcFeedback(
            echo_ts=parsed.echo_ts_us / 1e6,
            echo_seq=parsed.echo_seq,
            delay=parsed.delay_us / 1e6,
            p=parsed.p,
            recv_rate=float(parsed.recv_rate),
            expedited=parsed.expedited,
        )
        packet = Packet(
            flow_id=str(self.flow_id),
            seq=parsed.echo_seq,
            size=parsed.wire_size,
            ptype=PacketType.FEEDBACK,
            sent_at=self.scheduler.now,
            payload=feedback,
        )
        self.core.on_feedback(packet)


class UdpTfrcReceiverMux:
    """Several TFRC flows terminating on one UDP socket.

    Demultiplexes arriving data datagrams by flow id to per-flow
    :class:`UdpTfrcReceiver`-style state (each flow gets its own core
    protocol machine and reply address).  Used by multi-flow real-stack
    experiments, where one impairment proxy fronts one receiver port.

    Flows are created on demand when ``accept_new_flows`` is true (the
    default); otherwise only pre-registered flow ids (via :meth:`add_flow`)
    are accepted and anything else counts as malformed.
    """

    def __init__(
        self,
        scheduler: RealtimeScheduler,
        bind: Optional[Address] = None,
        accept_new_flows: bool = True,
        **receiver_kwargs,
    ) -> None:
        self.scheduler = scheduler
        self.sock = _open_udp(bind)
        scheduler.add_reader(self.sock, self._on_readable)
        self.accept_new_flows = accept_new_flows
        self._receiver_kwargs = receiver_kwargs
        self.flows: dict = {}
        self.malformed_datagrams = 0

    @property
    def local_address(self) -> Address:
        return self.sock.getsockname()

    def add_flow(self, flow_id: int) -> "UdpTfrcReceiver":
        """Register (or fetch) the per-flow receiver state."""
        if flow_id not in self.flows:
            self.flows[flow_id] = UdpTfrcReceiver(
                self.scheduler,
                flow_id=flow_id,
                shared_sock=self.sock,  # mux reads; flow only writes
                **self._receiver_kwargs,
            )
        return self.flows[flow_id]

    def _on_readable(self, sock: socket.socket) -> None:
        while True:
            try:
                data, addr = sock.recvfrom(_RECV_CHUNK)
            except (BlockingIOError, OSError):
                return
            self._handle_datagram(data, addr)

    def _handle_datagram(self, data: bytes, addr: Address) -> None:
        try:
            parsed = decode_packet(data)
        except WireFormatError:
            self.malformed_datagrams += 1
            return
        if not isinstance(parsed, DataPacket):
            self.malformed_datagrams += 1
            return
        if parsed.flow_id not in self.flows and not self.accept_new_flows:
            self.malformed_datagrams += 1
            return
        receiver = self.add_flow(parsed.flow_id)
        receiver._handle_datagram(data, addr)

    def stop(self) -> None:
        for receiver in self.flows.values():
            receiver.core.stop()
        self.scheduler.remove_reader(self.sock)

    def close(self) -> None:
        self.stop()
        self.sock.close()


class UdpTfrcReceiver:
    """TFRC receiver endpoint over a real UDP socket.

    Feedback is sent to the source address of the most recent data
    datagram, so the receiver works unchanged behind a relay/proxy (the
    reply retraces the forward path).

    On-wire 32-bit sequence numbers are unwrapped into the monotonically
    increasing sequence space the core receiver expects, using serial-
    number arithmetic relative to the highest sequence seen.

    With ``shared_sock`` (set by :class:`UdpTfrcReceiverMux`) the endpoint
    writes feedback through the given socket but does not read from it --
    the mux owns reading and demultiplexes to :meth:`_handle_datagram`.
    """

    def __init__(
        self,
        scheduler: RealtimeScheduler,
        flow_id: int = 1,
        bind: Optional[Address] = None,
        shared_sock: Optional[socket.socket] = None,
        **receiver_kwargs,
    ) -> None:
        self.scheduler = scheduler
        self.flow_id = flow_id
        self._owns_sock = shared_sock is None
        if shared_sock is None:
            self.sock = _open_udp(bind)
            scheduler.add_reader(self.sock, self._on_readable)
        else:
            self.sock = shared_sock
        self.core = TfrcReceiver(
            sim=scheduler,
            flow_id=str(flow_id),
            send_feedback=self._transmit_feedback,
            **receiver_kwargs,
        )
        self._reply_to: Optional[Address] = None
        self._unwrap_base = 0  # running count of full wraps, in packets
        self._highest_wire_seq: Optional[int] = None
        self.datagrams_received = 0
        self.malformed_datagrams = 0
        self.feedback_sent = 0
        self.send_errors = 0

    @property
    def local_address(self) -> Address:
        return self.sock.getsockname()

    def stop(self) -> None:
        self.core.stop()
        if self._owns_sock:
            self.scheduler.remove_reader(self.sock)

    def close(self) -> None:
        self.stop()
        if self._owns_sock:
            self.sock.close()

    # -------------------------------------------------------------- inbound

    def _unwrap(self, wire_seq: int) -> int:
        """Map a wrapped 32-bit wire sequence to the unbounded space."""
        if self._highest_wire_seq is None:
            self._highest_wire_seq = wire_seq
            return self._unwrap_base + wire_seq
        delta = seq_diff(wire_seq, self._highest_wire_seq)
        unwrapped = self._unwrap_base + self._highest_wire_seq + delta
        if delta > 0:
            if wire_seq < self._highest_wire_seq:
                self._unwrap_base += 1 << 32  # crossed the wrap boundary
            self._highest_wire_seq = wire_seq
        return unwrapped

    def _on_readable(self, sock: socket.socket) -> None:
        while True:
            try:
                data, addr = sock.recvfrom(_RECV_CHUNK)
            except BlockingIOError:
                return
            except OSError:
                return
            self._handle_datagram(data, addr)

    def _handle_datagram(self, data: bytes, addr: Address) -> None:
        try:
            parsed = decode_packet(data)
        except WireFormatError:
            self.malformed_datagrams += 1
            return
        if not isinstance(parsed, DataPacket) or parsed.flow_id != self.flow_id:
            self.malformed_datagrams += 1
            return
        self.datagrams_received += 1
        self._reply_to = addr
        seq = self._unwrap(parsed.seq)
        if seq < 0:
            self.malformed_datagrams += 1  # pre-history duplicate after wrap
            return
        packet = Packet(
            flow_id=str(self.flow_id),
            seq=seq,
            size=parsed.wire_size,
            ptype=PacketType.DATA,
            sent_at=parsed.send_ts_us / 1e6,
            payload=TfrcDataInfo(
                ts=parsed.send_ts_us / 1e6,
                rtt_estimate=parsed.rtt_us / 1e6,
            ),
            ecn_capable=parsed.ecn_capable,
        )
        self.core.receive(packet)

    # ------------------------------------------------------------- outbound

    def _transmit_feedback(self, packet: Packet) -> None:
        if self._reply_to is None:
            return
        feedback = packet.payload
        assert isinstance(feedback, TfrcFeedback)
        wire = FeedbackPacket(
            flow_id=self.flow_id,
            echo_seq=feedback.echo_seq & 0xFFFFFFFF,
            echo_ts_us=_us(feedback.echo_ts),
            delay_us=min(0xFFFFFFFF, _us(feedback.delay)),
            p=min(1.0, max(0.0, feedback.p)),
            recv_rate=max(0, round(feedback.recv_rate)),
            expedited=feedback.expedited,
        )
        try:
            self.sock.sendto(wire.encode(), self._reply_to)
            self.feedback_sent += 1
        except OSError:
            self.send_errors += 1
