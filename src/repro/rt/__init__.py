"""Real-time (wall-clock, UDP-socket) TFRC endpoints.

The paper evaluated two artifacts: the ns-2 simulation code and a
real-world userspace implementation run over the Internet and Dummynet
(section 4.3).  :mod:`repro` mirrors that split:

* the simulator stack (:mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.core`)
  reproduces the ns-2 results;
* this package is the real-world implementation: the *same*
  :class:`~repro.core.sender.TfrcSender` and
  :class:`~repro.core.receiver.TfrcReceiver` protocol machines, hosted on a
  wall-clock scheduler (:class:`~repro.rt.scheduler.RealtimeScheduler`)
  instead of the discrete-event engine, exchanging datagrams encoded by
  :mod:`repro.wire` over real UDP sockets.

Because the protocol machines are shared, any behaviour validated in
simulation is the behaviour deployed on the wire -- the property the
paper's two-artifact methodology was after.

:class:`~repro.rt.proxy.UdpImpairmentProxy` substitutes for Dummynet: a
local UDP relay imposing configurable loss and delay, so the Figure 3/4
style experiments can run against the real stack without a kernel shim.
"""

from repro.rt.scheduler import RealtimeScheduler
from repro.rt.proxy import UdpImpairmentProxy, drop_every_nth_data, drop_bernoulli
from repro.rt.udp import UdpTfrcReceiver, UdpTfrcReceiverMux, UdpTfrcSender
from repro.rt.session import LoopbackResult, run_loopback_session

__all__ = [
    "RealtimeScheduler",
    "UdpTfrcSender",
    "UdpTfrcReceiver",
    "UdpTfrcReceiverMux",
    "UdpImpairmentProxy",
    "drop_every_nth_data",
    "drop_bernoulli",
    "run_loopback_session",
    "LoopbackResult",
]
