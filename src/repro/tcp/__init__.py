"""Packet-level TCP implementations (Tahoe, Reno, NewReno, SACK).

These are the competing-traffic baselines the paper evaluates TFRC against.
They are window-based, ACK-clocked senders with:

* slow start / congestion avoidance,
* fast retransmit and variant-specific loss recovery,
* RTO estimation with configurable clock granularity (the paper discusses
  500 ms FreeBSD clocks vs aggressive Solaris timers, section 4.3),
* an optional delayed-ACK receiver.

The sequence space is packet-granular (one sequence number per packet), the
same modelling choice ns-2 makes.
"""

from repro.tcp.rto import RTOEstimator
from repro.tcp.sink import TCPSink
from repro.tcp.base import TCPSender
from repro.tcp.tahoe import TahoeSender
from repro.tcp.reno import RenoSender
from repro.tcp.newreno import NewRenoSender
from repro.tcp.sack import SackSender

TCP_VARIANTS = {
    "tahoe": TahoeSender,
    "reno": RenoSender,
    "newreno": NewRenoSender,
    "sack": SackSender,
}


def make_tcp_sender(variant: str, *args, **kwargs) -> TCPSender:
    """Construct a TCP sender by variant name ("tahoe"/"reno"/"newreno"/"sack")."""
    try:
        cls = TCP_VARIANTS[variant.lower()]
    except KeyError:
        raise ValueError(
            f"unknown TCP variant {variant!r}; choose from {sorted(TCP_VARIANTS)}"
        ) from None
    return cls(*args, **kwargs)


__all__ = [
    "RTOEstimator",
    "TCPSink",
    "TCPSender",
    "TahoeSender",
    "RenoSender",
    "NewRenoSender",
    "SackSender",
    "TCP_VARIANTS",
    "make_tcp_sender",
]
