"""Common TCP sender machinery.

:class:`TCPSender` implements everything the four variants share: the send
window, slow start and congestion avoidance, RTT sampling with Karn's rule,
the retransmission timer with exponential backoff, and bookkeeping.  Variant
behaviour on duplicate ACKs and on (partial) new ACKs is delegated to hook
methods that :mod:`tahoe`, :mod:`reno`, :mod:`newreno` and :mod:`sack`
override.

The sender models a bulk (FTP-like) application by default: data is always
available until ``packets_to_send`` (if set) is exhausted.  Short web-like
connections set ``packets_to_send`` and an ``on_complete`` callback.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator
from repro.sim.process import make_timer
from repro.sim.trace import Tracer
from repro.tcp.rto import RTOEstimator
from repro.tcp.sink import TCPAckInfo

PacketSender = Callable[[Packet], None]


class TCPSender:
    """Window-based, ACK-clocked TCP sender (base class)."""

    #: human-readable variant name, overridden by subclasses
    variant = "base"

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        send_packet: PacketSender,
        packet_size: int = 1000,
        initial_cwnd: float = 2.0,
        initial_ssthresh: float = 64.0,
        max_cwnd: float = 10_000.0,
        rto_granularity: float = 0.1,
        min_rto: float = 0.2,
        rto_k: float = 4.0,
        packets_to_send: Optional[int] = None,
        on_complete: Optional[Callable[[], None]] = None,
        tracer: Optional[Tracer] = None,
        dupack_threshold: int = 3,
        fast_timers: bool = True,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self._send_packet = send_packet
        self.packet_size = packet_size
        self.max_cwnd = max_cwnd
        self.tracer = tracer
        self.dupack_threshold = dupack_threshold
        self.packets_to_send = packets_to_send
        self.on_complete = on_complete
        self._completed = False

        self.cwnd = float(initial_cwnd)
        # Bounding the initial slow-start like real stacks do (64 segments ~
        # a 64 KB window) avoids a pathological first overshoot on long-fat
        # paths; pass max_cwnd to get unbounded classic slow start.
        self.ssthresh = float(initial_ssthresh)
        self.snd_una = 0  # oldest unacknowledged sequence number
        self.snd_nxt = 0  # next new sequence number to send
        self.dupacks = 0
        self.in_recovery = False
        self.recover = -1  # highest seq outstanding when loss was detected

        self.rto_estimator = RTOEstimator(
            granularity=rto_granularity, min_rto=min_rto, k=rto_k
        )
        self.fast_timers = fast_timers
        self._retx_timer = make_timer(sim, self._on_timeout, fast_timers)
        self._retransmitted: Set[int] = set()
        self._send_times: Dict[int, float] = {}
        self._started = False
        self._stopped = False

        # Statistics.
        self.packets_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.acks_received = 0

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        """Begin transmitting (call once; idempotent)."""
        if self._started:
            return
        self._started = True
        self._try_send()

    def stop(self) -> None:
        """Halt transmission and cancel timers."""
        self._stopped = True
        self._retx_timer.cancel()

    @property
    def outstanding(self) -> int:
        """Packets in flight according to cumulative state."""
        return self.snd_nxt - self.snd_una

    @property
    def is_complete(self) -> bool:
        return self._completed

    # ------------------------------------------------------- ACK processing

    def on_ack(self, packet: Packet) -> None:
        """Process one arriving ACK packet."""
        if self._stopped or not packet.is_ack:
            return
        info = packet.payload
        if not isinstance(info, TCPAckInfo):
            raise TypeError(f"ACK for {self.flow_id} lacks TCPAckInfo payload")
        self.acks_received += 1
        ack_seq = packet.seq

        self._sample_rtt(info)
        self._register_sack(info)

        if ack_seq > self.snd_una:
            newly_acked = ack_seq - self.snd_una
            self.snd_una = ack_seq
            self.dupacks = 0
            for seq in range(ack_seq - newly_acked, ack_seq):
                self._send_times.pop(seq, None)
                self._retransmitted.discard(seq)
            if self.in_recovery and ack_seq > self.recover:
                self._exit_recovery()
                self._restart_timer()
            elif self.in_recovery:
                self.on_partial_ack(ack_seq, newly_acked)
                self._restart_timer()
            else:
                self._open_window(newly_acked)
                self._restart_timer()
        elif ack_seq == self.snd_una and self.outstanding > 0:
            self.dupacks += 1
            if self.in_recovery:
                self.on_recovery_dupack()
            elif self.dupacks == self.dupack_threshold:
                self.fast_retransmits += 1
                self.on_dupack_threshold()
            elif self.dupacks > self.dupack_threshold:
                self.on_excess_dupack()
        self._check_complete()
        self._try_send()

    def _sample_rtt(self, info: TCPAckInfo) -> None:
        # Karn's rule: never sample from a retransmitted segment.
        if info.echo_seq in self._retransmitted:
            return
        rtt = self.sim._now - info.echo_ts
        if rtt > 0:
            self.rto_estimator.sample(rtt)

    def _register_sack(self, info: TCPAckInfo) -> None:
        """Record SACK information; only the SACK variant uses it."""

    # ----------------------------------------------------- variant hooks

    def on_dupack_threshold(self) -> None:
        """Third duplicate ACK outside recovery."""
        raise NotImplementedError

    def on_excess_dupack(self) -> None:
        """Duplicate ACKs beyond the threshold, outside recovery."""

    def on_recovery_dupack(self) -> None:
        """Duplicate ACK while already in recovery."""

    def on_partial_ack(self, ack_seq: int, newly_acked: int) -> None:
        """New ACK below ``recover`` while in recovery (default: exit)."""
        self._exit_recovery()

    def _exit_recovery(self) -> None:
        self.in_recovery = False
        self.dupacks = 0
        self.cwnd = max(1.0, self.ssthresh)

    # --------------------------------------------------------- window math

    def _open_window(self, newly_acked: int) -> None:
        """Normal (non-recovery) window growth for one arriving ACK.

        Growth is per-ACK ("ACK counting"), not per acknowledged packet --
        the standard behaviour that makes delayed ACKs slow window growth.
        """
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / self.cwnd
        self.cwnd = min(self.cwnd, self.max_cwnd)

    def halve_window(self) -> None:
        """ssthresh <- max(flight/2, 2); used on loss detection."""
        self.ssthresh = max(self.outstanding / 2.0, 2.0)

    def _window_allows(self) -> bool:
        return self.outstanding < int(self.cwnd)

    # ------------------------------------------------------------- sending

    def _more_data_available(self) -> bool:
        if self.packets_to_send is None:
            return True
        return self.snd_nxt < self.packets_to_send

    def _try_send(self) -> None:
        if self._stopped or not self._started:
            return
        while self._window_allows() and self._more_data_available():
            self._transmit(self.snd_nxt)
            self.snd_nxt += 1

    def _transmit(self, seq: int, is_retransmission: bool = False) -> None:
        now = self.sim._now
        packet = Packet(
            flow_id=self.flow_id,
            seq=seq,
            size=self.packet_size,
            ptype=PacketType.DATA,
            sent_at=now,
        )
        if is_retransmission:
            self.retransmissions += 1
            self._retransmitted.add(seq)
        else:
            self._send_times[seq] = now
        self.packets_sent += 1
        if self.tracer is not None:
            self.tracer.record(
                now, "send", self.flow_id, packet.size,
                meta={"seq": seq, "retx": is_retransmission},
            )
        if not self._retx_timer.pending:
            self._retx_timer.start(self.rto_estimator.rto)
        self._send_packet(packet)

    def retransmit_head(self) -> None:
        """Retransmit the oldest unacknowledged packet."""
        self._transmit(self.snd_una, is_retransmission=True)

    def _restart_timer(self) -> None:
        if self.outstanding > 0:
            self._retx_timer.start(self.rto_estimator.rto)
        else:
            self._retx_timer.cancel()

    # ------------------------------------------------------------- timeout

    def _on_timeout(self) -> None:
        if self._stopped or self.outstanding == 0:
            return
        self.timeouts += 1
        self.rto_estimator.backoff()
        self.halve_window()
        self.cwnd = 1.0
        self.in_recovery = False
        self.dupacks = 0
        self.on_timeout_reset()
        # Go-back-N: everything outstanding is presumed lost.
        self.snd_nxt = self.snd_una
        self.retransmit_head()
        self.snd_nxt = self.snd_una + 1
        self._retx_timer.start(self.rto_estimator.rto)

    def on_timeout_reset(self) -> None:
        """Variant hook to clear recovery state on a timeout."""

    # ----------------------------------------------------------- completion

    def _check_complete(self) -> None:
        if (
            not self._completed
            and self.packets_to_send is not None
            and self.snd_una >= self.packets_to_send
        ):
            self._completed = True
            self._retx_timer.cancel()
            if self.on_complete is not None:
                self.on_complete()
