"""SACK TCP (ns-2 "Sack1"-style): scoreboard plus pipe-based recovery.

This is the variant the paper uses for its main simulations ("TFRC vs TCP
Sack1").  During recovery the sender keeps a conservative estimate of the
number of packets in the pipe; each arriving dupACK/SACK decrements it, each
(re)transmission increments it, and packets are clocked out while
``pipe < cwnd``.  Holes (sequence numbers below the highest SACKed block that
the receiver has not reported) are retransmitted before any new data.
"""

from __future__ import annotations

from typing import List, Set

from repro.tcp.base import TCPSender
from repro.tcp.sink import TCPAckInfo


class SackSender(TCPSender):
    variant = "sack"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._sacked: Set[int] = set()
        self._retx_in_recovery: Set[int] = set()
        self._pipe = 0

    # ------------------------------------------------------------- SACK in

    def _register_sack(self, info: TCPAckInfo) -> None:
        before = len(self._sacked)
        for start, end in info.sack_blocks:
            for seq in range(start, end):
                if seq >= self.snd_una:
                    self._sacked.add(seq)
        if self.in_recovery:
            newly_sacked = len(self._sacked) - before
            self._pipe = max(0, self._pipe - newly_sacked)

    # ------------------------------------------------------------ recovery

    def _holes(self) -> List[int]:
        """Unacked, unsacked, not-yet-retransmitted seqs below the SACK top."""
        if not self._sacked:
            return []
        top = max(self._sacked)
        return [
            seq
            for seq in range(self.snd_una, top)
            if seq not in self._sacked and seq not in self._retx_in_recovery
        ]

    def on_dupack_threshold(self) -> None:
        self.halve_window()
        self.in_recovery = True
        self.recover = self.snd_nxt - 1
        self.cwnd = max(1.0, self.ssthresh)
        # Conservative pipe estimate: flight minus the dupACK departures.
        self._pipe = max(0, self.outstanding - self.dupack_threshold)
        self._retx_in_recovery.clear()
        self._recovery_send()

    def on_recovery_dupack(self) -> None:
        # Pipe was already decremented by _register_sack for any *new* SACK
        # information this ACK carried; a duplicate ACK with no new SACK
        # blocks (e.g. triggered by one of our own spurious retransmissions)
        # is not evidence that a packet left the network, so it must not
        # shrink the pipe -- otherwise the sender clocks out an unbounded
        # stream of useless retransmissions.
        self._recovery_send()

    def on_partial_ack(self, ack_seq: int, newly_acked: int) -> None:
        # The cumulatively-ACKed packets have left the network.
        self._pipe = max(0, self._pipe - newly_acked)
        self._sacked = {s for s in self._sacked if s >= ack_seq}
        self._recovery_send()

    def _recovery_send(self) -> None:
        while self._pipe < int(self.cwnd):
            holes = self._holes()
            if holes:
                seq = holes[0]
                self._retx_in_recovery.add(seq)
                self._transmit(seq, is_retransmission=True)
            elif self._more_data_available():
                self._transmit(self.snd_nxt)
                self.snd_nxt += 1
            else:
                break
            self._pipe += 1

    def _exit_recovery(self) -> None:
        super()._exit_recovery()
        self._sacked = {s for s in self._sacked if s >= self.snd_una}
        self._retx_in_recovery.clear()
        self._pipe = 0

    def on_timeout_reset(self) -> None:
        self._sacked.clear()
        self._retx_in_recovery.clear()
        self._pipe = 0

    def _window_allows(self) -> bool:
        if self.in_recovery:
            return False  # recovery transmissions are pipe-clocked instead
        return super()._window_allows()
