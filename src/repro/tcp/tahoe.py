"""Tahoe TCP: fast retransmit, then slow start from a window of one."""

from __future__ import annotations

from repro.tcp.base import TCPSender


class TahoeSender(TCPSender):
    """Tahoe reduces to cwnd = 1 on every loss detection (no fast recovery)."""

    variant = "tahoe"

    def on_dupack_threshold(self) -> None:
        self.halve_window()
        self.cwnd = 1.0
        self.dupacks = 0
        # Tahoe re-enters slow start and retransmits the lost packet; data
        # beyond snd_una will be re-sent as the window regrows (go-back-N).
        self.snd_nxt = self.snd_una
        self.retransmit_head()
        self.snd_nxt = self.snd_una + 1
