"""Retransmission timeout estimation (RFC 6298-style, with clock granularity).

The paper emphasizes that "different TCPs use drastically different clock
granularities to calculate retransmit timeout values" (section 3.2) and that
this matters under high loss (section 4.3: the FreeBSD 500 ms clock is
conservative; Solaris' aggressive timer frequently retransmits
unnecessarily).  This estimator therefore exposes:

* ``granularity`` -- RTO values are rounded up to a multiple of the clock
  tick, mimicking a coarse timer wheel;
* ``min_rto`` -- the floor aggressive stacks set too low;
* ``k`` -- the RTTVAR multiplier (4 in the standard algorithm).
"""

from __future__ import annotations

import math
from typing import Optional


class RTOEstimator:
    """SRTT/RTTVAR estimator with exponential backoff."""

    MAX_RTO = 64.0

    def __init__(
        self,
        granularity: float = 0.5,
        min_rto: float = 1.0,
        k: float = 4.0,
        alpha: float = 1.0 / 8.0,
        beta: float = 1.0 / 4.0,
        initial_rto: float = 3.0,
    ) -> None:
        if granularity < 0:
            raise ValueError("granularity cannot be negative")
        if min_rto <= 0:
            raise ValueError("min_rto must be positive")
        self.granularity = float(granularity)
        self.min_rto = float(min_rto)
        self.k = float(k)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._base_rto = float(initial_rto)
        self._backoff = 1

    def sample(self, rtt: float) -> None:
        """Feed one RTT measurement (Karn-filtered by the caller)."""
        if rtt <= 0:
            raise ValueError(f"rtt must be positive, got {rtt}")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar += self.beta * (abs(self.srtt - rtt) - self.rttvar)
            self.srtt += self.alpha * (rtt - self.srtt)
        self._base_rto = self.srtt + self.k * max(self.rttvar, self.granularity)
        self._backoff = 1  # a valid sample clears backoff

    def backoff(self) -> None:
        """Double the effective RTO after a retransmission timeout."""
        self._backoff = min(self._backoff * 2, 64)

    @property
    def rto(self) -> float:
        """Current retransmission timeout in seconds."""
        rto = self._base_rto * self._backoff
        if self.granularity > 0:
            rto = math.ceil(rto / self.granularity) * self.granularity
        return min(self.MAX_RTO, max(self.min_rto, rto))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RTOEstimator srtt={self.srtt} rttvar={self.rttvar} "
            f"rto={self.rto:.3f}>"
        )
