"""NewReno TCP: fast recovery that survives partial ACKs (RFC 2582 style).

Unlike classic Reno, a partial ACK (new data acknowledged but below the
``recover`` point) retransmits the next presumed-lost packet and stays in
recovery, so a window with several losses is repaired with a single window
halving.
"""

from __future__ import annotations

from repro.tcp.reno import RenoSender


class NewRenoSender(RenoSender):
    variant = "newreno"

    def on_partial_ack(self, ack_seq: int, newly_acked: int) -> None:
        # Retransmit the next hole and deflate by the amount acked, plus one
        # for the retransmission (RFC 2582 partial-ACK window management).
        self.retransmit_head()
        self.cwnd = max(1.0, self.cwnd - newly_acked + 1.0)
        # Stay in recovery until self.recover is cumulatively acknowledged.
