"""TCP receiver (sink): cumulative ACKs, SACK blocks, optional delayed ACKs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator

AckSender = Callable[[Packet], None]


@dataclass
class TCPAckInfo:
    """Payload carried by ACK packets.

    Attributes:
        echo_ts: send timestamp of the data packet that triggered this ACK
            (used for RTT measurement at the sender, RFC 1323-style).
        echo_seq: sequence number of that data packet.
        sack_blocks: up to three ``(start, end)`` half-open ranges of
            out-of-order data held by the receiver, ordered by arrival
            recency: the first block contains the most recently received
            segment (RFC 2018 section 4).
    """

    echo_ts: float
    echo_seq: int
    sack_blocks: List[Tuple[int, int]] = field(default_factory=list)


class TCPSink:
    """Receives data packets and emits (possibly delayed) cumulative ACKs."""

    ACK_SIZE = 40  # bytes: TCP/IP header only

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        send_ack: AckSender,
        delayed_ack: bool = False,
        delack_interval: float = 0.2,
        on_data: Optional[Callable[[float, Packet], None]] = None,
        max_sack_blocks: int = 3,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self._send_ack = send_ack
        self.delayed_ack = delayed_ack
        self.delack_interval = delack_interval
        self.on_data = on_data
        self.max_sack_blocks = max_sack_blocks
        self.next_expected = 0
        self._out_of_order: Set[int] = set()
        # Arrival recency per out-of-order seq (monotone counter), so SACK
        # blocks can be ordered most-recently-received first per RFC 2018.
        self._arrival_order: Dict[int, int] = {}
        self._arrivals_seen = 0
        self._pending_ack_echo: Optional[Tuple[float, int]] = None
        self._delack_event = None
        self.packets_received = 0
        self.acks_sent = 0
        self.duplicate_data = 0

    def receive(self, packet: Packet) -> None:
        """Handle an arriving data packet."""
        if not packet.is_data:
            return
        self.packets_received += 1
        if self.on_data is not None:
            self.on_data(self.sim.now, packet)
        seq = packet.seq
        self._arrivals_seen += 1
        if seq < self.next_expected or seq in self._out_of_order:
            self.duplicate_data += 1
            if seq in self._out_of_order:
                # A duplicate of held out-of-order data is still the most
                # recent arrival; its block must lead the next SACK.
                self._arrival_order[seq] = self._arrivals_seen
            self._emit_ack(packet)  # duplicate data still triggers an ACK
            return
        self._out_of_order.add(seq)
        self._arrival_order[seq] = self._arrivals_seen
        while self.next_expected in self._out_of_order:
            self._out_of_order.discard(self.next_expected)
            self._arrival_order.pop(self.next_expected, None)
            self.next_expected += 1
        in_order = seq < self.next_expected
        if in_order and self.delayed_ack and not self._out_of_order:
            self._maybe_delay_ack(packet)
        else:
            # Out-of-order data (or a gap fill) must be ACKed immediately so
            # the sender's fast-retransmit machinery sees dupACKs promptly.
            self._emit_ack(packet)

    def _maybe_delay_ack(self, packet: Packet) -> None:
        if self._pending_ack_echo is None:
            self._pending_ack_echo = (packet.sent_at, packet.seq)
            self._delack_event = self.sim.schedule_in(
                self.delack_interval, self._delack_fire
            )
        else:
            # Second in-order packet: ACK both at once.
            if self._delack_event is not None:
                self._delack_event.cancel()
                self._delack_event = None
            self._pending_ack_echo = None
            self._emit_ack(packet)

    def _delack_fire(self) -> None:
        if self._pending_ack_echo is None:
            return
        echo_ts, echo_seq = self._pending_ack_echo
        self._pending_ack_echo = None
        self._delack_event = None
        self._send(echo_ts, echo_seq)

    def _emit_ack(self, packet: Packet) -> None:
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
            self._pending_ack_echo = None
        self._send(packet.sent_at, packet.seq)

    def _sack_blocks(self) -> List[Tuple[int, int]]:
        """Contiguous ranges of out-of-order data above the cumulative ACK.

        Ordered by arrival recency, newest block first: RFC 2018 requires
        the first SACK block to contain the most recently received segment
        (so a sender sampling only the first block still learns what just
        arrived), not the highest-sequence block.
        """
        if not self._out_of_order:
            return []
        order = self._arrival_order
        blocks: List[Tuple[int, Tuple[int, int]]] = []
        seqs = sorted(self._out_of_order)
        start = prev = seqs[0]
        recency = order.get(start, 0)
        for seq in seqs[1:]:
            if seq == prev + 1:
                prev = seq
                recency = max(recency, order.get(seq, 0))
                continue
            blocks.append((recency, (start, prev + 1)))
            start = prev = seq
            recency = order.get(seq, 0)
        blocks.append((recency, (start, prev + 1)))
        blocks.sort(key=lambda b: -b[0])  # most recently received first
        return [block for _, block in blocks[: self.max_sack_blocks]]

    def _send(self, echo_ts: float, echo_seq: int) -> None:
        info = TCPAckInfo(
            echo_ts=echo_ts, echo_seq=echo_seq, sack_blocks=self._sack_blocks()
        )
        ack = Packet(
            flow_id=self.flow_id,
            seq=self.next_expected,
            size=self.ACK_SIZE,
            ptype=PacketType.ACK,
            sent_at=self.sim.now,
            payload=info,
        )
        self.acks_sent += 1
        self._send_ack(ack)
