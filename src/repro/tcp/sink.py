"""TCP receiver (sink): cumulative ACKs, SACK blocks, optional delayed ACKs.

Two SACK bookkeeping strategies are implemented:

* the **incremental fast path** (default): out-of-order data is held as a
  sorted list of disjoint ``[start, end)`` intervals with a per-interval
  arrival-recency tag.  Each arrival touches at most two neighbouring
  intervals (``bisect`` lookup + merge/extend), and building an ACK's SACK
  blocks is a selection over the handful of intervals -- not a re-sort of
  every held sequence number.
* the **legacy path** (``incremental_sack=False``): a plain ``set`` of held
  sequence numbers plus a per-seq recency dict, re-sorted and re-grouped
  into blocks on every ACK.  Kept as the perf baseline; both paths emit
  byte-identical ACK streams (property-tested in
  ``tests/test_net_fastpath.py``).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator

AckSender = Callable[[Packet], None]


class TCPAckInfo:
    """Payload carried by ACK packets (one allocated per ACK: slotted).

    Attributes:
        echo_ts: send timestamp echoed for RTT measurement at the sender
            (RFC 7323-style).  For ACKs covering a delayed (held) segment
            this is the *earliest* pending segment's timestamp, so the
            delayed-ACK hold time is included in the measured RTT and the
            RTO stays conservative (RFC 7323 section 4.2).
        echo_seq: sequence number of the echoed data packet.
        sack_blocks: up to three ``(start, end)`` half-open ranges of
            out-of-order data held by the receiver, ordered by arrival
            recency: the first block contains the most recently received
            segment (RFC 2018 section 4).
    """

    __slots__ = ("echo_ts", "echo_seq", "sack_blocks")

    def __init__(
        self,
        echo_ts: float,
        echo_seq: int,
        sack_blocks: Optional[List[Tuple[int, int]]] = None,
    ) -> None:
        self.echo_ts = echo_ts
        self.echo_seq = echo_seq
        self.sack_blocks = [] if sack_blocks is None else sack_blocks


class TCPSink:
    """Receives data packets and emits (possibly delayed) cumulative ACKs."""

    ACK_SIZE = 40  # bytes: TCP/IP header only

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        send_ack: AckSender,
        delayed_ack: bool = False,
        delack_interval: float = 0.2,
        on_data: Optional[Callable[[float, Packet], None]] = None,
        max_sack_blocks: int = 3,
        incremental_sack: bool = True,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self._send_ack = send_ack
        self.delayed_ack = delayed_ack
        self.delack_interval = delack_interval
        self.on_data = on_data
        self.max_sack_blocks = max_sack_blocks
        self.incremental_sack = incremental_sack
        self.next_expected = 0
        # Incremental state: disjoint [start, end) intervals of held
        # out-of-order data, sorted by start, with per-interval recency
        # (the arrival counter of the newest member segment).
        self._blk_starts: List[int] = []
        self._blk_ends: List[int] = []
        self._blk_recency: List[int] = []
        # Legacy state: per-seq set + recency dict, re-grouped per ACK.
        self._out_of_order: Set[int] = set()
        self._arrival_order: Dict[int, int] = {}
        self._arrivals_seen = 0
        self._pending_ack_echo: Optional[Tuple[float, int]] = None
        self._delack_event = None
        self.packets_received = 0
        self.acks_sent = 0
        self.duplicate_data = 0

    def receive(self, packet: Packet) -> None:
        """Handle an arriving data packet."""
        if not packet.is_data:
            return
        self.packets_received += 1
        if self.on_data is not None:
            self.on_data(self.sim._now, packet)
        if self.incremental_sack:
            self._receive_incremental(packet)
        else:
            self._receive_legacy(packet)

    # ------------------------------------------------- incremental fast path

    def _receive_incremental(self, packet: Packet) -> None:
        seq = packet.seq
        self._arrivals_seen += 1
        starts = self._blk_starts
        if seq == self.next_expected and not starts:
            # Common case: in-order data with nothing held out of order.
            self.next_expected = seq + 1
            if self.delayed_ack:
                self._maybe_delay_ack(packet)
            else:
                self._emit_ack(packet)
            return
        ends = self._blk_ends
        recency = self._blk_recency
        # Locate the interval with the greatest start <= seq (if any).
        i = bisect_right(starts, seq) - 1
        if seq < self.next_expected or (i >= 0 and seq < ends[i]):
            self.duplicate_data += 1
            if i >= 0 and seq >= starts[i] and seq < ends[i]:
                # A duplicate of held out-of-order data is still the most
                # recent arrival; its block must lead the next SACK.
                recency[i] = self._arrivals_seen
            self._emit_ack(packet)  # duplicate data still triggers an ACK
            return
        # Fresh data: splice into the interval structure.  At most the two
        # neighbouring intervals are touched.
        left_adjacent = i >= 0 and ends[i] == seq
        right_adjacent = i + 1 < len(starts) and starts[i + 1] == seq + 1
        if left_adjacent and right_adjacent:
            ends[i] = ends[i + 1]
            del starts[i + 1], ends[i + 1], recency[i + 1]
            recency[i] = self._arrivals_seen
        elif left_adjacent:
            ends[i] = seq + 1
            recency[i] = self._arrivals_seen
        elif right_adjacent:
            starts[i + 1] = seq
            recency[i + 1] = self._arrivals_seen
        else:
            starts.insert(i + 1, seq)
            ends.insert(i + 1, seq + 1)
            recency.insert(i + 1, self._arrivals_seen)
        in_order = seq == self.next_expected
        if in_order:
            # The first interval now begins exactly at next_expected; the
            # cumulative ACK consumes it whole (intervals are contiguous
            # runs, so partial consumption is impossible).
            self.next_expected = ends[0]
            del starts[0], ends[0], recency[0]
        if in_order and self.delayed_ack and not starts:
            self._maybe_delay_ack(packet)
        else:
            # Out-of-order data (or a gap fill) must be ACKed immediately so
            # the sender's fast-retransmit machinery sees dupACKs promptly.
            self._emit_ack(packet)

    def _sack_blocks_incremental(self) -> List[Tuple[int, int]]:
        starts = self._blk_starts
        if not starts:
            return []
        ends = self._blk_ends
        recency = self._blk_recency
        n = len(starts)
        if n == 1:
            return [(starts[0], ends[0])]
        # Newest block first; recency tags are unique arrival counters, so
        # this matches the legacy sort exactly.
        order = sorted(range(n), key=recency.__getitem__, reverse=True)
        return [
            (starts[i], ends[i]) for i in order[: self.max_sack_blocks]
        ]

    # ------------------------------------------------------ legacy path

    def _receive_legacy(self, packet: Packet) -> None:
        seq = packet.seq
        self._arrivals_seen += 1
        if seq < self.next_expected or seq in self._out_of_order:
            self.duplicate_data += 1
            if seq in self._out_of_order:
                # A duplicate of held out-of-order data is still the most
                # recent arrival; its block must lead the next SACK.
                self._arrival_order[seq] = self._arrivals_seen
            self._emit_ack(packet)  # duplicate data still triggers an ACK
            return
        self._out_of_order.add(seq)
        self._arrival_order[seq] = self._arrivals_seen
        while self.next_expected in self._out_of_order:
            self._out_of_order.discard(self.next_expected)
            self._arrival_order.pop(self.next_expected, None)
            self.next_expected += 1
        in_order = seq < self.next_expected
        if in_order and self.delayed_ack and not self._out_of_order:
            self._maybe_delay_ack(packet)
        else:
            self._emit_ack(packet)

    def _sack_blocks_legacy(self) -> List[Tuple[int, int]]:
        if not self._out_of_order:
            return []
        order = self._arrival_order
        blocks: List[Tuple[int, Tuple[int, int]]] = []
        seqs = sorted(self._out_of_order)
        start = prev = seqs[0]
        recency = order.get(start, 0)
        for seq in seqs[1:]:
            if seq == prev + 1:
                prev = seq
                recency = max(recency, order.get(seq, 0))
                continue
            blocks.append((recency, (start, prev + 1)))
            start = prev = seq
            recency = order.get(seq, 0)
        blocks.append((recency, (start, prev + 1)))
        blocks.sort(key=lambda b: -b[0])  # most recently received first
        return [block for _, block in blocks[: self.max_sack_blocks]]

    # ------------------------------------------------------- ACK emission

    def _maybe_delay_ack(self, packet: Packet) -> None:
        if self._pending_ack_echo is None:
            self._pending_ack_echo = (packet.sent_at, packet.seq)
            self._delack_event = self.sim.schedule_in(
                self.delack_interval, self._delack_fire
            )
        else:
            # Second in-order packet: ACK both at once, echoing the *first*
            # (earliest) pending segment's timestamp so the hold time is
            # part of the measured RTT (RFC 7323 section 4.2).
            echo_ts, echo_seq = self._pending_ack_echo
            if self._delack_event is not None:
                self._delack_event.cancel()
                self._delack_event = None
            self._pending_ack_echo = None
            self._send(echo_ts, echo_seq)

    def _delack_fire(self) -> None:
        if self._pending_ack_echo is None:
            return
        echo_ts, echo_seq = self._pending_ack_echo
        self._pending_ack_echo = None
        self._delack_event = None
        self._send(echo_ts, echo_seq)

    def _emit_ack(self, packet: Packet) -> None:
        pending = self._pending_ack_echo
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
            self._pending_ack_echo = None
        if pending is not None:
            # Flushing a held ACK (an out-of-order or duplicate segment
            # arrived): the earliest pending in-order segment is the one
            # whose timestamp belongs in the echo (RFC 7323 section 4.2).
            self._send(pending[0], pending[1])
        else:
            self._send(packet.sent_at, packet.seq)

    def _sack_blocks(self) -> List[Tuple[int, int]]:
        """Contiguous ranges of out-of-order data above the cumulative ACK.

        Ordered by arrival recency, newest block first: RFC 2018 requires
        the first SACK block to contain the most recently received segment
        (so a sender sampling only the first block still learns what just
        arrived), not the highest-sequence block.
        """
        if self.incremental_sack:
            return self._sack_blocks_incremental()
        return self._sack_blocks_legacy()

    def _send(self, echo_ts: float, echo_seq: int) -> None:
        info = TCPAckInfo(
            echo_ts=echo_ts, echo_seq=echo_seq, sack_blocks=self._sack_blocks()
        )
        ack = Packet(
            flow_id=self.flow_id,
            seq=self.next_expected,
            size=self.ACK_SIZE,
            ptype=PacketType.ACK,
            sent_at=self.sim._now,
            payload=info,
        )
        self.acks_sent += 1
        self._send_ack(ack)
