"""TcpFlow: one TCP sender/sink pair wired over a pair of network ports."""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.tcp import make_tcp_sender
from repro.tcp.sink import TCPSink


class TcpFlow:
    """One TCP flow: sender on the forward port, sink ACKs on the reverse."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        forward_port,
        reverse_port,
        variant: str = "sack",
        packet_size: int = 1000,
        tracer: Optional[Tracer] = None,
        on_data: Optional[Callable[[float, Packet], None]] = None,
        delayed_ack: bool = False,
        incremental_sack: bool = True,
        **sender_kwargs,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        # Ports' ``send`` returns a bool (accepted?) that the sender and
        # sink ignore; the bound methods are handed over directly so each
        # packet skips a lambda frame.
        self.sender = make_tcp_sender(
            variant,
            sim,
            flow_id,
            send_packet=forward_port.send,
            packet_size=packet_size,
            tracer=tracer,
            **sender_kwargs,
        )
        self.sink = TCPSink(
            sim,
            flow_id,
            send_ack=reverse_port.send,
            delayed_ack=delayed_ack,
            on_data=on_data,
            incremental_sack=incremental_sack,
        )
        forward_port.connect(self.sink.receive)
        reverse_port.connect(self.sender.on_ack)

    def start(self, at: Optional[float] = None) -> None:
        if at is None:
            self.sender.start()
        else:
            self.sim.schedule(at, self.sender.start)

    def stop(self) -> None:
        self.sender.stop()

    @property
    def cwnd(self) -> float:
        return self.sender.cwnd
