"""Reno TCP: fast retransmit plus classic fast recovery.

Classic Reno exits recovery on the first new ACK, even a partial one, which
is why it can halve the window more than once when several packets are lost
from a single flight -- a behaviour the paper calls out in section 3.5.1
("Reno TCP typically reduces the congestion window twice in response to
multiple losses in a window of data").
"""

from __future__ import annotations

from repro.tcp.base import TCPSender


class RenoSender(TCPSender):
    variant = "reno"

    def on_dupack_threshold(self) -> None:
        self.halve_window()
        self.in_recovery = True
        self.recover = self.snd_nxt - 1
        self.retransmit_head()
        # Window inflation: ssthresh + number of dupACKs seen so far.
        self.cwnd = self.ssthresh + self.dupack_threshold

    def on_excess_dupack(self) -> None:
        # Only reachable if recovery was exited while dupacks kept counting;
        # treat like a recovery dupack for window inflation.
        self.cwnd += 1.0

    def on_recovery_dupack(self) -> None:
        self.cwnd += 1.0  # each dupACK signals a departure; inflate

    def on_partial_ack(self, ack_seq: int, newly_acked: int) -> None:
        # Classic Reno: any new ACK terminates recovery (deflate to ssthresh).
        self._exit_recovery()

    def on_timeout_reset(self) -> None:
        self.recover = -1
