"""Loss-interval estimators.

The key design issue in equation-based congestion control is how the loss
event rate is measured (paper section 3.3).  This module implements the
method the paper adopts -- the **Average Loss Interval** method with history
discounting -- and the two alternatives the paper considers and rejects
(**EWMA Loss Interval** and **Dynamic History Window**), so the comparison
experiments can exercise all three.

All estimators consume the same event stream:

* ``on_packet()`` -- one in-order data packet arrived (extends the open
  interval s0);
* ``on_loss_event(interval_packets)`` -- a new loss event began; the interval
  just closed contained ``interval_packets`` packets.

and expose ``loss_event_rate()`` -> p (0 when no loss has been seen yet).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence


def ali_weights(n: int) -> List[float]:
    """Paper section 3.3 weights: 1 for the newest n/2 intervals, then
    linearly decaying.  For n=8: 1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2."""
    if n < 2 or n % 2 != 0:
        raise ValueError("n must be an even integer >= 2")
    half = n // 2
    weights = []
    for i in range(1, n + 1):
        if i <= half:
            weights.append(1.0)
        else:
            weights.append(1.0 - (i - half) / (half + 1.0))
    return weights


ALI_DEFAULT_WEIGHTS = ali_weights(8)


def wali_fold_average(
    weighted: Sequence[float], values: Sequence[float]
) -> float:
    """Left-fold weighted average: sum(w*v) / sum(w), 0.0 when weightless.

    This is the scalar reference for the vector kernel's lane-parallel
    WALI fold (``_WaliLanes._fold_average``); the two must stay
    bit-identical, so both accumulate strictly left-to-right over the
    same ``weighted``/``values`` operands.  The audit's ``twin.*`` gate
    proves the lockstep statically.
    """
    total = 0.0
    total_weight = 0.0
    for w, v in zip(weighted, values):
        total += w * v
        total_weight += w
    if total_weight == 0.0:
        return 0.0
    return total / total_weight


class AverageLossIntervals:
    """The full Average Loss Interval method (paper section 3.3).

    * Weighted average over the last ``n`` closed intervals (s1..sn), weights
      ``ali_weights(n)``.
    * The open interval s0 is included only when it raises the average:
      the value used is ``max(s_hat, s_hat_new)`` where ``s_hat_new``
      averages s0..s(n-1) with the same weights.
    * History discounting: once s0 exceeds twice the (undiscounted) average,
      older intervals are discounted by ``2*avg/s0`` (floored at
      ``discount_floor``), which raises the effective normalized weight of
      the newest information up to ~0.4 -- the value Appendix A.1 uses for
      the 0.28 packets/RTT/RTT increase bound.  When the next loss event
      arrives the prevailing discount is folded permanently into the
      per-interval discount factors, as in the TFRC specification.
    """

    def __init__(
        self,
        n: int = 8,
        discounting: bool = True,
        discount_floor: float = 0.3,
    ) -> None:
        if not 0 < discount_floor <= 1:
            raise ValueError("discount_floor must be in (0, 1]")
        self.n = n
        self.weights = ali_weights(n)
        self.discounting = discounting
        self.discount_floor = discount_floor
        self._intervals: Deque[float] = deque(maxlen=n)  # newest first
        self._discounts: Deque[float] = deque(maxlen=n)  # parallel to above
        self._s0 = 0.0
        self.loss_events = 0

    # ------------------------------------------------------------- updates

    def on_packet(self, count: float = 1.0) -> None:
        """Extend the open interval by ``count`` packets."""
        if count < 0:
            raise ValueError("count cannot be negative")
        self._s0 += count

    def on_loss_event(self, interval_packets: Optional[float] = None) -> None:
        """Close the open interval and start a new one.

        ``interval_packets`` overrides the internally counted s0 (useful when
        the caller measures intervals in sequence space); by default the
        packets counted via :meth:`on_packet` are used.
        """
        closed = self._s0 if interval_packets is None else float(interval_packets)
        if closed < 0:
            raise ValueError("interval length cannot be negative")
        # Fold the prevailing discount into history permanently.
        current_discount = self._current_discount()
        if current_discount < 1.0:
            self._discounts = deque(
                (d * current_discount for d in self._discounts), maxlen=self.n
            )
        self._intervals.appendleft(max(closed, 1.0))
        self._discounts.appendleft(1.0)
        self._s0 = 0.0
        self.loss_events += 1

    def seed(self, interval_packets: float) -> None:
        """Initialize history with one synthetic interval (slow-start exit).

        The paper (section 3.4.1): compute the loss interval that the control
        equation maps to half the rate at which slow start ended, and use it
        as the entire initial history.  Real data then displaces it.
        """
        if interval_packets <= 0:
            raise ValueError("seed interval must be positive")
        self._intervals.clear()
        self._discounts.clear()
        self._intervals.appendleft(float(interval_packets))
        self._discounts.appendleft(1.0)
        self._s0 = 0.0
        self.loss_events += 1

    @classmethod
    def from_state(
        cls,
        intervals: Sequence[float],
        discounts: Sequence[float],
        open_interval: float,
        loss_events: int,
        *,
        n: int = 8,
        discounting: bool = True,
        discount_floor: float = 0.3,
    ) -> "AverageLossIntervals":
        """Rebuild an estimator from a mid-run snapshot.

        ``intervals``/``discounts`` are the closed-interval history, newest
        first (the layout :attr:`history` reports).  Used by the batched
        cell kernel to hand a lane's loss history to a scalar continuation.
        """
        if len(intervals) != len(discounts):
            raise ValueError("intervals and discounts must be parallel")
        if len(intervals) > n:
            raise ValueError(f"history holds at most n={n} intervals")
        est = cls(n=n, discounting=discounting, discount_floor=discount_floor)
        est._intervals.extend(float(v) for v in intervals)
        est._discounts.extend(float(d) for d in discounts)
        est._s0 = float(open_interval)
        est.loss_events = int(loss_events)
        return est

    # ------------------------------------------------------------ averages

    @property
    def open_interval(self) -> float:
        """Current s0 (packets since the last loss event)."""
        return self._s0

    @property
    def history(self) -> List[float]:
        """Closed intervals, newest first."""
        return list(self._intervals)

    def _weighted_average(
        self, intervals: Sequence[float], discounts: Sequence[float]
    ) -> float:
        weighted = [w * d for w, d in zip(self.weights, discounts)]
        return wali_fold_average(weighted, intervals)

    def _raw_average(self) -> float:
        """Average over closed intervals with accumulated discounts only."""
        return self._weighted_average(self._intervals, self._discounts)

    def _current_discount(self) -> float:
        """Discount to apply to history while the current lull lasts."""
        if not self.discounting or not self._intervals:
            return 1.0
        raw = self._weighted_average(self._intervals, [1.0] * len(self._intervals))
        if raw <= 0 or self._s0 <= 2.0 * raw:
            return 1.0
        return max(self.discount_floor, 2.0 * raw / self._s0)

    def average_interval(self) -> float:
        """The average loss interval max(s_hat, s_hat_new), in packets."""
        if not self._intervals:
            return 0.0
        discount = self._current_discount()
        discounts = [d * discount for d in self._discounts]
        s_hat = self._weighted_average(self._intervals, discounts)
        shifted_intervals = [self._s0] + list(self._intervals)[: self.n - 1]
        shifted_discounts = [1.0] + discounts[: self.n - 1]
        s_hat_new = self._weighted_average(shifted_intervals, shifted_discounts)
        return max(s_hat, s_hat_new)

    def loss_event_rate(self) -> float:
        """p = 1 / average loss interval; 0 before any loss event."""
        avg = self.average_interval()
        if avg <= 0:
            return 0.0
        return min(1.0, 1.0 / avg)

    def newest_effective_weight(self) -> float:
        """Normalized weight of the newest information in the current average.

        Without discounting this is w1 / sum(w) = 1/6 for n=8; with maximum
        discounting it approaches 1 / (1 + floor*(sum(w)-1)) ~ 0.4.  Exposed
        for the Appendix A.1 experiments.
        """
        if not self._intervals:
            return 1.0
        discount = self._current_discount()
        discounts = [d * discount for d in self._discounts]
        shifted = [1.0] + discounts[: self.n - 1]
        weights = [w * d for w, d in zip(self.weights, shifted)]
        total = sum(weights)
        if total == 0:
            return 1.0
        return weights[0] / total


class EwmaLossIntervals:
    """EWMA of the inter-loss interval (rejected alternative, section 3.3).

    Depending on the weight this either overreacts to the newest interval or
    is too slow to react; included for the estimator-comparison experiments.
    """

    def __init__(self, weight: float = 0.25) -> None:
        if not 0 < weight <= 1:
            raise ValueError("weight must be in (0, 1]")
        self.weight = weight
        self._avg: Optional[float] = None
        self._s0 = 0.0
        self.loss_events = 0

    def on_packet(self, count: float = 1.0) -> None:
        self._s0 += count

    def on_loss_event(self, interval_packets: Optional[float] = None) -> None:
        closed = self._s0 if interval_packets is None else float(interval_packets)
        closed = max(closed, 1.0)
        if self._avg is None:
            self._avg = closed
        else:
            self._avg += self.weight * (closed - self._avg)
        self._s0 = 0.0
        self.loss_events += 1

    def average_interval(self) -> float:
        if self._avg is None:
            return 0.0
        # Mirror ALI's treatment of s0: only let a long lull raise the average.
        return max(self._avg, self._s0) if self._s0 > self._avg else self._avg

    def loss_event_rate(self) -> float:
        avg = self.average_interval()
        return 0.0 if avg <= 0 else min(1.0, 1.0 / avg)


class DynamicHistoryWindow:
    """Loss rate over a rate-scaled window of packets (rejected alternative).

    Keeps the most recent ``window_packets()`` packet outcomes and reports
    the fraction that started loss events.  Its flaw -- loss events entering
    and leaving the window modulate the measured rate even under perfectly
    periodic loss -- is demonstrated by the estimator-comparison experiment.
    """

    def __init__(self, window_packets: int = 800) -> None:
        if window_packets < 2:
            raise ValueError("window must hold at least 2 packets")
        self.window = window_packets
        self._outcomes: Deque[bool] = deque(maxlen=window_packets)
        self.loss_events = 0

    def set_window(self, window_packets: int) -> None:
        """Resize the window (rate changed); keeps the newest outcomes."""
        if window_packets < 2:
            raise ValueError("window must hold at least 2 packets")
        newest = list(self._outcomes)[-window_packets:]
        self.window = window_packets
        self._outcomes = deque(newest, maxlen=window_packets)

    def on_packet(self, count: float = 1.0) -> None:
        for _ in range(int(count)):
            self._outcomes.append(False)

    def on_loss_event(self, interval_packets: Optional[float] = None) -> None:
        self._outcomes.append(True)
        self.loss_events += 1

    def loss_event_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def average_interval(self) -> float:
        p = self.loss_event_rate()
        return 0.0 if p == 0 else 1.0 / p
