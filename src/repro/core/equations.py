"""TCP response functions and their inversion.

Equation (1) of the paper (from Padhye, Firoiu, Towsley, Kurose 1998) gives
the steady-state TCP sending rate::

    T = s / ( R*sqrt(2p/3) + t_RTO * (3*sqrt(3p/8)) * p * (1 + 32 p^2) )

in bytes/second for packet size ``s`` (bytes), round-trip time ``R``
(seconds), loss event rate ``p``, and retransmit timeout ``t_RTO`` (seconds,
the paper's heuristic is ``t_RTO = 4R``).

The appendix analysis instead uses the simple deterministic response
function ``T = s * sqrt(1.5) / (R * sqrt(p))``.

Both are exposed here, along with a numerically robust inversion
(rate -> p) used to seed the receiver's loss history when slow start ends
(section 3.4.1), and the closed-form per-RTT increase bound of Appendix A.1.
"""

from __future__ import annotations

import math

import numpy as np

#: Appendix A.1: with the simple response function and normalized weight
#: w = 1/6 on the newest interval, the per-RTT rate increase is at most
#: ~0.12 packets/RTT; with Equation (1) the paper quotes 0.14.
DELTA_T_SIMPLE_BOUND = 0.12
DELTA_T_EQ1_BOUND = 0.14
DELTA_T_DISCOUNTED_BOUND = 0.28

#: Minimum loss event rate we evaluate the equations at.  Below this, the
#: equation rate exceeds any realistic link speed and the sender is
#: effectively unconstrained by loss.
P_MIN = 1e-8


def tcp_response_rate(packet_size: int, rtt: float, p: float, t_rto: float) -> float:
    """Allowed sending rate in bytes/second per paper Equation (1).

    Args:
        packet_size: segment size ``s`` in bytes.
        rtt: round-trip time ``R`` in seconds.
        p: loss event rate in (0, 1].
        t_rto: retransmission timeout in seconds (heuristic: ``4 * rtt``).

    Returns:
        The TCP-compatible rate ``T`` in bytes/second.  For ``p <= 0`` the
        equation diverges; callers should treat that case as "no constraint"
        before calling (we clamp to ``P_MIN`` for numerical safety).
    """
    if packet_size <= 0:
        raise ValueError("packet_size must be positive")
    if rtt <= 0:
        raise ValueError("rtt must be positive")
    if t_rto <= 0:
        raise ValueError("t_rto must be positive")
    if p > 1.0:
        raise ValueError(f"loss event rate cannot exceed 1, got {p}")
    p = max(p, P_MIN)
    term_rtt = rtt * math.sqrt(2.0 * p / 3.0)
    term_rto = t_rto * (3.0 * math.sqrt(3.0 * p / 8.0)) * p * (1.0 + 32.0 * p * p)
    return packet_size / (term_rtt + term_rto)


def simple_response_rate(packet_size: int, rtt: float, p: float) -> float:
    """The deterministic response function ``T = s*sqrt(1.5)/(R*sqrt(p))``.

    Used by the appendix analysis (and by [MF97]).  Returns bytes/second.
    """
    if packet_size <= 0 or rtt <= 0:
        raise ValueError("packet_size and rtt must be positive")
    p = max(p, P_MIN)
    return packet_size * math.sqrt(1.5) / (rtt * math.sqrt(p))


def invert_response(
    packet_size: int,
    rtt: float,
    target_rate: float,
    t_rto: float,
    tolerance: float = 1e-12,
) -> float:
    """Find the loss event rate ``p`` at which Equation (1) yields
    ``target_rate`` bytes/second.

    The response function is strictly decreasing in ``p``, so bisection on
    ``log p`` converges unconditionally.  Used by the receiver to fabricate
    a synthetic loss interval after slow start terminates: the paper sets the
    post-slow-start rate to half the rate at loss and derives "the expected
    loss interval that would be required to produce this data rate"
    (section 3.4.1).

    Returns ``p`` clamped into [P_MIN, 1].
    """
    if target_rate <= 0:
        raise ValueError("target_rate must be positive")
    if tcp_response_rate(packet_size, rtt, P_MIN, t_rto) <= target_rate:
        return P_MIN
    if tcp_response_rate(packet_size, rtt, 1.0, t_rto) >= target_rate:
        return 1.0
    lo, hi = P_MIN, 1.0
    while hi - lo > tolerance * max(1.0, hi):
        mid = math.sqrt(lo * hi)  # geometric bisection: p spans many decades
        if tcp_response_rate(packet_size, rtt, mid, t_rto) > target_rate:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)


# tfrc-audit: twin-of repro.core.equations.tcp_response_rate
def tcp_response_rate_vec(
    packet_size: float,
    rtt: np.ndarray,
    p: np.ndarray,
    t_rto: np.ndarray,
) -> np.ndarray:
    """Element-wise :func:`tcp_response_rate` over vectors of cells.

    Evaluates, per element, exactly the scalar expression: only ``+ - * /``
    and ``sqrt`` appear, all of which are correctly rounded under IEEE-754,
    so each element is bit-identical to the scalar call with the same
    inputs (``np.sqrt`` and ``math.sqrt`` agree on every double).  Inputs
    are assumed pre-validated (positive sizes/times, ``p <= 1``); ``p`` is
    clamped to ``P_MIN`` exactly as the scalar form does.
    """
    p = np.maximum(p, P_MIN)
    term_rtt = rtt * np.sqrt(2.0 * p / 3.0)
    term_rto = t_rto * (3.0 * np.sqrt(3.0 * p / 8.0)) * p * (1.0 + 32.0 * p * p)
    return packet_size / (term_rtt + term_rto)


# tfrc-audit: twin-of repro.core.equations.invert_response [runtime] -- masked bisection loop; per-element (lo, hi) lockstep is fuzz-verified in tests/test_vector_kernel.py and tests/test_twin_congruence.py
def invert_response_vec(
    packet_size: float,
    rtt: np.ndarray,
    target_rate: np.ndarray,
    t_rto: np.ndarray,
    tolerance: float = 1e-12,
) -> np.ndarray:
    """Element-wise :func:`invert_response` over vectors of cells.

    Runs the same geometric bisection with converged/early-exit elements
    masked out of further updates; since each element's (lo, hi) sequence
    matches the scalar iteration exactly, results are bit-identical to
    per-element scalar calls.
    """
    rtt, target, t_rto = np.broadcast_arrays(
        np.asarray(rtt, dtype=np.float64),
        np.asarray(target_rate, dtype=np.float64),
        np.asarray(t_rto, dtype=np.float64),
    )
    if np.any(target <= 0):
        raise ValueError("target_rate must be positive")
    at_p_min = tcp_response_rate_vec(packet_size, rtt, np.float64(P_MIN), t_rto)
    at_one = tcp_response_rate_vec(packet_size, rtt, np.float64(1.0), t_rto)
    done_low = at_p_min <= target
    done_high = ~done_low & (at_one >= target)
    active = ~done_low & ~done_high
    lo = np.full(rtt.shape, P_MIN, dtype=np.float64)
    hi = np.ones(rtt.shape, dtype=np.float64)
    while True:
        running = active & (hi - lo > tolerance * np.maximum(1.0, hi))
        if not running.any():
            break
        mid = np.sqrt(lo * hi)  # geometric bisection: p spans many decades
        go_lo = tcp_response_rate_vec(packet_size, rtt, mid, t_rto) > target
        lo = np.where(running & go_lo, mid, lo)
        hi = np.where(running & ~go_lo, mid, hi)
    out = np.sqrt(lo * hi)
    return np.where(done_low, P_MIN, np.where(done_high, 1.0, out))


def analytic_rate_increase(average_interval: float, newest_weight: float) -> float:
    """Appendix A.1 closed form: maximum rate increase per RTT, in packets.

    With average loss interval ``A`` packets and normalized weight ``w`` on
    the newest interval, one loss-free RTT grows the allowed rate by::

        delta_T = 1.2 * ( sqrt(A + w*1.2*sqrt(A)) - sqrt(A) )

    ``w = 1/6`` without history discounting (bound ~0.12), up to ``w = 0.4``
    with maximum discounting (bound ~0.28).
    """
    if average_interval <= 0:
        raise ValueError("average_interval must be positive")
    if not 0 <= newest_weight <= 1:
        raise ValueError("newest_weight must be in [0, 1]")
    a = average_interval
    w = newest_weight
    return 1.2 * (math.sqrt(a + w * 1.2 * math.sqrt(a)) - math.sqrt(a))
