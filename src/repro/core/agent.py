"""TfrcFlow: one sender/receiver pair wired over a pair of network ports.

A *port* is anything with ``send(packet) -> bool`` and
``connect(receiver)`` -- :class:`repro.net.topology.FlowPort`,
:class:`repro.net.path.LossyPath`, a :class:`repro.net.path.Path`, or the
two directions of a :class:`repro.net.dummynet.DummynetPipe` (adapted).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.core.receiver import TfrcReceiver
from repro.core.sender import TfrcSender
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class Port(Protocol):
    """Minimal duck type both topology and path endpoints satisfy."""

    def send(self, packet: Packet) -> bool: ...

    def connect(self, receiver: Callable[[Packet], None]) -> None: ...


class TfrcFlow:
    """One TFRC unicast flow: sender on the forward port, receiver replies
    on the reverse port."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        forward_port: Port,
        reverse_port: Port,
        packet_size: int = 1000,
        tracer: Optional[Tracer] = None,
        on_data: Optional[Callable[[float, Packet], None]] = None,
        **sender_kwargs,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        receiver_kwargs = {}
        for key in (
            "ali_n",
            "history_discounting",
            "reorder_tolerance",
            "feedback_interval_rtts",
        ):
            if key in sender_kwargs:
                receiver_kwargs[key] = sender_kwargs.pop(key)
        # Both halves share the timer implementation choice.
        if "fast_timers" in sender_kwargs:
            receiver_kwargs["fast_timers"] = sender_kwargs["fast_timers"]
        # The ports' bool return (accepted?) is ignored by sender/receiver;
        # handing the bound method over directly skips a per-packet lambda.
        self.sender = TfrcSender(
            sim,
            flow_id,
            send_packet=forward_port.send,
            packet_size=packet_size,
            tracer=tracer,
            **sender_kwargs,
        )
        self.receiver = TfrcReceiver(
            sim,
            flow_id,
            send_feedback=reverse_port.send,
            packet_size=packet_size,
            on_data=on_data,
            **receiver_kwargs,
        )
        forward_port.connect(self.receiver.receive)
        reverse_port.connect(self.sender.on_feedback)

    def start(self, at: Optional[float] = None) -> None:
        """Start the sender now, or at absolute time ``at``."""
        if at is None:
            self.sender.start()
        else:
            self.sim.schedule(at, self.sender.start)

    def stop(self) -> None:
        self.sender.stop()
        self.receiver.stop()

    @property
    def loss_event_rate(self) -> float:
        return self.receiver.loss_event_rate()

    @property
    def rate(self) -> float:
        """Current allowed sending rate, bytes/second."""
        return self.sender.rate
