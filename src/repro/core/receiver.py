"""TFRC receiver: loss event rate estimation and feedback generation.

The receiver (paper section 3.3):

* detects loss events from sequence gaps, coalescing losses within one RTT
  (:mod:`~repro.core.loss_events`),
* maintains the Average Loss Interval history and reports
  ``p = 1 / average interval``,
* measures the rate at which data arrived over the last RTT (used by the
  sender's slow-start cap, section 3.4.1),
* sends one feedback packet per round-trip time, plus an expedited report
  whenever a *new* loss event is detected,
* seeds the loss history with a synthetic interval when the first loss ends
  slow start, derived by inverting the control equation at half the receive
  rate at that moment (section 3.4.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

from repro.core.equations import invert_response
from repro.core.loss_events import LossEvent, LossEventDetector
from repro.core.loss_intervals import AverageLossIntervals
from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator
from repro.sim.process import make_timer

FeedbackSender = Callable[[Packet], None]


@dataclass
class TfrcFeedback:
    """Payload of a TFRC feedback packet.

    Attributes:
        echo_ts: send timestamp of the most recent data packet received.
        echo_seq: its sequence number.
        delay: time the receiver held that packet before sending feedback
            (subtracted by the sender when measuring the RTT).
        p: the receiver's current loss event rate estimate.
        recv_rate: bytes/second received over the last measurement interval.
        expedited: True when triggered by a new loss event rather than the
            regular per-RTT timer.
    """

    echo_ts: float
    echo_seq: int
    delay: float
    p: float
    recv_rate: float
    expedited: bool = False


class TfrcReceiver:
    """Receiver half of the TFRC protocol."""

    FEEDBACK_SIZE = 40  # bytes

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        send_feedback: FeedbackSender,
        packet_size: int = 1000,
        ali_n: int = 8,
        history_discounting: bool = True,
        reorder_tolerance: int = 3,
        on_data: Optional[Callable[[float, Packet], None]] = None,
        feedback_interval_rtts: float = 1.0,
        fast_timers: bool = True,
    ) -> None:
        if feedback_interval_rtts <= 0:
            raise ValueError("feedback_interval_rtts must be positive")
        self.sim = sim
        self.flow_id = flow_id
        self._send_feedback = send_feedback
        self.packet_size = packet_size
        self.on_data = on_data
        #: report every this-many RTTs.  The paper's design goal (section 3)
        #: is at least once per RTT (1.0, the default); larger values are
        #: for the feedback-frequency ablation only.
        self.feedback_interval_rtts = feedback_interval_rtts
        self.intervals = AverageLossIntervals(
            n=ali_n, discounting=history_discounting
        )
        self.detector = LossEventDetector(
            rtt_fn=self._current_rtt,
            reorder_tolerance=reorder_tolerance,
            on_event=self._on_new_loss_event,
        )
        self._rtt_from_sender = 0.0
        self._last_packet: Optional[Packet] = None
        self._last_packet_recv_time = 0.0
        self.fast_timers = fast_timers
        self._feedback_timer = make_timer(sim, self._feedback_due, fast_timers)
        # Receive-rate window.  Fast path: arrivals are pruned incrementally
        # from the left and the byte total is a running (exact, integer)
        # sum, so the per-feedback cost is amortized O(1).  Legacy path
        # (PR-1 baseline): the window list is rebuilt and re-summed on every
        # query.  Totals are integer either way, so both paths report
        # bit-identical receive rates.
        self._arrivals: Deque[Tuple[float, int]] = deque()
        self._arrival_bytes = 0
        self._history_seeded = False
        self.feedback_sent = 0
        self.first_packet_seen = False

    # ------------------------------------------------------------- helpers

    def _current_rtt(self) -> float:
        return self._rtt_from_sender

    def _measurement_window(self) -> float:
        """Receive-rate window: one RTT, with a sane floor."""
        return max(self._rtt_from_sender, 0.05)

    def receive_rate(self) -> float:
        """Bytes/second received over the last measurement window."""
        window = self._measurement_window()
        cutoff = self.sim.now - window
        arrivals = self._arrivals
        if self.fast_timers:
            while arrivals and arrivals[0][0] < cutoff:
                self._arrival_bytes -= arrivals.popleft()[1]
            return self._arrival_bytes / window
        kept = deque((t, b) for t, b in arrivals if t >= cutoff)
        self._arrivals = kept
        self._arrival_bytes = sum(b for _, b in kept)
        return self._arrival_bytes / window

    def loss_event_rate(self) -> float:
        return self.intervals.loss_event_rate()

    # -------------------------------------------------------------- arrival

    def receive(self, packet: Packet) -> None:
        """Handle one arriving data packet."""
        if not packet.is_data:
            return
        info = packet.payload
        if info is not None and getattr(info, "rtt_estimate", None) is not None:
            self._rtt_from_sender = info.rtt_estimate
        if self.on_data is not None:
            self.on_data(self.sim.now, packet)
        self._arrivals.append((self.sim.now, packet.size))
        self._arrival_bytes += packet.size
        self._last_packet = packet
        self._last_packet_recv_time = self.sim.now

        previous_open = self.detector.open_interval_packets()
        if packet.ecn_marked:
            # ECN: a mark is a congestion signal without a sequence gap.
            self.detector.on_congestion_mark(packet.seq, self.sim.now)
        self.detector.on_arrival(packet.seq, self.sim.now)
        # Keep the ALI open-interval synchronized with the detector's view
        # (sequence-space accounting survives reordering and burst arrivals).
        current_open = self.detector.open_interval_packets()
        if current_open > previous_open and self.detector.events:
            self.intervals.on_packet(current_open - previous_open)
        elif not self.detector.events:
            self.intervals.on_packet(1.0)

        if not self.first_packet_seen:
            self.first_packet_seen = True
            self._send_report(expedited=False)
            self._schedule_feedback()

    def _on_new_loss_event(self, event: LossEvent) -> None:
        if not self._history_seeded:
            self._seed_history()
        self.intervals.on_loss_event(event.closed_interval)
        # Expedited feedback: tell the sender about new congestion promptly.
        self._send_report(expedited=True)
        self._schedule_feedback()

    def _seed_history(self) -> None:
        """First-ever loss: fabricate the slow-start loss interval.

        Half the current receive rate is assumed to be the correct rate
        (section 3.4.1); the control-equation inverse maps it to a loss event
        rate whose reciprocal seeds the interval history.
        """
        self._history_seeded = True
        rate = self.receive_rate()
        rtt = max(self._rtt_from_sender, 1e-3)
        if rate <= 0:
            return
        p = invert_response(
            packet_size=self.packet_size,
            rtt=rtt,
            target_rate=rate / 2.0,
            t_rto=4.0 * rtt,
        )
        if p > 0:
            self.intervals.seed(max(1.0, 1.0 / p))

    # ------------------------------------------------------------- feedback

    def _schedule_feedback(self) -> None:
        self._feedback_timer.start(
            self.feedback_interval_rtts * self._measurement_window()
        )

    def _feedback_due(self) -> None:
        # Report only if we received anything since the last report was due
        # (the paper: feedback at least once per RTT *if* packets arrived).
        # The epsilon absorbs float round-off when an arrival lands exactly
        # one window ago.
        window = self.feedback_interval_rtts * self._measurement_window()
        cutoff = self.sim.now - window - 1e-9
        if self._arrivals and self._arrivals[-1][0] >= cutoff:
            self._send_report(expedited=False)
        self._schedule_feedback()

    def _send_report(self, expedited: bool) -> None:
        if self._last_packet is None:
            return
        info = self._last_packet.payload
        echo_ts = getattr(info, "ts", self._last_packet.sent_at)
        feedback = TfrcFeedback(
            echo_ts=echo_ts,
            echo_seq=self._last_packet.seq,
            delay=self.sim.now - self._last_packet_recv_time,
            p=self.loss_event_rate(),
            recv_rate=self.receive_rate(),
            expedited=expedited,
        )
        packet = Packet(
            flow_id=self.flow_id,
            seq=self._last_packet.seq,
            size=self.FEEDBACK_SIZE,
            ptype=PacketType.FEEDBACK,
            sent_at=self.sim.now,
            payload=feedback,
        )
        self.feedback_sent += 1
        self._send_feedback(packet)

    def stop(self) -> None:
        """Cancel timers (end of simulation)."""
        self._feedback_timer.cancel()
