"""TFRC sender: equation-driven rate control.

Responsibilities (paper sections 3.2 and 3.4):

* measure the round-trip time from feedback echoes and smooth it with an
  EWMA (weight ``rtt_ewma_weight``); derive ``t_RTO = 4 * R``;
* on every feedback packet, evaluate the control equation and set the
  allowed rate ("decrease to T" -- the option the paper adopts);
* rate-based slow start while no loss has been reported: double the rate
  each feedback interval, capped at twice the receive rate (section 3.4.1);
* pace packets with the interpacket-spacing adjustment
  ``t = (s / T) * sqrt(R0) / M`` where ``R0`` is the newest RTT sample and
  ``M`` an EWMA of ``sqrt(RTT)`` (section 3.4) -- this is the mechanism that
  damps the oscillations of Figure 3 into Figure 4, and it is togglable so
  both figures can be reproduced;
* halve the rate when no feedback arrives for a conservative number of RTTs
  (no-feedback timer), with a floor of one packet per 64 seconds;
* optionally apply the quiescent-sender extension (paper section 7 lists it
  as planned work): when the application is idle the allowed rate is not
  banked.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

from repro.core.equations import tcp_response_rate
from repro.core.receiver import TfrcFeedback
from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator
from repro.sim.process import make_timer
from repro.sim.trace import Tracer

PacketSender = Callable[[Packet], None]

#: Maximum back-off interval: never send slower than one packet per 64 s.
T_MBI = 64.0


class TfrcDataInfo:
    """Payload piggybacked on TFRC data packets."""

    __slots__ = ("ts", "rtt_estimate")

    def __init__(self, ts: float, rtt_estimate: float) -> None:
        self.ts = ts
        self.rtt_estimate = rtt_estimate


class TfrcSender:
    """Sender half of the TFRC protocol."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        send_packet: PacketSender,
        packet_size: int = 1000,
        rtt_ewma_weight: float = 0.1,
        interpacket_adjustment: bool = True,
        cap_to_receive_rate: bool = True,
        initial_rtt: float = 0.5,
        tracer: Optional[Tracer] = None,
        quiescence_aware: bool = False,
        ecn: bool = False,
        burst_size: int = 1,
        fast_timers: bool = True,
        max_rate_history: Optional[int] = None,
    ) -> None:
        if not 0 < rtt_ewma_weight <= 1:
            raise ValueError("rtt_ewma_weight must be in (0, 1]")
        self.sim = sim
        self.flow_id = flow_id
        self._send_packet = send_packet
        self.packet_size = packet_size
        self.rtt_ewma_weight = rtt_ewma_weight
        self.interpacket_adjustment = interpacket_adjustment
        self.cap_to_receive_rate = cap_to_receive_rate
        self.tracer = tracer
        self.quiescence_aware = quiescence_aware
        #: mark data packets ECN-capable (needs an ECN-enabled RED queue).
        self.ecn = ecn
        if burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        #: send `burst_size` packets every `burst_size` interpacket
        #: intervals.  The paper notes that "two packets every two
        #: inter-packet intervals" lets small-window TCP compete more fairly
        #: (section 4.1), though it is not recommended as the default.
        self.burst_size = burst_size

        self.srtt: Optional[float] = None
        self._latest_rtt_sample: Optional[float] = None
        self._sqrt_rtt_ewma: Optional[float] = None  # M in section 3.4
        self.initial_rtt = initial_rtt

        #: allowed sending rate in bytes/second
        self.rate = packet_size / initial_rtt
        self.in_slow_start = True
        self.last_feedback: Optional[TfrcFeedback] = None

        self._seq = 0
        #: use the generation-counter fast timers (PR-2 endpoint fast path);
        #: ``False`` pins the legacy Event-allocating timers for baselines.
        self.fast_timers = fast_timers
        self._send_timer = make_timer(sim, self._send_next, fast_timers)
        self._no_feedback_timer = make_timer(
            sim, self._no_feedback_expired, fast_timers
        )
        self._started = False
        self._stopped = False
        self._app_active = True

        # Statistics.
        self.packets_sent = 0
        self.feedback_received = 0
        #: (time, bytes_per_second) on every allowed-rate change.  When
        #: ``max_rate_history`` is set, exceeding it halves the history by
        #: decimation (every other interior sample is dropped, endpoints
        #: kept), bounding memory on long runs the way the loss detector's
        #: retraction window bounds its bookkeeping.
        self.rate_history: List[Tuple[float, float]] = []
        if max_rate_history is not None and max_rate_history < 4:
            raise ValueError("max_rate_history must be >= 4 (or None)")
        self.max_rate_history = max_rate_history

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        """Begin transmitting (idempotent)."""
        if self._started:
            return
        self._started = True
        self._record_rate()
        self._send_next()
        self._arm_no_feedback_timer()

    def stop(self) -> None:
        self._stopped = True
        self._send_timer.cancel()
        self._no_feedback_timer.cancel()

    def set_app_active(self, active: bool) -> None:
        """Quiescent-sender support: pause/resume the application source.

        With ``quiescence_aware`` enabled, resuming from an idle period
        restarts from the (decayed) allowed rate rather than banking the
        pre-idle rate, the rate-based analogue of TCP congestion-window
        validation the paper cites as planned work.
        """
        was_active = self._app_active
        self._app_active = active
        if active and not was_active and self._started and not self._stopped:
            if self.quiescence_aware:
                # Restart at no more than two packets per RTT.
                restart = 2.0 * self.packet_size / self._rtt_or_default()
                self.rate = min(self.rate, max(restart, self._min_rate()))
                self._record_rate()
            self._send_timer.start(self._interpacket_interval())

    @property
    def rate_pkts_per_rtt(self) -> float:
        """Allowed rate expressed in packets per RTT (analysis convenience)."""
        return self.rate * self._rtt_or_default() / self.packet_size

    # ------------------------------------------------------------- feedback

    def on_feedback(self, packet: Packet) -> None:
        """Process one feedback packet from the receiver."""
        if self._stopped or packet.ptype is not PacketType.FEEDBACK:
            return
        feedback = packet.payload
        if not isinstance(feedback, TfrcFeedback):
            raise TypeError(f"feedback for {self.flow_id} lacks TfrcFeedback payload")
        self.feedback_received += 1
        self.last_feedback = feedback
        self._sample_rtt(feedback)
        self._update_rate(feedback)
        self._arm_no_feedback_timer()

    def _sample_rtt(self, feedback: TfrcFeedback) -> None:
        rtt = self.sim.now - feedback.echo_ts - feedback.delay
        if rtt <= 0:
            return
        self._latest_rtt_sample = rtt
        if self.srtt is None:
            self.srtt = rtt
            self._sqrt_rtt_ewma = math.sqrt(rtt)
        else:
            self.srtt += self.rtt_ewma_weight * (rtt - self.srtt)
            assert self._sqrt_rtt_ewma is not None
            self._sqrt_rtt_ewma += self.rtt_ewma_weight * (
                math.sqrt(rtt) - self._sqrt_rtt_ewma
            )

    def _rtt_or_default(self) -> float:
        return self.srtt if self.srtt is not None else self.initial_rtt

    def _min_rate(self) -> float:
        return self.packet_size / T_MBI

    def _update_rate(self, feedback: TfrcFeedback) -> None:
        rtt = self._rtt_or_default()
        if feedback.p <= 0:
            # No loss yet: rate-based slow start, bounded by the receive rate
            # so overshoot is no worse than TCP's (section 3.4.1).
            doubled = 2.0 * self.rate
            cap = 2.0 * feedback.recv_rate if feedback.recv_rate > 0 else doubled
            self.rate = max(self._min_rate(), min(doubled, cap))
            self.in_slow_start = True
        else:
            self.in_slow_start = False
            t_eq = tcp_response_rate(
                packet_size=self.packet_size,
                rtt=rtt,
                p=feedback.p,
                t_rto=4.0 * rtt,
            )
            allowed = t_eq
            if self.cap_to_receive_rate and feedback.recv_rate > 0:
                allowed = min(allowed, 2.0 * feedback.recv_rate)
            # "Decrease to T" / increase to T: the sender tracks the control
            # equation directly; damping lives in the loss measurement.
            self.rate = max(self._min_rate(), allowed)
        self._record_rate()

    # -------------------------------------------------------------- pacing

    def _interpacket_interval(self) -> float:
        base = self.packet_size / self.rate
        if (
            self.interpacket_adjustment
            and self._latest_rtt_sample is not None
            and self._sqrt_rtt_ewma is not None
            and self._sqrt_rtt_ewma > 0
        ):
            # t = s/T * sqrt(R0)/M: instantaneous-delay sensitivity with
            # less than proportional gain (section 3.4).
            base *= math.sqrt(self._latest_rtt_sample) / self._sqrt_rtt_ewma
        return base

    def _send_next(self) -> None:
        if self._stopped or not self._app_active:
            return
        for _ in range(self.burst_size):
            packet = Packet(
                flow_id=self.flow_id,
                seq=self._seq,
                size=self.packet_size,
                ptype=PacketType.DATA,
                sent_at=self.sim.now,
                payload=TfrcDataInfo(
                    ts=self.sim.now, rtt_estimate=self._rtt_or_default()
                ),
                ecn_capable=self.ecn,
            )
            self._seq += 1
            self.packets_sent += 1
            if self.tracer is not None:
                self.tracer.record(
                    self.sim.now, "send", self.flow_id, packet.size,
                    meta={"seq": packet.seq},
                )
            self._send_packet(packet)
        self._send_timer.start(self.burst_size * self._interpacket_interval())

    # ---------------------------------------------------- no-feedback timer

    def _no_feedback_interval(self) -> float:
        rtt = self._rtt_or_default()
        return max(4.0 * rtt, 2.0 * self.packet_size / self.rate)

    def _arm_no_feedback_timer(self) -> None:
        self._no_feedback_timer.start(self._no_feedback_interval())

    def _no_feedback_expired(self) -> None:
        if self._stopped:
            return
        # Halve the sending rate; repeated expiries walk it down to the
        # one-packet-per-64s floor, i.e. the sender ultimately goes quiet.
        self.rate = max(self._min_rate(), self.rate / 2.0)
        self.in_slow_start = False
        self._record_rate()
        self._arm_no_feedback_timer()

    def _record_rate(self) -> None:
        history = self.rate_history
        history.append((self.sim.now, self.rate))
        if self.max_rate_history is not None and len(history) > self.max_rate_history:
            # Progressive decimation: each overflow halves the resolution of
            # the retained trajectory while keeping the first and latest
            # samples exact.
            del history[1:-1:2]
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "rate", self.flow_id, self.rate)
