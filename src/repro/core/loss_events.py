"""Receiver-side loss-event detection.

The receiver detects losses from gaps in the data sequence space and groups
losses that begin within one round-trip time of each other into a single
**loss event** (paper section 3.5.1: "we explicitly ignore losses within a
round-trip time that follow an initial loss").

Detection is declared after a small number of subsequent packets arrive
(``reorder_tolerance``), mirroring TCP's three-dupACK heuristic, so mild
reordering does not masquerade as loss.  The loss *time* of a hole is
interpolated between the arrival times of the packets surrounding it, which
is what decides whether the hole joins the previous loss event or starts a
new one.

Deep reordering can outlast the tolerance: a packet may be declared lost
and still arrive later.  Such late arrivals **retract** the declaration --
the loss count is decremented and, once a loss event has no surviving
constituent losses, the event itself is withdrawn -- so reordered-but-
delivered packets never leave a phantom loss event behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class LossEvent:
    """One loss event: its start time, the seq of its first lost packet,
    and the length (in packets) of the interval it closed."""

    time: float
    first_lost_seq: int
    closed_interval: int


class LossEventDetector:
    """Turns a stream of (seq, arrival time) into loss events and intervals.

    The caller supplies ``rtt_fn`` returning the current round-trip-time
    estimate (piggybacked from the sender on data packets in our TFRC
    implementation); holes whose interpolated loss times fall within one RTT
    of the active event's start are merged into it.

    ``on_event`` (optional) is invoked for every *new* loss event with the
    :class:`LossEvent` record -- TFRC uses this for expedited feedback.
    """

    def __init__(
        self,
        rtt_fn: Callable[[], float],
        reorder_tolerance: int = 3,
        on_event: Optional[Callable[[LossEvent], None]] = None,
    ) -> None:
        if reorder_tolerance < 0:
            raise ValueError("reorder_tolerance cannot be negative")
        self.rtt_fn = rtt_fn
        self.reorder_tolerance = reorder_tolerance
        self.on_event = on_event
        self._next_expected = 0
        self._pending_holes: Dict[int, float] = {}  # seq -> interpolated time
        self._holes_followers: Dict[int, int] = {}  # seq -> packets seen since
        self._last_arrival_time: Optional[float] = None
        self._last_arrival_seq: Optional[int] = None
        self._event_start_time: Optional[float] = None
        self._event_start_seq: Optional[int] = None
        self._active_event: Optional[LossEvent] = None
        self._declared: Dict[int, LossEvent] = {}  # matured seq -> its event
        self._event_members: Dict[int, int] = {}  # id(event) -> live losses
        self.events: List[LossEvent] = []
        self.packets_received = 0
        self.packets_lost = 0

    # ------------------------------------------------------------ geometry

    @property
    def last_event_start_seq(self) -> Optional[int]:
        return self._event_start_seq

    def open_interval_packets(self) -> int:
        """s0: packets spanning from just after the current event's start to
        the highest sequence number received."""
        if self._event_start_seq is None or self._last_arrival_seq is None:
            return self.packets_received
        return max(0, self._last_arrival_seq - self._event_start_seq)

    # ------------------------------------------------------------- arrival

    def on_arrival(self, seq: int, now: float) -> List[LossEvent]:
        """Process one data arrival; returns any newly declared loss events."""
        new_events: List[LossEvent] = []
        self.packets_received += 1
        if seq >= self._next_expected:
            self._register_holes(seq, now)
            self._next_expected = seq + 1
        else:
            # Late (reordered or duplicate) packet fills its hole if pending,
            # or retracts its loss declaration if the hole already matured.
            self._pending_holes.pop(seq, None)
            self._holes_followers.pop(seq, None)
            self._retract(seq)
        self._last_arrival_time = now
        self._last_arrival_seq = max(self._last_arrival_seq or 0, seq)
        new_events.extend(self._mature_holes())
        return new_events

    def _register_holes(self, seq: int, now: float) -> None:
        gap = range(self._next_expected, seq)
        if not gap:
            for pending in list(self._holes_followers):
                self._holes_followers[pending] += 1
            return
        prev_time = self._last_arrival_time if self._last_arrival_time is not None else now
        prev_seq = self._last_arrival_seq if self._last_arrival_seq is not None else seq - len(gap) - 1
        span = max(1, seq - prev_seq)
        for missing in gap:
            # Interpolate the loss time between the surrounding arrivals.
            frac = (missing - prev_seq) / span
            loss_time = prev_time + frac * (now - prev_time)
            self._pending_holes[missing] = loss_time
            self._holes_followers[missing] = 1  # this arrival follows it
        for pending in self._holes_followers:
            if pending not in gap:
                self._holes_followers[pending] += 1

    def _mature_holes(self) -> List[LossEvent]:
        """Declare holes lost once enough later packets have arrived."""
        matured = [
            seq
            for seq, followers in self._holes_followers.items()
            if followers >= max(1, self.reorder_tolerance)
        ]
        new_events: List[LossEvent] = []
        for seq in sorted(matured):
            loss_time = self._pending_holes.pop(seq)
            self._holes_followers.pop(seq)
            self.packets_lost += 1
            event = self._classify_loss(seq, loss_time)
            if event is not None:
                new_events.append(event)
            # Whether it started the event or merged into the active one,
            # the declared loss is a retractable constituent of that event.
            assert self._active_event is not None
            self._declared[seq] = self._active_event
            self._add_member(self._active_event)
        self._expire_retractables()
        return new_events

    def _add_member(self, event: LossEvent) -> None:
        """Count one more constituent of ``event``, resurrecting the event
        into :attr:`events` if every earlier constituent had been retracted
        (the withdrawn event stays the geometry anchor, see :meth:`_retract`,
        so a genuine loss can still merge into it).  Resurrection does not
        re-fire ``on_event``: consumers were already notified when the event
        was first declared."""
        key = id(event)
        count = self._event_members.get(key, 0)
        self._event_members[key] = count + 1
        if count == 0:
            # Freshly created events are always the list tail (appended by
            # _classify_loss one frame earlier), so only a genuine
            # resurrection pays for the identity scan.
            if not self.events or self.events[-1] is not event:
                if not any(e is event for e in self.events):
                    self.events.append(event)

    #: Retraction horizon, in packets: a declared loss this far behind the
    #: highest delivered sequence number is considered permanent, so its
    #: bookkeeping can be dropped (bounds ``_declared`` on long runs).
    RETRACTION_WINDOW = 4096

    def _expire_retractables(self) -> None:
        if len(self._declared) <= 64:
            return
        horizon = self._next_expected - self.RETRACTION_WINDOW
        expired = [s for s in self._declared if s < horizon]
        for s in expired:
            del self._declared[s]

    def _retract(self, seq: int) -> None:
        """A declared-lost packet arrived after all: withdraw the loss.

        Decrements the loss count; when the owning event has no other
        surviving constituent losses the event itself is removed from
        :attr:`events`.  The event-start geometry (``_event_start_time`` /
        ``_event_start_seq``) is deliberately **not** rolled back: the
        consumer's loss-interval history already closed an interval at this
        event (via ``on_event``), so the open interval must keep counting
        from the withdrawn event's start -- rolling back would double-count
        those packets into both the closed and the reopened interval.
        """
        event = self._declared.pop(seq, None)
        if event is None:
            return
        self.packets_lost -= 1
        key = id(event)
        remaining = self._event_members.get(key, 1) - 1
        if remaining > 0:
            self._event_members[key] = remaining
            return
        self._event_members.pop(key, None)
        for index, candidate in enumerate(self.events):
            if candidate is event:
                del self.events[index]
                break

    def on_congestion_mark(self, seq: int, now: float) -> Optional[LossEvent]:
        """Treat an ECN-marked arrival as a congestion signal.

        Marks participate in the same event grouping as losses: a mark
        within one RTT of the active event start merges into it; otherwise
        it starts a new loss event (with the usual sequence-distance
        interval), exactly as TFRC-over-ECN requires congestion marks to be
        treated like drops.  Marks are permanent constituents: the marked
        packet *did* arrive, so there is nothing to retract later.
        """
        event = self._classify_loss(seq, now)
        if self._active_event is not None:
            self._add_member(self._active_event)
        return event

    def _classify_loss(self, seq: int, loss_time: float) -> Optional[LossEvent]:
        """Merge into the active loss event or start a new one."""
        rtt = max(0.0, self.rtt_fn())
        if (
            self._event_start_time is not None
            and loss_time < self._event_start_time + rtt
        ):
            return None  # same loss event; ignored per section 3.5.1
        closed = 0
        if self._event_start_seq is not None:
            closed = max(1, seq - self._event_start_seq)
        else:
            closed = max(1, seq)
        self._event_start_time = loss_time
        self._event_start_seq = seq
        event = LossEvent(time=loss_time, first_lost_seq=seq, closed_interval=closed)
        self._active_event = event
        self._event_members[id(event)] = 0
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)
        return event
