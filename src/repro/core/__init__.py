"""TFRC: the paper's primary contribution.

* :mod:`~repro.core.equations` -- the TCP response function (paper Eq. 1,
  from Padhye et al. 1998), the simple deterministic response function used
  by the appendix analysis, and numeric inversion (rate -> loss rate) used to
  seed the loss history after slow start.
* :mod:`~repro.core.loss_intervals` -- the Average Loss Interval estimator
  with history discounting (section 3.3), plus the two rejected alternatives
  (EWMA Loss Interval, Dynamic History Window) for comparison experiments.
* :mod:`~repro.core.loss_events` -- receiver-side loss-event detection with
  round-trip-time coalescing (section 3.5.1).
* :mod:`~repro.core.receiver` -- feedback generation: loss event rate p,
  receive rate, RTT echo (section 3.3).
* :mod:`~repro.core.sender` -- rate adaptation driven by the control
  equation: RTT smoothing, slow start with the receive-rate cap, the
  no-feedback timer, and the sqrt-RTT interpacket-spacing adjustment
  (sections 3.2, 3.4).
* :mod:`~repro.core.agent` -- :class:`TfrcFlow`, wiring one sender/receiver
  pair over a pair of network ports.
"""

from repro.core.equations import (
    DELTA_T_SIMPLE_BOUND,
    analytic_rate_increase,
    invert_response,
    simple_response_rate,
    tcp_response_rate,
)
from repro.core.loss_intervals import (
    ALI_DEFAULT_WEIGHTS,
    AverageLossIntervals,
    DynamicHistoryWindow,
    EwmaLossIntervals,
)
from repro.core.loss_events import LossEventDetector, LossEvent
from repro.core.receiver import TfrcFeedback, TfrcReceiver
from repro.core.sender import TfrcDataInfo, TfrcSender
from repro.core.agent import TfrcFlow

__all__ = [
    "tcp_response_rate",
    "simple_response_rate",
    "invert_response",
    "analytic_rate_increase",
    "DELTA_T_SIMPLE_BOUND",
    "AverageLossIntervals",
    "EwmaLossIntervals",
    "DynamicHistoryWindow",
    "ALI_DEFAULT_WEIGHTS",
    "LossEventDetector",
    "LossEvent",
    "TfrcReceiver",
    "TfrcFeedback",
    "TfrcSender",
    "TfrcDataInfo",
    "TfrcFlow",
]
