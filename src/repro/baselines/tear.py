"""TEAR: TCP Emulation At the Receivers (Ozdemir & Rhee, 1999).

The third related-work protocol of the paper's section 5: "the receiver
emulates the congestion window modifications of a TCP sender, but then
makes a translation from a window-based to a rate-based congestion control
mechanism.  The receiver maintains an exponentially weighted moving average
of the congestion window, and divides this by the estimated round-trip time
to obtain a TCP-friendly sending rate."

(The paper could not run comparative studies against TEAR for lack of
information at the time; this implementation follows the published sketch
so such comparisons are possible here.)

Receiver-side emulation:

* arrivals advance an emulated congestion window: +1 per "window" of
  arrivals in slow start, +1/cwnd per arrival in congestion avoidance;
* a detected loss (sequence gap) halves the emulated window once per
  emulated RTT-window of packets (mirroring one-reduction-per-window TCP);
* the reported rate is ``EWMA(cwnd) * packet_size / rtt``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer

PacketSender = Callable[[Packet], None]


class TearReport:
    """Receiver -> sender rate report."""

    __slots__ = ("rate", "echo_ts", "echo_seq")

    def __init__(self, rate: float, echo_ts: float, echo_seq: int) -> None:
        self.rate = rate
        self.echo_ts = echo_ts
        self.echo_seq = echo_seq


class TearReceiver:
    """Emulates a TCP sender's window at the receiver."""

    REPORT_SIZE = 40

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        send_report: PacketSender,
        packet_size: int = 1000,
        cwnd_ewma_weight: float = 0.1,
        initial_rtt: float = 0.3,
        report_interval: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self._send_report = send_report
        self.packet_size = packet_size
        self.cwnd_ewma_weight = cwnd_ewma_weight
        self._rtt = initial_rtt
        self._fixed_report_interval = report_interval
        self.cwnd = 2.0
        self.ssthresh = 64.0
        self.smoothed_cwnd = self.cwnd
        self._next_expected = 0
        self._window_packets = 0  # arrivals since the last emulated round
        self._reduced_this_window = False
        self._last_packet: Optional[Packet] = None
        self._report_timer = Timer(sim, self._report_due)
        self.packets_received = 0
        self.losses_detected = 0
        self.reports_sent = 0
        self._started = False

    # -------------------------------------------------------------- inbound

    def receive(self, packet: Packet) -> None:
        if not packet.is_data:
            return
        self.packets_received += 1
        info = packet.payload
        if info is not None and getattr(info, "rtt_estimate", None):
            self._rtt = info.rtt_estimate
        self._last_packet = packet
        if packet.seq > self._next_expected:
            # Sequence gap: the missing packets were lost.
            self.losses_detected += packet.seq - self._next_expected
            self._on_emulated_loss()
        if packet.seq >= self._next_expected:
            self._next_expected = packet.seq + 1
        self._on_emulated_arrival()
        if not self._started:
            self._started = True
            self._schedule_report()

    # ----------------------------------------------------- window emulation

    def _on_emulated_arrival(self) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0  # slow start: +1 per ACKed packet
        else:
            self.cwnd += 1.0 / self.cwnd
        self._window_packets += 1
        if self._window_packets >= self.cwnd:
            # One emulated round completed: re-arm the once-per-window
            # reduction and fold the window into the EWMA.
            self._window_packets = 0
            self._reduced_this_window = False
            self.smoothed_cwnd += self.cwnd_ewma_weight * (
                self.cwnd - self.smoothed_cwnd
            )

    def _on_emulated_loss(self) -> None:
        if self._reduced_this_window:
            return  # at most one halving per window of data (like Sack TCP)
        self._reduced_this_window = True
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = self.ssthresh
        self.smoothed_cwnd += self.cwnd_ewma_weight * (
            self.cwnd - self.smoothed_cwnd
        )

    # -------------------------------------------------------------- reports

    def rate(self) -> float:
        """The translated rate: smoothed window / RTT, in bytes/second."""
        return self.smoothed_cwnd * self.packet_size / max(self._rtt, 1e-3)

    def _report_interval(self) -> float:
        if self._fixed_report_interval is not None:
            return self._fixed_report_interval
        return max(self._rtt, 0.05)

    def _schedule_report(self) -> None:
        self._report_timer.start(self._report_interval())

    def _report_due(self) -> None:
        if self._last_packet is not None:
            info = self._last_packet.payload
            echo_ts = getattr(info, "ts", self._last_packet.sent_at)
            report = TearReport(
                rate=self.rate(), echo_ts=echo_ts, echo_seq=self._last_packet.seq
            )
            packet = Packet(
                flow_id=self.flow_id,
                seq=self._last_packet.seq,
                size=self.REPORT_SIZE,
                ptype=PacketType.FEEDBACK,
                sent_at=self.sim.now,
                payload=report,
            )
            self.reports_sent += 1
            self._send_report(packet)
        self._schedule_report()

    def stop(self) -> None:
        self._report_timer.cancel()


class TearSender:
    """Paces packets at the receiver-computed rate."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        send_packet: PacketSender,
        packet_size: int = 1000,
        initial_rate_bps: float = 32_000.0,
        rtt_ewma_weight: float = 0.1,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self._send_packet = send_packet
        self.packet_size = packet_size
        self.rate = initial_rate_bps / 8.0  # bytes/second
        self.rtt_ewma_weight = rtt_ewma_weight
        self.srtt: Optional[float] = None
        self._seq = 0
        self._send_timer = Timer(sim, self._send_next)
        self._started = False
        self._stopped = False
        self.packets_sent = 0
        self.reports_received = 0
        self.rate_history = []

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.rate_history.append((self.sim.now, self.rate))
        self._send_next()

    def stop(self) -> None:
        self._stopped = True
        self._send_timer.cancel()

    def on_report(self, packet: Packet) -> None:
        if self._stopped or packet.ptype is not PacketType.FEEDBACK:
            return
        report = packet.payload
        if not isinstance(report, TearReport):
            return
        self.reports_received += 1
        rtt = self.sim.now - report.echo_ts
        if rtt > 0:
            if self.srtt is None:
                self.srtt = rtt
            else:
                self.srtt += self.rtt_ewma_weight * (rtt - self.srtt)
        self.rate = max(self.packet_size / 64.0, report.rate)
        self.rate_history.append((self.sim.now, self.rate))

    def _send_next(self) -> None:
        if self._stopped:
            return
        from repro.core.sender import TfrcDataInfo  # same piggyback format

        packet = Packet(
            flow_id=self.flow_id,
            seq=self._seq,
            size=self.packet_size,
            ptype=PacketType.DATA,
            sent_at=self.sim.now,
            payload=TfrcDataInfo(
                ts=self.sim.now,
                rtt_estimate=self.srtt if self.srtt is not None else 0.3,
            ),
        )
        self._seq += 1
        self.packets_sent += 1
        self._send_packet(packet)
        self._send_timer.start(self.packet_size / self.rate)


class TearFlow:
    """Convenience wiring of a TEAR sender/receiver over two ports."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        forward_port,
        reverse_port,
        on_data=None,
        **sender_kwargs,
    ) -> None:
        self.sender = TearSender(
            sim, flow_id, send_packet=lambda p: forward_port.send(p) and None,
            **sender_kwargs,
        )
        self.receiver = TearReceiver(
            sim, flow_id, send_report=lambda p: reverse_port.send(p) and None
        )
        if on_data is not None:
            original = self.receiver.receive

            def receive_and_monitor(packet, _orig=original):
                if packet.is_data:
                    on_data(sim.now, packet)
                _orig(packet)

            self.receiver.receive = receive_and_monitor
        forward_port.connect(self.receiver.receive)
        reverse_port.connect(self.sender.on_report)

    def start(self, at=None) -> None:
        if at is None:
            self.sender.start()
        else:
            self.sender.sim.schedule(at, self.sender.start)

    def stop(self) -> None:
        self.sender.stop()
        self.receiver.stop()
