"""Baseline rate-based congestion-control protocols from the paper's
related-work section (section 5), used for comparative experiments:

* :mod:`~repro.baselines.tfrcp` -- the model-based TCP-Friendly Rate Control
  Protocol of Padhye et al. (NOSSDAV'99): per-packet ACKs, loss rate computed
  over *fixed time intervals*, rate updated only at interval boundaries.
  The paper's criticism -- poor transient response at small timescales --
  is directly observable with the analysis tooling.
* :mod:`~repro.baselines.rap` -- the Rate Adaptation Protocol of Rejaie,
  Handley, Estrin (INFOCOM'99): AIMD applied to a sending rate rather than a
  window, with per-ACK loss detection.  Pure AIMD protocols do not model
  retransmission timeouts, so they coexist less well with TCP when timeouts
  dominate.
* :mod:`~repro.baselines.tear` -- TCP Emulation At the Receivers (Ozdemir &
  Rhee): the receiver emulates TCP's window and reports
  ``EWMA(cwnd)/RTT`` as the sending rate.
"""

from repro.baselines.tfrcp import TfrcpFlow, TfrcpReceiver, TfrcpSender
from repro.baselines.rap import RapFlow, RapReceiver, RapSender
from repro.baselines.tear import TearFlow, TearReceiver, TearSender

__all__ = [
    "TfrcpSender",
    "TfrcpReceiver",
    "TfrcpFlow",
    "RapSender",
    "RapReceiver",
    "RapFlow",
    "TearSender",
    "TearReceiver",
    "TearFlow",
]
