"""RAP: the Rate Adaptation Protocol (AIMD on a rate, not a window).

Reproduction of the related-work baseline (Rejaie, Handley, Estrin,
INFOCOM'99) the paper discusses in section 5.  The receiver ACKs every
packet; the sender detects losses from ACK gaps and timeouts, and adapts a
*rate*:

* additive increase once per RTT when no loss was detected:
  ``rate += packet_size / srtt`` (one packet per RTT, like TCP's congestion
  avoidance);
* multiplicative decrease on each loss event: ``rate *= 0.5``.

RAP does not model retransmission-timeout effects, which is why (per the
paper) it is expected to coexist with TCP less well than TFRC in
timeout-dominated regimes.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer
from repro.sim.trace import Tracer

PacketSender = Callable[[Packet], None]


class RapAck:
    __slots__ = ("echo_ts", "echo_seq")

    def __init__(self, echo_ts: float, echo_seq: int) -> None:
        self.echo_ts = echo_ts
        self.echo_seq = echo_seq


class RapReceiver:
    """Acknowledges every data packet."""

    ACK_SIZE = 40

    def __init__(self, sim: Simulator, flow_id: str, send_ack: PacketSender) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self._send_ack = send_ack
        self.packets_received = 0

    def receive(self, packet: Packet) -> None:
        if not packet.is_data:
            return
        self.packets_received += 1
        self._send_ack(
            Packet(
                flow_id=self.flow_id,
                seq=packet.seq,
                size=self.ACK_SIZE,
                ptype=PacketType.ACK,
                sent_at=self.sim.now,
                payload=RapAck(echo_ts=packet.sent_at, echo_seq=packet.seq),
            )
        )


class RapSender:
    """AIMD rate-based sender with ACK-gap loss detection."""

    LOSS_GAP = 3  # ACKs with higher seq before a hole is declared lost

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        send_packet: PacketSender,
        packet_size: int = 1000,
        initial_rate_bps: float = 16_000.0,
        rtt_ewma_weight: float = 0.125,
        decrease_factor: float = 0.5,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not 0 < decrease_factor < 1:
            raise ValueError("decrease_factor must be in (0, 1)")
        self.sim = sim
        self.flow_id = flow_id
        self._send_packet = send_packet
        self.packet_size = packet_size
        self.rate = initial_rate_bps / 8.0  # bytes/second
        self.rtt_ewma_weight = rtt_ewma_weight
        self.decrease_factor = decrease_factor
        self.srtt: Optional[float] = None
        self.tracer = tracer
        self._seq = 0
        self._highest_acked = -1
        self._acked: Set[int] = set()
        self._declared_lost: Set[int] = set()
        self._loss_in_this_rtt = False
        self._send_timer = Timer(sim, self._send_next)
        self._ipg_process = PeriodicProcess(sim, self._per_rtt_update, self._rtt_interval)
        self._started = False
        self._stopped = False
        self.packets_sent = 0
        self.acks_received = 0
        self.loss_events = 0
        self.rate_history = []

    def _rtt_interval(self) -> float:
        return self.srtt if self.srtt is not None else 0.2

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.rate_history.append((self.sim.now, self.rate))
        self._send_next()
        self._ipg_process.start(initial_delay=self._rtt_interval())

    def stop(self) -> None:
        self._stopped = True
        self._send_timer.cancel()
        self._ipg_process.stop()

    def on_ack(self, packet: Packet) -> None:
        if self._stopped or not packet.is_ack:
            return
        info = packet.payload
        if not isinstance(info, RapAck):
            return
        self.acks_received += 1
        rtt = self.sim.now - info.echo_ts
        if rtt > 0:
            if self.srtt is None:
                self.srtt = rtt
            else:
                self.srtt += self.rtt_ewma_weight * (rtt - self.srtt)
        seq = info.echo_seq
        self._acked.add(seq)
        if seq > self._highest_acked:
            self._highest_acked = seq
        self._detect_losses()

    def _detect_losses(self) -> None:
        """Declare holes LOSS_GAP below the highest ACK as lost."""
        horizon = self._highest_acked - self.LOSS_GAP
        new_loss = False
        for seq in range(max(0, horizon - 50), max(0, horizon)):
            if (
                seq not in self._acked
                and seq not in self._declared_lost
                and seq < self._seq
            ):
                self._declared_lost.add(seq)
                new_loss = True
        if new_loss and not self._loss_in_this_rtt:
            self._loss_in_this_rtt = True
            self.loss_events += 1
            self.rate = max(
                self.packet_size / 64.0, self.rate * self.decrease_factor
            )
            self._record_rate()

    def _per_rtt_update(self) -> None:
        """Once per RTT: additive increase if the RTT was loss-free."""
        if self._stopped:
            return
        if not self._loss_in_this_rtt and self.srtt:
            self.rate += self.packet_size / self.srtt
            self._record_rate()
        self._loss_in_this_rtt = False

    def _record_rate(self) -> None:
        self.rate_history.append((self.sim.now, self.rate))
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "rate", self.flow_id, self.rate)

    def _send_next(self) -> None:
        if self._stopped:
            return
        packet = Packet(
            flow_id=self.flow_id,
            seq=self._seq,
            size=self.packet_size,
            ptype=PacketType.DATA,
            sent_at=self.sim.now,
        )
        self._seq += 1
        self.packets_sent += 1
        self._send_packet(packet)
        self._send_timer.start(self.packet_size / self.rate)


class RapFlow:
    """Convenience wiring of a RAP sender/receiver over two ports."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        forward_port,
        reverse_port,
        on_data=None,
        **sender_kwargs,
    ) -> None:
        self.sender = RapSender(
            sim, flow_id, send_packet=lambda p: forward_port.send(p) and None,
            **sender_kwargs,
        )
        self.receiver = RapReceiver(
            sim, flow_id, send_ack=lambda p: reverse_port.send(p) and None
        )
        if on_data is not None:
            original = self.receiver.receive

            def receive_and_monitor(packet, _orig=original):
                if packet.is_data:
                    on_data(sim.now, packet)
                _orig(packet)

            self.receiver.receive = receive_and_monitor
        forward_port.connect(self.receiver.receive)
        reverse_port.connect(self.sender.on_ack)

    def start(self, at=None) -> None:
        if at is None:
            self.sender.start()
        else:
            self.sender.sim.schedule(at, self.sender.start)

    def stop(self) -> None:
        self.sender.stop()
