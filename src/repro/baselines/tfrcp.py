"""TFRCP: equation-based rate control with fixed-interval updates.

A reproduction of the protocol the paper compares against in section 5
(Padhye, Kurose, Towsley, Koodli, NOSSDAV'99): the receiver acknowledges
every packet; at fixed time intervals ``update_interval`` the sender computes
the loss fraction observed during the previous interval and evaluates the
same TCP response function to reset its rate.  Between updates the rate is
constant, whatever the network does -- the source of the poor transient
behaviour the paper reports.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.core.equations import tcp_response_rate
from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer
from repro.sim.trace import Tracer

PacketSender = Callable[[Packet], None]


class TfrcpAck:
    """Per-packet acknowledgment payload."""

    __slots__ = ("echo_ts", "echo_seq")

    def __init__(self, echo_ts: float, echo_seq: int) -> None:
        self.echo_ts = echo_ts
        self.echo_seq = echo_seq


class TfrcpReceiver:
    """Acknowledges every data packet (the ACK stream carries loss info
    implicitly: the sender notices un-ACKed sequence numbers)."""

    ACK_SIZE = 40

    def __init__(self, sim: Simulator, flow_id: str, send_ack: PacketSender) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self._send_ack = send_ack
        self.packets_received = 0

    def receive(self, packet: Packet) -> None:
        if not packet.is_data:
            return
        self.packets_received += 1
        ack = Packet(
            flow_id=self.flow_id,
            seq=packet.seq,
            size=self.ACK_SIZE,
            ptype=PacketType.ACK,
            sent_at=self.sim.now,
            payload=TfrcpAck(echo_ts=packet.sent_at, echo_seq=packet.seq),
        )
        self._send_ack(ack)


class TfrcpSender:
    """Fixed-interval, equation-based rate controller."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        send_packet: PacketSender,
        packet_size: int = 1000,
        update_interval: float = 5.0,
        initial_rate_bps: float = 16_000.0,
        rtt_ewma_weight: float = 0.1,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if update_interval <= 0:
            raise ValueError("update_interval must be positive")
        self.sim = sim
        self.flow_id = flow_id
        self._send_packet = send_packet
        self.packet_size = packet_size
        self.update_interval = update_interval
        self.rate = initial_rate_bps / 8.0  # bytes/second
        self.rtt_ewma_weight = rtt_ewma_weight
        self.srtt: Optional[float] = None
        self.tracer = tracer
        self._seq = 0
        self._sent_this_interval: Set[int] = set()
        self._acked_this_interval: Set[int] = set()
        self._send_timer = Timer(sim, self._send_next)
        self._update_process = PeriodicProcess(
            sim, self._update_rate, lambda: self.update_interval
        )
        self._started = False
        self._stopped = False
        self.packets_sent = 0
        self.acks_received = 0
        self.rate_history = []

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.rate_history.append((self.sim.now, self.rate))
        self._send_next()
        self._update_process.start(initial_delay=self.update_interval)

    def stop(self) -> None:
        self._stopped = True
        self._send_timer.cancel()
        self._update_process.stop()

    def on_ack(self, packet: Packet) -> None:
        if self._stopped or not packet.is_ack:
            return
        info = packet.payload
        if not isinstance(info, TfrcpAck):
            return
        self.acks_received += 1
        self._acked_this_interval.add(info.echo_seq)
        rtt = self.sim.now - info.echo_ts
        if rtt > 0:
            if self.srtt is None:
                self.srtt = rtt
            else:
                self.srtt += self.rtt_ewma_weight * (rtt - self.srtt)

    def _send_next(self) -> None:
        if self._stopped:
            return
        packet = Packet(
            flow_id=self.flow_id,
            seq=self._seq,
            size=self.packet_size,
            ptype=PacketType.DATA,
            sent_at=self.sim.now,
        )
        self._sent_this_interval.add(self._seq)
        self._seq += 1
        self.packets_sent += 1
        self._send_packet(packet)
        self._send_timer.start(self.packet_size / self.rate)

    def _update_rate(self) -> None:
        """Interval boundary: measure last interval's loss fraction, reset rate.

        ACKs still in flight make very recent packets look lost; exclude
        packets sent within the last RTT from the accounting.
        """
        if self._stopped:
            return
        rtt = self.srtt if self.srtt is not None else 0.2
        horizon = self.sim.now - rtt
        considered = {
            seq for seq in self._sent_this_interval
        }
        # Drop from consideration the packets too recent to have been ACKed.
        recent_cutoff = max(0, self._seq - int(self.rate * rtt / self.packet_size) - 1)
        considered = {seq for seq in considered if seq < recent_cutoff}
        if considered:
            lost = len(considered - self._acked_this_interval)
            loss_fraction = lost / len(considered)
        else:
            loss_fraction = 0.0
        if loss_fraction > 0:
            self.rate = tcp_response_rate(
                packet_size=self.packet_size,
                rtt=rtt,
                p=loss_fraction,
                t_rto=4.0 * rtt,
            )
        else:
            # No loss observed: probe upward, doubling like slow start.
            self.rate *= 2.0
        self.rate = max(self.rate, self.packet_size / 64.0)
        self.rate_history.append((self.sim.now, self.rate))
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "rate", self.flow_id, self.rate)
        self._sent_this_interval.clear()
        self._acked_this_interval.clear()


class TfrcpFlow:
    """Convenience wiring of a TFRCP sender/receiver over two ports."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        forward_port,
        reverse_port,
        on_data=None,
        **sender_kwargs,
    ) -> None:
        self.sender = TfrcpSender(
            sim, flow_id, send_packet=lambda p: forward_port.send(p) and None,
            **sender_kwargs,
        )
        self.receiver = TfrcpReceiver(
            sim, flow_id, send_ack=lambda p: reverse_port.send(p) and None
        )
        if on_data is not None:
            original = self.receiver.receive

            def receive_and_monitor(packet, _orig=original):
                if packet.is_data:
                    on_data(sim.now, packet)
                _orig(packet)

            self.receiver.receive = receive_and_monitor
        forward_port.connect(self.receiver.receive)
        reverse_port.connect(self.sender.on_ack)

    def start(self, at=None) -> None:
        if at is None:
            self.sender.start()
        else:
            self.sender.sim.schedule(at, self.sender.start)

    def stop(self) -> None:
        self.sender.stop()
