"""Performance-trajectory harness (the ``tfrc-bench`` CLI).

Runs a fixed scenario suite on both the endpoint fast path and the PR-1
legacy path, records events/sec, wall time, and peak RSS per cell, and
checks regressions against the committed PR-numbered baselines
(``BENCH_PR<N>.json``, one per PR -- appended, never overwritten; ``--check
latest`` gates against the newest).
"""

from repro.perf.bench import (
    BENCH_SCENARIOS,
    check_against_baseline,
    find_baselines,
    latest_baseline,
    main,
    next_baseline_path,
    run_cell,
    run_suite,
)

__all__ = [
    "BENCH_SCENARIOS",
    "find_baselines",
    "latest_baseline",
    "next_baseline_path",
    "run_cell",
    "run_suite",
    "check_against_baseline",
    "main",
]
