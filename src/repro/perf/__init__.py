"""Performance-trajectory harness (the ``tfrc-bench`` CLI).

Runs a fixed scenario suite on both the endpoint fast path and the PR-1
legacy path, records events/sec, wall time, and peak RSS per cell, and
checks regressions against a committed baseline (``BENCH_PR2.json``).
"""

from repro.perf.bench import (
    BENCH_SCENARIOS,
    check_against_baseline,
    main,
    run_cell,
    run_suite,
)

__all__ = [
    "BENCH_SCENARIOS",
    "run_cell",
    "run_suite",
    "check_against_baseline",
    "main",
]
