"""``tfrc-bench``: the repo's persistent performance trajectory.

The paper's key results are statistical -- long runs over many seeds and
grid cells -- so *endpoint events per second* directly bounds how many
scenarios the sweep runner can cover.  This harness pins that number down
and keeps it honest across PRs:

* a fixed scenario suite (endpoint-heavy dumbbell steady state, a Figure-6
  style many-flow grid cell, ON/OFF churn, RED+ECN, and a SACK-heavy RED
  recovery workload), each run on the **fast path** (endpoint + network
  layer) and on the fully **legacy path** (``Timer`` + record-object
  tracing + dict-of-list monitors + per-packet access scheduling + the
  per-event link/RED/SACK network layer), which the flags preserve
  bit-for-bit;
* since PR 6 a ``vector_sweep`` suite entry: the same
  ``tfrc_equation_grid`` sweep run through the ``serial`` and ``vector``
  executors, with ``speedup = serial_wall / vector_wall`` (gated like any
  other suite entry -- both sides run the byte-identical workload, which
  the bench asserts cell-for-cell);
* per cell: engine-reported events/sec, wall seconds, cells/sec (the
  sweep-facing rate: how many such grid cells one process finishes per
  second), and peak RSS;
* a ``speedup`` per scenario defined as ``legacy_wall / fast_wall``.  The
  two paths produce byte-identical traces (asserted in
  ``tests/test_endpoint_fastpath.py``), i.e. the simulated workload is the
  same, so the wall-time ratio *is* the normalized events/sec ratio --
  deliberately not inflated by the fast path's higher raw event count
  (superseded timer entries pop as counted no-ops).

Since PR 4 the legacy cells also pin the *network-layer* legacy paths
(per-packet link events, unfused RED math, per-ACK SACK re-sorts), so the
speedup measures the full fast stack against the full PR-1 baseline; the
PR-3 file predates that and its absolute speedups are not directly
comparable (the CI gate always compares against the newest committed
file).

The committed trajectory is one ``BENCH_PR<N>.json`` per PR (appended, never
overwritten, so the trajectory stays comparable across PRs): ``tfrc-bench
--suite all --output next`` writes the next PR-numbered file, and
``--check latest`` gates against the newest committed one.  CI re-runs the
smoke suite and fails when a scenario's speedup regresses by more than
``--tolerance`` (default 25%).  Speedups -- not absolute events/sec -- are
compared, because absolute rates are machine-dependent while the
fast/legacy ratio on identical workloads is not.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import re
import sys
import time
from typing import Any, Callable, Dict, List, Optional

JsonDict = Dict[str, Any]

#: scale -> per-scenario durations/sizes; "smoke" must stay CI-friendly.
SCALES = ("smoke", "full")


# --------------------------------------------------------------- scenarios


def _dumbbell_steady(scale: str, fast: bool):
    """Endpoint-heavy steady state: 8+8 flows, full tracing + monitoring.

    This is the acceptance scenario: every data packet pays the send-timer
    re-arm, trace records on send/recv/queue/drop, and both-link monitor
    callbacks, so endpoint bookkeeping dominates the profile.
    """
    from repro.net.monitor import LinkMonitor
    from repro.scenarios.builders import build_mixed_dumbbell
    from repro.sim.trace import Tracer

    duration = 8.0 if scale == "smoke" else 40.0
    tracer = Tracer(columnar=fast)
    result = build_mixed_dumbbell(
        n_tfrc=8, n_tcp=8, bandwidth_bps=15e6, queue_type="red", seed=0,
        endpoint_fastpath=fast, net_fastpath=fast, tracer=tracer,
        sample_queue=True,
    )
    LinkMonitor(
        result.sim, result.dumbbell.reverse_link, tracer=tracer,
        sample_queue=True, columnar=fast,
    )

    def finalize() -> JsonDict:
        return {
            "packets_forwarded": result.dumbbell.forward_link.packets_forwarded
            + result.dumbbell.reverse_link.packets_forwarded,
            "trace_records": len(tracer),
        }

    return result.sim, duration, finalize


def _fig06_grid_cell(scale: str, fast: bool):
    """A Figure-6 style many-flow fairness grid cell (16+16 @ 32 Mb/s)."""
    from repro.scenarios.builders import build_mixed_dumbbell

    duration = 6.0 if scale == "smoke" else 25.0
    result = build_mixed_dumbbell(
        n_tfrc=16, n_tcp=16, bandwidth_bps=32e6, queue_type="red", seed=0,
        endpoint_fastpath=fast, net_fastpath=fast,
    )

    def finalize() -> JsonDict:
        return {
            "packets_forwarded": result.dumbbell.forward_link.packets_forwarded,
        }

    return result.sim, duration, finalize


def _onoff_churn(scale: str, fast: bool):
    """Figure-11 style churn: monitored TCP+TFRC among ON/OFF sources.

    Mirrors ``fig11_onoff.run_one`` but keeps the build outside the timed
    region so the measurement covers the event loop only.
    """
    from repro.net import Dumbbell, DumbbellConfig
    from repro.net.monitor import FlowMonitor, LinkMonitor
    from repro.core import TfrcFlow
    from repro.sim import Simulator
    from repro.sim.rng import RngRegistry
    from repro.tcp.flow import TcpFlow
    from repro.traffic.onoff import OnOffSource

    n_sources = 30 if scale == "smoke" else 80
    duration = 8.0 if scale == "smoke" else 30.0
    registry = RngRegistry(0)
    sim = Simulator()
    dumbbell = Dumbbell(
        sim, DumbbellConfig(bandwidth_bps=15e6, queue_type="red"),
        queue_rng=registry.stream("red"), fast_scheduling=fast,
        net_fastpath=fast,
    )
    flow_monitor = FlowMonitor(columnar=fast)
    LinkMonitor(sim, dumbbell.forward_link, sample_queue=False, columnar=fast)
    topo_rng = registry.stream("topology")
    fwd, rev = dumbbell.attach_flow("tcp-mon", topo_rng.uniform(0.08, 0.12))
    TcpFlow(
        sim, "tcp-mon", fwd, rev, variant="sack",
        on_data=flow_monitor.on_packet, fast_timers=fast,
        incremental_sack=fast,
    ).start(at=0.1)
    fwd, rev = dumbbell.attach_flow("tfrc-mon", topo_rng.uniform(0.08, 0.12))
    TfrcFlow(
        sim, "tfrc-mon", fwd, rev, on_data=flow_monitor.on_packet,
        fast_timers=fast,
    ).start(at=0.2)
    onoff_rng = registry.stream("onoff")
    for i in range(n_sources):
        flow_id = f"onoff-{i}"
        port, _ = dumbbell.attach_flow(flow_id, topo_rng.uniform(0.08, 0.12))
        OnOffSource(sim, flow_id, port, rng=onoff_rng).start(
            at=float(topo_rng.uniform(0.0, 5.0))
        )

    def finalize() -> JsonDict:
        return {
            "packets_forwarded": dumbbell.forward_link.packets_forwarded,
        }

    return sim, duration, finalize


def _red_ecn(scale: str, fast: bool):
    """RED bottleneck with ECN marking and ECN-capable TFRC flows."""
    from repro.scenarios.builders import build_mixed_dumbbell
    from repro.sim.trace import Tracer

    duration = 6.0 if scale == "smoke" else 25.0
    tracer = Tracer(columnar=fast)
    result = build_mixed_dumbbell(
        n_tfrc=8, n_tcp=8, bandwidth_bps=15e6, queue_type="red", seed=0,
        endpoint_fastpath=fast, net_fastpath=fast, tracer=tracer,
        sample_queue=True, ecn=True,
    )

    def finalize() -> JsonDict:
        return {
            "packets_forwarded": result.dumbbell.forward_link.packets_forwarded,
            "ecn_marks": result.dumbbell.forward_link.queue.ecn_marks,
            "trace_records": len(tracer),
        }

    return result.sim, duration, finalize


def _red_sack_recovery(scale: str, fast: bool):
    """SACK-heavy RED recovery: all-TCP flows on an under-buffered RED
    bottleneck.

    The tight buffer keeps a large share of flows in loss recovery, so the
    ACK stream is dominated by dupACKs carrying SACK blocks over persistent
    multi-hole reordering -- the ``TCPSink`` workload the incremental
    interval structure (PR 4) targets, on top of per-packet RED math at the
    bottleneck.
    """
    from repro.scenarios.builders import build_mixed_dumbbell

    duration = 6.0 if scale == "smoke" else 25.0
    result = build_mixed_dumbbell(
        n_tfrc=0, n_tcp=24, bandwidth_bps=15e6, queue_type="red",
        buffer_packets=25, seed=0, endpoint_fastpath=fast, net_fastpath=fast,
    )

    def finalize() -> JsonDict:
        queue = result.dumbbell.forward_link.queue
        return {
            "packets_forwarded": result.dumbbell.forward_link.packets_forwarded,
            "early_drops": queue.early_drops,
            "forced_drops": queue.forced_drops,
            "retransmissions": sum(
                flow.sender.retransmissions for flow in result.tcp_flows
            ),
        }

    return result.sim, duration, finalize


#: name -> builder(scale, fast) -> (sim, duration, finalize)
BENCH_SCENARIOS: Dict[str, Callable] = {
    "dumbbell_steady": _dumbbell_steady,
    "fig06_grid_cell": _fig06_grid_cell,
    "onoff_churn": _onoff_churn,
    "red_ecn": _red_ecn,
    "red_sack_recovery": _red_sack_recovery,
}

#: the serial-vs-vector executor suite entry (PR 6); not a fast/legacy
#: scenario pair, but it lives in ``suites[scale]`` with a ``speedup`` key
#: so ``check_against_baseline`` gates it like every other entry.
VECTOR_SWEEP = "vector_sweep"

#: scale -> (rtt axis, loss-rate axis, seeds per config, cell duration).
#: The full grid must stay >= 2048 cells: the lockstep kernel's dispatch
#: overhead is fixed per step, so its advantage over serial grows with lane
#: count, and the PR-6 acceptance number (>= 3x) needs the large grid.
VECTOR_SWEEP_GRIDS = {
    "smoke": ((0.08, 0.12), (0.02, 0.06), 256, 12.0),
    "full": ((0.08, 0.12), (0.02, 0.03, 0.04, 0.06), 256, 45.0),
}


# ------------------------------------------------------------- measurement


def _peak_rss_kb() -> Optional[int]:
    """Lifetime peak RSS of this process in KiB (None if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    if sys.platform == "darwin":  # pragma: no cover
        rss //= 1024
    return int(rss)


def run_cell(
    scenario: str, scale: str, fast: bool, repeats: int = 3
) -> JsonDict:
    """Run one (scenario, path) cell ``repeats`` times; keep the best wall.

    Every repeat is an identical fresh build + run (same seeds), so best-of
    filters scheduler noise without changing the workload.
    """
    builder = BENCH_SCENARIOS[scenario]
    best: Optional[JsonDict] = None
    for _ in range(repeats):
        gc.collect()
        sim, duration, finalize = builder(scale, fast)
        started = time.perf_counter()
        sim.run(until=duration)
        wall = time.perf_counter() - started
        if best is None or wall < best["wall_seconds"]:
            best = {
                "wall_seconds": wall,
                "events": sim.events_processed,
                "events_per_sec": sim.events_processed / wall,
                # One builder invocation is one sweep-grid cell, so this is
                # the sweep-facing throughput axis (PR 6); events/sec above
                # is kept unchanged for --check compatibility with the
                # BENCH_PR2..PR5 trajectory files.
                "cells_per_sec": 1.0 / wall,
                "sim_seconds": duration,
                **finalize(),
            }
    assert best is not None
    best["peak_rss_kb"] = _peak_rss_kb()
    best["repeats"] = repeats
    return best


def _run_cell_isolated(
    scenario: str, scale: str, fast: bool, repeats: int
) -> JsonDict:
    """Run one cell in a fresh child process for a clean per-cell peak RSS."""
    import multiprocessing as mp

    ctx = mp.get_context()
    with ctx.Pool(processes=1) as pool:
        return pool.apply(run_cell, (scenario, scale, fast, repeats))


def run_vector_sweep_bench(
    scale: str = "smoke", repeats: int = 3, verbose: bool = False
) -> JsonDict:
    """Time a ``tfrc_equation_grid`` sweep on the serial vs vector executor.

    Both executors run the identical spec grid (same seeds, no cache) and
    the bench asserts the per-cell result dicts are equal -- the lockstep
    kernel is bit-identical to the scalar one, so the wall-time ratio is a
    pure cells/sec ratio on the same workload, gate-stable like the
    fast/legacy speedups.  Executors are interleaved within each repeat so
    box-wide slowdowns hit both sides; best wall per executor is kept.
    """
    from repro.scenarios import ScenarioSpec, SweepRunner

    rtts, rates, seeds, duration = VECTOR_SWEEP_GRIDS[scale]
    base = ScenarioSpec(
        "tfrc_equation_grid",
        topology={"bandwidth_bps": 1.5e6, "packet_size": 1000},
        queue={"type": "red", "buffer_packets": 25},
        duration=duration,
    )
    grid = {
        "topology.rtt": list(rtts),
        "loss.rate": list(rates),
        "seed": list(range(seeds)),
    }
    n_cells = len(rtts) * len(rates) * seeds
    walls = {"serial": float("inf"), "vector": float("inf")}
    reference: Optional[List[JsonDict]] = None
    for _ in range(repeats):
        for name in ("serial", "vector"):
            if verbose:
                print(
                    f"[tfrc-bench] {scale}/{VECTOR_SWEEP}/{name} "
                    f"({n_cells} cells) ...",
                    file=sys.stderr, flush=True,
                )
            gc.collect()
            started = time.perf_counter()
            sweep = SweepRunner(base, grid, executor=name).run()
            wall = time.perf_counter() - started
            assert len(sweep.cells) == n_cells
            results = [cell.result for cell in sweep.cells]
            if reference is None:
                reference = results
            elif results != reference:  # pragma: no cover - identity guard
                raise AssertionError(
                    f"executor {name!r} diverged from the serial reference "
                    f"on the {scale} vector-sweep grid"
                )
            walls[name] = min(walls[name], wall)
    out: JsonDict = {
        "cells": n_cells,
        "sim_seconds": duration,
        "serial": {
            "wall_seconds": walls["serial"],
            "cells_per_sec": n_cells / walls["serial"],
        },
        "vector": {
            "wall_seconds": walls["vector"],
            "cells_per_sec": n_cells / walls["vector"],
        },
        "speedup": walls["serial"] / walls["vector"],
    }
    if verbose:
        print(
            f"[tfrc-bench] {scale}/{VECTOR_SWEEP}: serial "
            f"{out['serial']['cells_per_sec']:,.0f} cells/s, vector "
            f"{out['vector']['cells_per_sec']:,.0f} cells/s, "
            f"speedup {out['speedup']:.2f}x",
            file=sys.stderr, flush=True,
        )
    return out


def run_suite(
    scale: str = "smoke",
    scenarios: Optional[List[str]] = None,
    repeats: int = 3,
    isolate: bool = False,
    verbose: bool = False,
) -> JsonDict:
    """Run the suite at one scale; returns ``{scenario: cell results}``.

    Each scenario block holds ``fast`` and ``legacy`` cells plus their
    ``speedup`` (legacy wall / fast wall -- the normalized events/sec
    ratio, since both paths execute a byte-identical workload).  The
    ``vector_sweep`` entry instead holds ``serial`` and ``vector`` executor
    timings with ``speedup = serial_wall / vector_wall``.
    """
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}")
    names = (
        scenarios
        if scenarios is not None
        else list(BENCH_SCENARIOS) + [VECTOR_SWEEP]
    )
    unknown = set(names) - set(BENCH_SCENARIOS) - {VECTOR_SWEEP}
    if unknown:
        raise ValueError(f"unknown scenarios: {sorted(unknown)}")
    runner = _run_cell_isolated if isolate else run_cell
    out: JsonDict = {}
    for name in names:
        if name == VECTOR_SWEEP:
            out[name] = run_vector_sweep_bench(
                scale=scale, repeats=repeats, verbose=verbose
            )
            continue
        cells: JsonDict = {}
        for fast in (True, False):
            label = "fast" if fast else "legacy"
            if verbose:
                print(
                    f"[tfrc-bench] {scale}/{name}/{label} ...",
                    file=sys.stderr, flush=True,
                )
            cells[label] = runner(name, scale, fast, repeats)
            # ru_maxrss is a process-lifetime high-water mark: only
            # isolated cells measure their own footprint; in-process cells
            # report the max over everything run so far.
            cells[label]["rss_scope"] = "cell" if isolate else "process"
        cells["speedup"] = (
            cells["legacy"]["wall_seconds"] / cells["fast"]["wall_seconds"]
        )
        if verbose:
            print(
                f"[tfrc-bench] {scale}/{name}: "
                f"fast {cells['fast']['events_per_sec']:,.0f} ev/s, "
                f"legacy {cells['legacy']['events_per_sec']:,.0f} ev/s, "
                f"speedup {cells['speedup']:.2f}x",
                file=sys.stderr, flush=True,
            )
        out[name] = cells
    return out


def run_executor_bench(
    scale: str = "smoke",
    workers: int = 2,
    verbose: bool = False,
) -> JsonDict:
    """Measure sweep-executor overhead: serial vs pool vs file queue.

    Runs the same fixed ``mixed_dumbbell`` seed sweep through every
    executor backend (the queue executor with ``workers`` locally spawned
    ``tfrc-sweep-worker`` processes, so the number includes worker spawn,
    file-lease coordination, and cache-mediated result delivery).  Reported
    per backend: wall seconds and cells/sec, plus the queue executor's
    per-cell overhead over the process pool -- the price of multi-host
    coordination when run purely locally.  Results are *not* part of the
    regression gate (wall times here are dominated by worker startup, which
    is machine-dependent and not a fast-vs-legacy ratio).
    """
    import shutil
    import tempfile

    from repro.scenarios import ScenarioSpec, SweepRunner

    cells = 4 if scale == "smoke" else 8
    duration = 2.0 if scale == "smoke" else 6.0
    base = ScenarioSpec(
        "mixed_dumbbell",
        topology={"bandwidth_bps": 1.5e6},
        flows={"n_tfrc": 1, "n_tcp": 1},
        queue={"type": "red"},
        duration=duration,
    )
    grid = {"seed": list(range(cells))}
    out: JsonDict = {"cells": cells, "sim_seconds": duration, "workers": workers}
    reference = None
    for name in ("serial", "pool", "queue"):
        if verbose:
            print(
                f"[tfrc-bench] executors/{scale}/{name} ...",
                file=sys.stderr, flush=True,
            )
        scratch = tempfile.mkdtemp(prefix="tfrc-exec-bench-")
        try:
            kwargs: JsonDict = {"executor": name}
            if name == "queue":
                kwargs["queue_dir"] = os.path.join(scratch, "queue")
                kwargs["cache_dir"] = os.path.join(scratch, "cache")
                kwargs["parallel"] = workers
            elif name == "pool":
                kwargs["parallel"] = workers
            started = time.perf_counter()
            sweep = SweepRunner(base, grid, **kwargs).run()
            wall = time.perf_counter() - started
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        assert len(sweep.cells) == cells
        results = [cell.result for cell in sweep.cells]
        if reference is None:
            reference = results
        elif results != reference:  # pragma: no cover - determinism guard
            raise AssertionError(
                f"executor {name!r} produced different results"
            )
        out[name] = {
            "wall_seconds": wall,
            "cells_per_sec": cells / wall,
        }
    out["queue_overhead_vs_pool_seconds_per_cell"] = (
        out["queue"]["wall_seconds"] - out["pool"]["wall_seconds"]
    ) / cells
    if verbose:
        print(
            f"[tfrc-bench] executors/{scale}: serial "
            f"{out['serial']['wall_seconds']:.2f}s, pool "
            f"{out['pool']['wall_seconds']:.2f}s, queue "
            f"{out['queue']['wall_seconds']:.2f}s "
            f"({out['queue_overhead_vs_pool_seconds_per_cell'] * 1e3:.0f} "
            f"ms/cell queue overhead vs pool)",
            file=sys.stderr, flush=True,
        )
    return out


def build_report(
    suites: Dict[str, JsonDict],
    repeats: int,
    isolate: bool,
    executors: Optional[Dict[str, JsonDict]] = None,
) -> JsonDict:
    report = {
        "schema": "tfrc-bench/v1",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "isolate": isolate,
        "suites": suites,
    }
    if executors:
        report["executors"] = executors
    return report


# ------------------------------------------------- PR-numbered trajectory

#: the committed per-PR trajectory files: BENCH_PR<N>.json in the repo root.
BASELINE_PATTERN = re.compile(r"^BENCH_PR(\d+)\.json$")


def find_baselines(root: str = ".") -> List[str]:
    """Committed ``BENCH_PR<N>.json`` file names in ``root``, by PR number."""
    numbered = []
    try:
        names = os.listdir(root)
    except OSError:
        return []
    for name in names:
        match = BASELINE_PATTERN.match(name)
        if match:
            numbered.append((int(match.group(1)), name))
    return [name for _, name in sorted(numbered)]


def latest_baseline(root: str = ".") -> Optional[str]:
    """Path of the newest committed trajectory file, or None."""
    names = find_baselines(root)
    return os.path.join(root, names[-1]) if names else None


def next_baseline_path(root: str = ".") -> str:
    """Path for the *next* PR's trajectory file (append, never overwrite)."""
    names = find_baselines(root)
    if not names:
        return os.path.join(root, "BENCH_PR1.json")
    match = BASELINE_PATTERN.match(names[-1])
    assert match is not None
    return os.path.join(root, f"BENCH_PR{int(match.group(1)) + 1}.json")


# ---------------------------------------------------------- regression gate


def check_against_baseline(
    report: JsonDict, baseline: JsonDict, tolerance: float = 0.25
) -> List[str]:
    """Compare per-scenario speedups against a committed baseline.

    Returns a list of human-readable failures (empty = pass).  Only the
    fast/legacy speedup is gated: it is a same-machine, same-workload ratio,
    so it transfers across runner hardware where absolute events/sec do not.
    Scenarios or suites missing from the baseline are skipped.
    """
    failures: List[str] = []
    compared = 0
    for scale, scenarios in report.get("suites", {}).items():
        base_scenarios = baseline.get("suites", {}).get(scale)
        if base_scenarios is None:
            continue
        for name, cells in scenarios.items():
            base = base_scenarios.get(name)
            if base is None or "speedup" not in base:
                continue
            compared += 1
            floor = base["speedup"] * (1.0 - tolerance)
            if cells["speedup"] < floor:
                failures.append(
                    f"{scale}/{name}: speedup {cells['speedup']:.2f}x fell "
                    f"below {floor:.2f}x (baseline {base['speedup']:.2f}x "
                    f"- {tolerance:.0%} tolerance)"
                )
    if compared == 0:
        # A gate that compared nothing must not report a pass.
        failures.append(
            "no scenario overlaps between the report and the baseline; "
            "the regression gate compared zero cells"
        )
    return failures


# ------------------------------------------------------------------- CLI


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tfrc-bench",
        description="Run the TFRC perf-trajectory suite (fast vs legacy "
        "endpoint path) and write/check a benchmark JSON.",
    )
    parser.add_argument(
        "--suite", choices=list(SCALES) + ["all"], default="smoke",
        help="scenario scale to run (default: smoke)",
    )
    parser.add_argument(
        "--scenario", action="append", metavar="NAME",
        help=f"restrict to specific scenarios (choices: "
        f"{', '.join(BENCH_SCENARIOS)}, {VECTOR_SWEEP}); repeatable",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="repeats per cell, best wall kept (default: 3)",
    )
    parser.add_argument(
        "--isolate", dest="isolate", action="store_true", default=True,
        help="run each cell in a fresh child process so peak RSS is "
        "per-cell (default)",
    )
    parser.add_argument(
        "--no-isolate", dest="isolate", action="store_false",
        help="run cells in-process (peak RSS becomes a process-lifetime "
        "high-water mark)",
    )
    parser.add_argument(
        "--executors", action="store_true",
        help="also benchmark the sweep executors (serial vs pool vs file "
        "queue with local workers) and report the queue executor's "
        "per-cell coordination overhead; not part of the regression gate",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the benchmark report JSON here; the literal 'next' "
        "resolves to the next PR-numbered trajectory file "
        "(BENCH_PR<N+1>.json, never overwriting a committed one)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare speedups against a committed baseline JSON; the "
        "literal 'latest' resolves to the newest BENCH_PR<N>.json; exit 1 "
        "on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRAC",
        help="allowed relative speedup regression for --check "
        "(default: 0.25)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")
    if args.output == "next":
        args.output = next_baseline_path()
    if args.check == "latest":
        args.check = latest_baseline()
        if args.check is None:
            parser.error("--check latest: no committed BENCH_PR<N>.json found")

    from repro.scenarios import faults

    if os.environ.get(faults.ENV_VAR) or faults.active() is not None:
        # A chaos fault plan injects delays, stalls, and torn writes --
        # numbers measured under one are meaningless and must never land
        # in (or be checked against) a trajectory baseline.
        parser.error(
            f"a fault-injection plan is active ({faults.ENV_VAR} is set); "
            f"refusing to benchmark under chaos testing"
        )

    scales = list(SCALES) if args.suite == "all" else [args.suite]
    suites: Dict[str, JsonDict] = {}
    for scale in scales:
        suites[scale] = run_suite(
            scale=scale,
            scenarios=args.scenario,
            repeats=args.repeats,
            isolate=args.isolate,
            verbose=True,
        )
    executors: Optional[Dict[str, JsonDict]] = None
    if args.executors:
        executors = {
            scale: run_executor_bench(scale=scale, verbose=True)
            for scale in scales
        }
    report = build_report(suites, args.repeats, args.isolate, executors)

    print(json.dumps(report, indent=2, sort_keys=True, allow_nan=False))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True, allow_nan=False)
            fh.write("\n")
        print(f"[tfrc-bench] wrote {args.output}", file=sys.stderr)

    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = check_against_baseline(report, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"[tfrc-bench] REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"[tfrc-bench] no speedup regression vs {args.check} "
            f"(tolerance {args.tolerance:.0%})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
