#!/usr/bin/env python3
"""Fairness study: sweep flow counts and queue disciplines (mini Figure 6).

For each (queue discipline, number of flows) cell, half the flows are TFRC
and half are SACK TCP; the script prints a table of normalized mean
throughput per protocol, bottleneck utilization, and loss rate -- the same
quantities behind the paper's Figure 6 surface plots.

Run:  python examples/fairness_study.py [--full]
"""

import argparse

from repro.experiments.fig06_fairness_grid import run_cell


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="larger sweep (slower; closer to the paper's grid)",
    )
    args = parser.parse_args()

    if args.full:
        link_rates = (4e6, 15e6, 32e6)
        flow_counts = (2, 8, 32, 128)
        duration = 90.0
    else:
        link_rates = (15e6,)
        flow_counts = (8, 32)
        duration = 45.0

    header = (
        f"{'queue':9s} {'link':>7s} {'flows':>5s} "
        f"{'TCP':>6s} {'TFRC':>6s} {'util':>6s} {'loss':>7s}"
    )
    print(header)
    print("-" * len(header))
    for queue_type in ("red", "droptail"):
        for link_bps in link_rates:
            for flows in flow_counts:
                cell = run_cell(
                    link_bps=link_bps,
                    total_flows=flows,
                    queue_type=queue_type,
                    duration=duration,
                )
                print(
                    f"{queue_type:9s} {link_bps / 1e6:5.0f}Mb {flows:5d} "
                    f"{cell.mean_tcp_normalized:6.2f} "
                    f"{cell.mean_tfrc_normalized:6.2f} "
                    f"{cell.utilization:6.2f} {cell.loss_rate:7.4f}"
                )
    print(
        "\nA value of 1.00 is a perfectly fair share; the paper's headline is"
        "\nthat both protocols sit near 1.0 across this whole grid."
    )


if __name__ == "__main__":
    main()
