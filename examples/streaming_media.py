#!/usr/bin/env python3
"""Streaming media over TFRC vs TCP: the application the paper motivates.

A streaming session wants a smooth sending rate: abrupt halvings show up as
visible quality drops.  This example runs one TFRC "stream" and one TCP
"stream" through the same congested bottleneck (with web-like background
traffic), then compares:

* delivered rate over 0.15 s intervals -- the paper's threshold where
  bandwidth variation becomes noticeable to multimedia users (Figure 8);
* the coefficient of variation at several timescales (Figure 10's metric);
* how often each stream's rate dips below a "playback threshold", a simple
  proxy for rebuffering events.

Run:  python examples/streaming_media.py
"""

import numpy as np

from repro.analysis.cov import coefficient_of_variation
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.core import TfrcFlow
from repro.net import Dumbbell, DumbbellConfig
from repro.net.monitor import FlowMonitor
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.flow import TcpFlow
from repro.traffic.onoff import OnOffSource


def main() -> None:
    registry = RngRegistry(seed=42)
    sim = Simulator()
    config = DumbbellConfig(bandwidth_bps=6e6, queue_type="red",
                            buffer_packets=60, red_min_thresh=6, red_max_thresh=30)
    dumbbell = Dumbbell(sim, config, queue_rng=registry.stream("red"))
    monitor = FlowMonitor()

    fwd, rev = dumbbell.attach_flow("tfrc-stream", base_rtt=0.090)
    TfrcFlow(sim, "tfrc-stream", fwd, rev, on_data=monitor.on_packet).start()

    fwd, rev = dumbbell.attach_flow("tcp-stream", base_rtt=0.090)
    TcpFlow(sim, "tcp-stream", fwd, rev, variant="sack",
            on_data=monitor.on_packet).start(at=0.2)

    # Bursty background: eight Pareto ON/OFF sources at 500 kb/s peak.
    rng = registry.stream("onoff")
    topo_rng = registry.stream("topo")
    for i in range(8):
        flow_id = f"bg-{i}"
        port, _ = dumbbell.attach_flow(flow_id, float(topo_rng.uniform(0.08, 0.12)))
        OnOffSource(sim, flow_id, port, rng=rng).start(
            at=float(topo_rng.uniform(0.0, 3.0))
        )

    duration = 120.0
    sim.run(until=duration)

    t0, t1 = 20.0, duration
    print("Streaming comparison on a 6 Mb/s bottleneck with bursty cross traffic")
    print(f"(measured over t = {t0:.0f}..{t1:.0f} s)\n")

    frame_tau = 0.15  # the paper's 'noticeable to multimedia users' interval
    series = {}
    for flow_id in ("tfrc-stream", "tcp-stream"):
        arrivals = monitor.arrivals.get(flow_id, [])
        series[flow_id] = arrivals_to_rate_series(arrivals, t0, t1, frame_tau)
        mean_rate = monitor.throughput_bps(flow_id, t0, t1)
        print(f"{flow_id}:")
        print(f"  mean delivered rate     : {mean_rate / 1e6:.2f} Mb/s")
        for tau in (0.15, 0.5, 2.0):
            rates = arrivals_to_rate_series(arrivals, t0, t1, tau)
            print(f"  CoV at tau = {tau:4.2f} s     : "
                  f"{coefficient_of_variation(rates):.3f}")

    # Rebuffer proxy: fraction of 0.15 s frames below half the mean rate.
    print("\nFrames below half the stream's own mean rate (rebuffer proxy):")
    for flow_id, rates in series.items():
        mean = np.mean(rates)
        below = float(np.mean(rates < 0.5 * mean)) if mean > 0 else 1.0
        print(f"  {flow_id:12s}: {below * 100:5.1f}% of {frame_tau * 1000:.0f} ms frames")
    print("\nThe TFRC stream should show a visibly lower CoV and fewer dips --")
    print("the property that motivates equation-based congestion control.")


if __name__ == "__main__":
    main()
