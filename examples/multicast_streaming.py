#!/usr/bin/env python3
"""Multicast TFRC session: one sender, heterogeneous receivers (section 6).

Streams one source to eight receivers whose paths differ in loss.  The
demonstration covers the two multicast-specific mechanisms the paper
identifies:

* the sender adapts to the **worst** receiver (the group rate equals the
  rate the most congested path supports), and
* **feedback suppression** keeps the number of receiver reports far below
  one-per-receiver-per-round, preventing response implosion.

Run:  python examples/multicast_streaming.py
"""

from repro.multicast import MulticastTfrcSession
from repro.net.path import periodic_loss
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    # Eight receivers: six clean, one mildly lossy, one badly congested.
    specs = [(0.04, None)] * 6
    specs.append((0.06, periodic_loss(200)))   # mild: p = 0.5%
    specs.append((0.08, periodic_loss(30)))    # bottleneck: p = 3.3%
    session = MulticastTfrcSession(sim, specs, seed=11, round_duration=1.0)
    session.start()

    duration = 60.0
    sim.run(until=duration)

    sender = session.sender
    rounds = max(1, len(sender.rate_history) - 1)
    print(f"Multicast TFRC session after {duration:.0f} s, "
          f"{len(session.receivers)} receivers:")
    print(f"  sender rate               : {sender.rate * 8 / 1e3:8.1f} kb/s")
    worst = session.bottleneck_receiver()
    print(f"  bottleneck receiver       : {worst.receiver_id} "
          f"(allows {worst.calculated_rate() * 8 / 1e3:.1f} kb/s, "
          f"p = {worst.loss_event_rate():.4f})")
    print(f"  receiver reports in total : {session.total_reports} "
          f"({session.total_reports / rounds:.1f} per round, vs "
          f"{len(session.receivers)} without suppression)")
    print("\nPer-receiver state:")
    for receiver in session.receivers:
        print(
            f"  {receiver.receiver_id}: received {receiver.packets_received:5d} "
            f"pkts, p = {receiver.loss_event_rate():.4f}, "
            f"reports sent = {receiver.reports_sent}"
        )
    print(
        "\nThe sender tracks the most-congested receiver, and suppression"
        "\nkeeps feedback sublinear in the group size -- the two properties"
        "\nsection 6 of the paper requires from multicast congestion control."
    )


if __name__ == "__main__":
    main()
