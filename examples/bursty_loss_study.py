#!/usr/bin/env python
"""Why TFRC measures loss *events*, not lost packets: a burst-loss study.

Paper section 3.5.1 argues that TFRC should count at most one congestion
signal per round-trip time ("loss event"), because that is how a
conformant TCP halves its window.  The observable consequence: under
*bursty* loss -- where drops cluster inside round-trip times -- TFRC's
loss-event rate sits below the raw packet loss rate, and its throughput is
correspondingly higher than a naive loss-fraction controller would allow.

This script runs one TFRC flow over a controlled-loss pipe at a fixed 4%
*packet* loss rate while the burstiness of the loss process varies
(Gilbert-Elliott with mean burst lengths 1 -> 8; burst length 1 is plain
Bernoulli).  It prints, per burstiness level:

* measured packet loss rate (held ~constant by construction),
* receiver's loss event rate p (drops as bursts grow),
* mean throughput (grows as bursts grow), and
* the control equation's prediction from the measured p,

then renders a text chart of the two loss measures.  Runs entirely in
simulation, ~20 s of CPU.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.charts import line_chart
from repro.core.equations import tcp_response_rate
from repro.experiments.common import run_single_tfrc_on_lossy_path, steady_state_window
from repro.net.lossmodels import gilbert_elliott_from_rate

PACKET_LOSS_RATE = 0.04
RTT = 0.1
PACKET_SIZE = 1000
DURATION = 120.0
BURST_LENGTHS = (1.0, 2.0, 4.0, 8.0)


def run_one(mean_burst: float, seed: int = 1):
    model = gilbert_elliott_from_rate(
        PACKET_LOSS_RATE, mean_burst, np.random.default_rng(seed)
    )
    result = run_single_tfrc_on_lossy_path(
        loss_model=model, duration=DURATION, rtt=RTT, packet_size=PACKET_SIZE,
    )
    t0, t1 = steady_state_window(DURATION)
    throughput = result.flow_monitor.throughput_bps("tfrc", t0, t1)
    p_event = result.flow.receiver.loss_event_rate()
    p_loss = result.path.packets_dropped / max(1, result.path.packets_sent)
    return p_loss, p_event, throughput


def main() -> None:
    print(f"One TFRC flow, {PACKET_LOSS_RATE:.0%} packet loss, RTT {RTT * 1e3:.0f} ms,"
          f" {DURATION:.0f} s simulated")
    print(f"{'burst':>6} {'p_loss':>8} {'p_event':>8} {'throughput':>11} "
          f"{'equation(p_event)':>18}")
    rows = []
    for burst in BURST_LENGTHS:
        p_loss, p_event, throughput = run_one(burst)
        eq = tcp_response_rate(
            packet_size=PACKET_SIZE, rtt=RTT, p=max(p_event, 1e-6),
            t_rto=4 * RTT,
        )
        rows.append((burst, p_loss, p_event, throughput))
        print(f"{burst:6.0f} {p_loss:8.3f} {p_event:8.3f} "
              f"{throughput / 8e3:9.1f}KB/s {eq / 1e3:16.1f}KB/s")

    print()
    print(line_chart(
        {
            "packet loss rate": [(b, pl) for b, pl, _, _ in rows],
            "loss event rate p": [(b, pe) for b, _, pe, _ in rows],
        },
        title="Loss measures vs burst length (fixed 4% packet loss)",
        x_label="mean burst length (packets)", y_label="rate",
    ))
    print()
    first, last = rows[0], rows[-1]
    gain = last[3] / first[3] if first[3] else float("nan")
    print(f"Throughput at burst length {last[0]:.0f} is {gain:.2f}x the "
          f"Bernoulli case: clustered drops collapse\ninto single loss events "
          f"(section 3.5.1), so the equation admits a higher rate.")


if __name__ == "__main__":
    main()
