#!/usr/bin/env python
"""Video-streaming QoE: what TFRC's smoothness buys the viewer.

The paper's opening claim is that TCP's rate halvings "can noticeably
reduce the user-perceived quality" for streaming media (section 1, citing
Tan & Zakhor).  Figures 8 and 10 show TFRC's rate varies less than TCP's;
this example translates that into viewer-facing metrics.

One TFRC stream and one TCP stream share a congested 6 Mb/s bottleneck
with bursty web-like cross traffic.  Each stream's delivery trace is then
run through:

* a playout buffer (media rate set to each stream's own mean delivery
  rate -- an aggressive player, equally provisioned relative to what its
  transport achieved), counting rebuffer stalls; and
* a quality-ladder adapter (64 kb/s .. 1.5 Mb/s rungs), counting quality
  switches per minute.

Expected shape: similar mean throughput, but the TCP stream shows more
rebuffering and/or more quality flapping -- the paper's motivation in
user terms.  Runs in simulation; ~30 s of CPU.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.charts import sparkline
from repro.analysis.cov import coefficient_of_variation
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.apps import QualityAdapter, simulate_playout
from repro.core import TfrcFlow
from repro.net import Dumbbell, DumbbellConfig
from repro.net.monitor import FlowMonitor
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.flow import TcpFlow
from repro.traffic.onoff import OnOffSource

DURATION = 150.0
WARMUP = 20.0
TAU = 0.5  # adaptation decision interval, seconds


def run_scenario(seed: int = 7):
    registry = RngRegistry(seed)
    sim = Simulator()
    config = DumbbellConfig(bandwidth_bps=6e6, queue_type="red",
                            buffer_packets=60, red_min_thresh=6,
                            red_max_thresh=30)
    dumbbell = Dumbbell(sim, config, queue_rng=registry.stream("red"))
    monitor = FlowMonitor()

    fwd, rev = dumbbell.attach_flow("tfrc", base_rtt=0.090)
    TfrcFlow(sim, "tfrc", fwd, rev, on_data=monitor.on_packet).start()
    fwd, rev = dumbbell.attach_flow("tcp", base_rtt=0.090)
    TcpFlow(sim, "tcp", fwd, rev, variant="sack",
            on_data=monitor.on_packet).start(at=0.2)

    rng = registry.stream("onoff")
    topo_rng = registry.stream("topo")
    for i in range(8):
        flow_id = f"bg-{i}"
        port, _ = dumbbell.attach_flow(
            flow_id, float(topo_rng.uniform(0.08, 0.12))
        )
        OnOffSource(sim, flow_id, port, rng=rng).start(
            at=float(topo_rng.uniform(0.0, 3.0))
        )
    sim.run(until=DURATION)
    return monitor


def analyze(monitor: FlowMonitor, flow_id: str) -> dict:
    arrivals = [
        (t, b) for t, b in monitor.arrivals.get(flow_id, []) if t >= WARMUP
    ]
    rates = arrivals_to_rate_series(arrivals, WARMUP, DURATION, TAU)
    rates_bps = [8 * r for r in rates]  # series is bytes/s
    mean_bps = float(np.mean(rates_bps))
    # An aggressive player: media rate equal to the mean delivery rate, so
    # every sustained dip below the mean is felt.
    playout = simulate_playout(
        arrivals, media_rate_bps=mean_bps,
        prebuffer_seconds=2.0, rebuffer_seconds=1.0, end_time=DURATION,
    )
    adaptation = QualityAdapter(up_stability=5.0).replay(rates_bps, tau=TAU)
    return {
        "mean_bps": mean_bps,
        "cov": coefficient_of_variation(rates),
        "trace": rates_bps,
        "playout": playout,
        "adaptation": adaptation,
    }


def main() -> None:
    print("Streaming QoE on a shared 6 Mb/s bottleneck "
          f"({DURATION:.0f} s simulated, bursty cross traffic)")
    monitor = run_scenario()
    results = {name: analyze(monitor, name) for name in ("tfrc", "tcp")}

    for name, r in results.items():
        playout = r["playout"]
        adaptation = r["adaptation"]
        print(f"\n{name.upper()} stream")
        print(f"  delivery: {sparkline(r['trace'], width=64)}")
        print(f"  mean delivered rate   : {r['mean_bps'] / 1e6:.2f} Mb/s")
        print(f"  rate CoV (tau={TAU}s)   : {r['cov']:.2f}")
        print(f"  rebuffer events       : {playout.rebuffer_events}")
        print(f"  total stall time      : {playout.stall_time:.1f} s "
              f"(ratio {playout.stall_ratio:.1%})")
        print(f"  quality switches/min  : {adaptation.switches_per_minute:.1f}")
        print(f"  mean encoded bitrate  : "
              f"{adaptation.mean_bitrate_bps() / 1e3:.0f} kb/s")

    tfrc, tcp = results["tfrc"], results["tcp"]
    print(f"\nSummary: the TFRC stream delivered "
          f"{tfrc['mean_bps'] / tcp['mean_bps']:.2f}x the TCP stream's mean "
          "rate but much more\n"
          f"smoothly (CoV {tfrc['cov']:.2f} vs {tcp['cov']:.2f}).  "
          "Viewer impact, each player provisioned at\nexactly its own mean "
          f"delivery: {tfrc['playout'].rebuffer_events} vs "
          f"{tcp['playout'].rebuffer_events} rebuffer events "
          f"({tfrc['playout'].stall_time:.1f} s vs "
          f"{tcp['playout'].stall_time:.1f} s stalled),\n"
          f"{tfrc['adaptation'].switches_per_minute:.1f} vs "
          f"{tcp['adaptation'].switches_per_minute:.1f} quality switches per "
          "minute, and a *higher* mean encoded\nbitrate "
          f"({tfrc['adaptation'].mean_bitrate_bps() / 1e3:.0f} vs "
          f"{tcp['adaptation'].mean_bitrate_bps() / 1e3:.0f} kb/s) despite "
          "the lower raw throughput: the jumpy TCP\nrate keeps forcing the "
          "adapter down the ladder -- the section 1 motivation,\nquantified.")


if __name__ == "__main__":
    main()
