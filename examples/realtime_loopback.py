#!/usr/bin/env python
"""Run TFRC over real UDP sockets on loopback, through an impairment proxy.

This is the repository's analogue of the paper's real-world experiments
(section 4.3): the same TFRC protocol machines validated in simulation run
here over the operating system's UDP stack, with
:class:`repro.rt.UdpImpairmentProxy` standing in for Dummynet.

The script runs three short sessions over 127.0.0.1:

1. a clean path (no loss) -- slow start opens the rate up;
2. periodic loss (every 25th data packet dropped) -- the equation holds the
   rate near  1.2/sqrt(p)  packets per RTT;
3. bursty loss from a Gilbert-Elliott process -- loss *events* rather than
   packet losses drive the rate, so bursts cost less than their packet
   count suggests.

Everything stays on the local machine; total wall-clock time is ~9 seconds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.net.lossmodels import gilbert_elliott_from_rate
from repro.rt import drop_every_nth_data, run_loopback_session
from repro.rt.proxy import DatagramLossModel
from repro.wire.headers import DataPacket, WireFormatError, decode_packet

ONE_WAY_DELAY = 0.02  # seconds; RTT = 40 ms through the proxy
PACKET_SIZE = 500     # bytes on the wire


def gilbert_datagram_model(rate: float, burst: float, seed: int) -> DatagramLossModel:
    """Adapt the packet-level Gilbert-Elliott model to raw datagrams."""
    from repro.net.packet import Packet

    model = gilbert_elliott_from_rate(rate, burst, np.random.default_rng(seed))

    def datagram_model(data: bytes, now: float) -> bool:
        try:
            parsed = decode_packet(data)
        except WireFormatError:
            return False
        if not isinstance(parsed, DataPacket):
            return False
        fake = Packet(flow_id="rt", seq=parsed.seq, size=len(data))
        return model(fake, now)

    return datagram_model


def describe(title: str, result, expected_p: float | None) -> None:
    print(f"\n=== {title} ===")
    print(f"  data sent / received : {result.datagrams_sent} / "
          f"{result.datagrams_received}")
    print(f"  proxy drops          : {result.datagrams_dropped}")
    print(f"  feedback reports     : {result.feedback_received}")
    print(f"  smoothed RTT         : "
          f"{result.srtt * 1e3:.1f} ms" if result.srtt else "  smoothed RTT: n/a")
    print(f"  loss event rate p    : {result.loss_event_rate:.4f}"
          + (f"  (packet loss imposed: {expected_p:.4f})" if expected_p else ""))
    print(f"  mean allowed rate    : {result.mean_rate_bps / 1e3:.1f} KB/s")
    if result.loss_event_rate > 0 and result.srtt:
        eq_pkts_per_rtt = 1.2 / math.sqrt(result.loss_event_rate)
        measured = result.final_rate_bps * result.srtt / PACKET_SIZE
        print(f"  equation predicts    : {eq_pkts_per_rtt:.1f} pkts/RTT; "
              f"final rate is {measured:.1f} pkts/RTT")


def main() -> None:
    print("TFRC over real UDP sockets (loopback), proxy RTT "
          f"{2 * ONE_WAY_DELAY * 1e3:.0f} ms")

    clean = run_loopback_session(
        duration=2.0, one_way_delay=ONE_WAY_DELAY, packet_size=PACKET_SIZE,
    )
    describe("clean path (slow start opens up)", clean, expected_p=None)

    periodic = run_loopback_session(
        duration=2.5, one_way_delay=ONE_WAY_DELAY, packet_size=PACKET_SIZE,
        loss_model=drop_every_nth_data(25),
    )
    describe("periodic loss, 1 in 25", periodic, expected_p=1 / 25)

    bursty = run_loopback_session(
        duration=4.0, one_way_delay=ONE_WAY_DELAY, packet_size=PACKET_SIZE,
        loss_model=gilbert_datagram_model(rate=0.04, burst=3.0, seed=2),
    )
    describe("bursty loss (Gilbert-Elliott, 4% in bursts of ~3)", bursty,
             expected_p=0.04)
    print("\nNote how the bursty session's loss *event* rate sits below its "
          "packet\nloss rate: losses inside one RTT collapse into a single "
          "event\n(paper section 3.5.1), so TFRC sends faster than a naive "
          "loss-fraction\ncontroller would.")


if __name__ == "__main__":
    main()
