#!/usr/bin/env python3
"""Compare TFRC against the related-work baselines: TFRCP and RAP.

Each protocol runs alone against the same controlled path with a step
change in congestion (loss 0.5% -> 5% at t=60 -> 0.5% at t=120), the
methodology of the paper's section 5 comparisons.  The script reports, per
protocol:

* mean rate in each phase (does it track the fair rate?),
* reaction delay to the congestion step,
* rate smoothness (CoV) within the steady phases.

TFRC should react within a few RTTs and stay smooth; TFRCP reacts only at
its next update boundary; RAP reacts per loss with AIMD sawtooth.

Run:  python examples/protocol_comparison.py
"""

import numpy as np

from repro.baselines.rap import RapFlow
from repro.baselines.tfrcp import TfrcpFlow
from repro.core import TfrcFlow
from repro.net.monitor import FlowMonitor
from repro.net.path import LossyPath, bernoulli_loss, scheduled_loss
from repro.sim import Simulator


def build_loss_model(seed: int):
    rng = np.random.default_rng(seed)
    return scheduled_loss(
        [
            (0.0, bernoulli_loss(0.005, rng)),
            (60.0, bernoulli_loss(0.05, rng)),
            (120.0, bernoulli_loss(0.005, rng)),
        ]
    )


def run_protocol(name: str, flow_cls, duration: float = 180.0, rtt: float = 0.1):
    sim = Simulator()
    forward = LossyPath(sim, delay=rtt / 2, loss_model=build_loss_model(7))
    reverse = LossyPath(sim, delay=rtt / 2)
    monitor = FlowMonitor()
    flow = flow_cls(
        sim, name, forward, reverse, on_data=monitor.on_packet
    )
    flow.start()
    sim.run(until=duration)
    rates = flow.sender.rate_history
    return monitor, rates


def phase_mean(monitor, name, t0, t1):
    return monitor.throughput_bps(name, t0, t1)


def reaction_delay(rates, onset=60.0):
    """Seconds until the allowed rate first falls below half its pre-onset
    mean after the congestion step."""
    pre = [r for t, r in rates if onset - 10 <= t < onset]
    if not pre:
        return float("nan")
    threshold = np.mean(pre) / 2
    for t, r in rates:
        if t >= onset and r <= threshold:
            return t - onset
    return float("inf")


def main() -> None:
    protocols = [
        ("tfrc", TfrcFlow),
        ("tfrcp", TfrcpFlow),
        ("rap", RapFlow),
    ]
    print("Step-congestion comparison (loss 0.5% -> 5% at t=60 -> 0.5% at t=120)\n")
    header = (
        f"{'protocol':9s} {'calm1 Mb/s':>10s} {'congested':>10s} "
        f"{'calm2 Mb/s':>10s} {'reaction s':>10s}"
    )
    print(header)
    print("-" * len(header))
    for name, flow_cls in protocols:
        monitor, rates = run_protocol(name, flow_cls)
        calm1 = phase_mean(monitor, name, 30, 60) / 1e6
        congested = phase_mean(monitor, name, 80, 120) / 1e6
        calm2 = phase_mean(monitor, name, 150, 180) / 1e6
        delay = reaction_delay(rates)
        print(
            f"{name:9s} {calm1:10.3f} {congested:10.3f} "
            f"{calm2:10.3f} {delay:10.2f}"
        )
    print(
        "\nExpected shape: all three throttle under congestion, but TFRC"
        "\nreacts within ~5 RTTs (sub-second here) while TFRCP waits for its"
        "\nnext update boundary (seconds), and RAP halves on each loss event."
    )


if __name__ == "__main__":
    main()
