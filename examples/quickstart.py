#!/usr/bin/env python3
"""Quickstart: one TFRC flow sharing a bottleneck with one TCP flow.

Builds the paper's dumbbell (15 Mb/s, 50 ms, RED), runs 30 simulated
seconds, and prints each flow's throughput, the TFRC loss-event estimate,
and the link statistics.

Run:  python examples/quickstart.py
"""

from repro.core import TfrcFlow
from repro.net import Dumbbell, DumbbellConfig
from repro.net.monitor import FlowMonitor, LinkMonitor
from repro.sim import Simulator
from repro.tcp.flow import TcpFlow


def main() -> None:
    sim = Simulator()
    dumbbell = Dumbbell(sim, DumbbellConfig(bandwidth_bps=15e6, queue_type="red"))
    monitor = FlowMonitor()
    link_monitor = LinkMonitor(sim, dumbbell.forward_link, sample_queue=False)

    # One TFRC flow...
    fwd, rev = dumbbell.attach_flow("tfrc", base_rtt=0.100)
    tfrc = TfrcFlow(sim, "tfrc", fwd, rev, on_data=monitor.on_packet)
    tfrc.start()

    # ...competing with one SACK TCP flow.
    fwd, rev = dumbbell.attach_flow("tcp", base_rtt=0.100)
    tcp = TcpFlow(sim, "tcp", fwd, rev, variant="sack", on_data=monitor.on_packet)
    tcp.start(at=0.5)

    duration = 30.0
    sim.run(until=duration)

    print(f"After {duration:.0f} simulated seconds on a 15 Mb/s RED bottleneck:")
    for flow_id in monitor.flows():
        rate = monitor.throughput_bps(flow_id, duration / 2, duration)
        print(f"  {flow_id:5s} throughput (last half): {rate / 1e6:6.2f} Mb/s")
    print(f"  TFRC loss event rate estimate : {tfrc.loss_event_rate:.4f}")
    print(f"  TFRC allowed sending rate     : {tfrc.rate * 8 / 1e6:.2f} Mb/s")
    print(f"  TCP congestion window         : {tcp.cwnd:.1f} packets")
    print(f"  bottleneck loss rate          : {link_monitor.loss_rate():.4f}")
    print(f"  bottleneck utilization        : {link_monitor.utilization(duration):.3f}")


if __name__ == "__main__":
    main()
