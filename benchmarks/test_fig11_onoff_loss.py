"""Figure 11 bench: bottleneck loss rate vs number of ON/OFF sources.

The paper sweeps 50-150 Pareto ON/OFF sources; the loss rate grows steeply
with the offered background load (up to ~40% at 150 sources in the paper's
5000 s runs).
"""

from repro.experiments import fig11_onoff as fig11

COUNTS = (60, 100, 140)


def test_fig11_onoff_loss_rate(once, benchmark):
    result = once(
        benchmark, fig11.run, source_counts=COUNTS, duration=120.0,
    )
    curve = result.loss_curve()
    print("\nFigure 11 reproduction (loss rate vs ON/OFF sources):")
    for sources, loss in curve:
        print(f"  {sources:4d} sources: {loss * 100:5.1f}%")
    losses = [loss for _, loss in curve]
    # Monotone increasing (allowing tiny wiggle) and spanning a wide range.
    assert losses[-1] > losses[0]
    assert losses[0] < 0.12          # light load: low loss
    assert losses[-1] > 0.08         # heavy load: serious loss
    # Offered load at 140 sources is ~2x the link: loss must be substantial.
    assert all(0.0 <= loss < 0.6 for loss in losses)
