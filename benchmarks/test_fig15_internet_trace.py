"""Figure 15 bench: 3 TCP + 1 TFRC over the (synthetic) UCL Internet path.

Paper's observations for this experiment: the TFRC flow's rate is slightly
lower on average than the TCP flows', and much smoother (low variance on
one-second intervals).
"""

import numpy as np

from repro.analysis.cov import coefficient_of_variation
from repro.experiments import internet


def test_fig15_internet_trace(once, benchmark):
    result = once(
        benchmark, internet.run_path,
        internet.PATHS["ucl"], n_tcp=3, duration=90.0,
    )
    mean_tcp = float(np.mean(result.tcp_throughputs_bps))
    print("\nFigure 15 reproduction (synthetic UCL path):")
    print(f"  TFRC: {result.tfrc_throughput_bps / 1e3:6.0f} kb/s")
    print(f"  TCP : {mean_tcp / 1e3:6.0f} kb/s (mean of 3)")
    print(f"  loss rate: {result.loss_rate:.3f}")
    # Comparable shares: TFRC within [0.3x, 3x] of the TCP mean.
    assert 0.3 * mean_tcp < result.tfrc_throughput_bps < 3.0 * mean_tcp
    # The TFRC trace is smoother than the TCP traces at 1 s bins.
    tfrc_cov = coefficient_of_variation(result.tfrc_trace)
    tcp_covs = [coefficient_of_variation(trace) for trace in result.tcp_traces]
    assert tfrc_cov < float(np.mean(tcp_covs))
    # The loss rate is in the paper's Internet range (0.1% .. 5%-ish).
    assert 0.0005 < result.loss_rate < 0.12
