"""Section 5 comparison: TFRC vs TFRCP vs RAP on a congestion step.

The paper compares TFRC against TFRCP "over a wide range of timescales" and
finds TFRC better; RAP is expected to coexist worse with TCP because it
ignores timeout effects.  This bench quantifies the transient behaviour of
the three protocols on the same step-congestion path:

* reaction time to a 10x congestion increase,
* smoothness (CoV of the allowed rate) in the steady phases.
"""

import numpy as np

from repro.baselines.rap import RapFlow
from repro.baselines.tfrcp import TfrcpFlow
from repro.core import TfrcFlow
from repro.net.monitor import FlowMonitor
from repro.net.path import LossyPath, bernoulli_loss, scheduled_loss
from repro.sim import Simulator


def run_protocol(flow_cls, duration=120.0, rtt=0.1, seed=7):
    rng = np.random.default_rng(seed)
    model = scheduled_loss(
        [(0.0, bernoulli_loss(0.005, rng)), (60.0, bernoulli_loss(0.05, rng))]
    )
    sim = Simulator()
    forward = LossyPath(sim, delay=rtt / 2, loss_model=model)
    reverse = LossyPath(sim, delay=rtt / 2)
    monitor = FlowMonitor()
    flow = flow_cls(sim, "x", forward, reverse, on_data=monitor.on_packet)
    flow.start()
    sim.run(until=duration)
    return flow, monitor


def reaction_time(rates, onset=60.0):
    pre = [r for t, r in rates if onset - 10 <= t < onset]
    if not pre:
        return float("nan")
    threshold = np.mean(pre) / 2
    for t, r in rates:
        if t >= onset and r <= threshold:
            return t - onset
    return float("inf")


def smoothness(rates, t0, t1):
    window = [r for t, r in rates if t0 <= t <= t1]
    if not window:
        return float("nan")
    return float(np.std(window) / np.mean(window))


def run_comparison():
    out = {}
    for name, cls in (("tfrc", TfrcFlow), ("tfrcp", TfrcpFlow), ("rap", RapFlow)):
        flow, monitor = run_protocol(cls)
        rates = flow.sender.rate_history
        out[name] = {
            "reaction": reaction_time(rates),
            "smooth_calm": smoothness(rates, 30, 60),
            "throughput_congested": monitor.throughput_bps("x", 80, 120),
        }
    return out


def test_baseline_comparison(once, benchmark):
    results = once(benchmark, run_comparison)
    print("\nSection 5 baseline comparison (0.5% -> 5% loss step at t=60):")
    for name, metrics in results.items():
        print(
            f"  {name:6s} reaction {metrics['reaction']:6.2f}s  "
            f"calm CoV {metrics['smooth_calm']:.3f}  "
            f"congested {metrics['throughput_congested'] / 1e3:.0f} kb/s"
        )
    # TFRC reacts within a few seconds (several RTTs of 0.1 s + estimator lag).
    assert results["tfrc"]["reaction"] < 5.0
    # TFRCP cannot react faster than its 5 s update interval.
    assert results["tfrcp"]["reaction"] >= 3.0
    # TFRC's transient response beats TFRCP's (the paper's conclusion).
    assert results["tfrc"]["reaction"] < results["tfrcp"]["reaction"]
    # All three throttle: congested throughput well below the calm fair rate.
    for name in results:
        assert results[name]["throughput_congested"] < 3e6
