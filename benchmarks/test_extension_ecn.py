"""Extension bench: TFRC with Explicit Congestion Notification.

The paper's conclusion names ECN as a direction of interest ("we are
interested in the potential of equation-based congestion control in an
environment with ECN").  This bench runs the steady-state scenario with an
ECN-enabled RED bottleneck and ECN-capable TFRC flows against (non-ECN)
TCP, and checks that:

* TFRC still throttles to a fair share (marks act like losses), and
* the TFRC flows' packets are never early-dropped (marks replace drops).
"""

import numpy as np

from repro.core import TfrcFlow
from repro.net import Dumbbell, DumbbellConfig
from repro.net.monitor import FlowMonitor, LinkMonitor
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.flow import TcpFlow


def run_ecn_scenario(duration=60.0, n_each=8, seed=0):
    registry = RngRegistry(seed)
    sim = Simulator()
    config = DumbbellConfig(bandwidth_bps=15e6, queue_type="red")
    dumbbell = Dumbbell(sim, config, queue_rng=registry.stream("red"))
    queue = dumbbell.forward_link.queue
    queue.ecn = True  # enable marking at the bottleneck
    monitor = FlowMonitor()
    link_monitor = LinkMonitor(sim, dumbbell.forward_link, sample_queue=False)
    rng = registry.stream("topology")
    for i in range(n_each):
        fwd, rev = dumbbell.attach_flow(f"tfrc-{i}", rng.uniform(0.08, 0.12))
        TfrcFlow(
            sim, f"tfrc-{i}", fwd, rev, on_data=monitor.on_packet, ecn=True
        ).start(at=rng.uniform(0, 10))
    for i in range(n_each):
        fwd, rev = dumbbell.attach_flow(f"tcp-{i}", rng.uniform(0.08, 0.12))
        TcpFlow(
            sim, f"tcp-{i}", fwd, rev, variant="sack", on_data=monitor.on_packet
        ).start(at=rng.uniform(0, 10))
    sim.run(until=duration)
    fair = 15e6 / (2 * n_each)
    tfrc = np.mean([
        monitor.throughput_bps(f"tfrc-{i}", duration / 2, duration) / fair
        for i in range(n_each)
    ])
    tcp = np.mean([
        monitor.throughput_bps(f"tcp-{i}", duration / 2, duration) / fair
        for i in range(n_each)
    ])
    tfrc_drops = sum(1 for _, fid in link_monitor.drops if fid.startswith("tfrc"))
    return {
        "tfrc_norm": float(tfrc),
        "tcp_norm": float(tcp),
        "marks": queue.ecn_marks,
        "tfrc_drops": tfrc_drops,
    }


def test_extension_ecn(once, benchmark):
    result = once(benchmark, run_ecn_scenario)
    print("\nECN extension:")
    print(f"  TFRC normalized throughput : {result['tfrc_norm']:.2f}")
    print(f"  TCP  normalized throughput : {result['tcp_norm']:.2f}")
    print(f"  ECN marks                  : {result['marks']}")
    print(f"  TFRC packets dropped       : {result['tfrc_drops']}")
    # Marks were generated and treated as congestion: TFRC stays near fair.
    assert result["marks"] > 0
    assert 0.4 < result["tfrc_norm"] < 1.8
    assert 0.4 < result["tcp_norm"] < 1.8
    # TFRC loses (almost) nothing: only forced drops at full buffer remain.
    assert result["tfrc_drops"] < result["marks"] * 0.5
