"""Extension bench: multicast TFRC (paper section 6).

Checks the two properties section 6 demands of scalable multicast
congestion control:

* the sender's rate tracks the **worst** receiver's calculated rate (a
  receiver behind a lossy path governs the group), and
* feedback stays bounded as the group grows (suppression prevents
  response implosion).
"""

from repro.multicast import MulticastTfrcSession
from repro.net.path import periodic_loss
from repro.sim import Simulator


def run_scaling(group_sizes=(4, 16, 64), duration=40.0):
    """Same loss everywhere (hardest suppression case); count reports."""
    reports = {}
    rates = {}
    for n in group_sizes:
        sim = Simulator()
        specs = [(0.05, periodic_loss(100)) for _ in range(n)]
        session = MulticastTfrcSession(sim, specs, seed=2, round_duration=2.0)
        session.start()
        sim.run(until=duration)
        reports[n] = session.total_reports
        rates[n] = session.sender.rate
    return reports, rates


def test_extension_multicast(once, benchmark):
    reports, rates = once(benchmark, run_scaling)
    sizes = sorted(reports)
    print("\nMulticast TFRC extension (reports over 40 s, by group size):")
    for n in sizes:
        print(f"  N={n:3d}: {reports[n]:4d} reports, rate {rates[n] / 1e3:.0f} kB/s")
    # Sublinear feedback: 16x receivers -> far fewer than 16x reports.
    assert reports[sizes[-1]] < reports[sizes[0]] * (sizes[-1] / sizes[0]) * 0.5
    # All group sizes converge to a similar (loss-governed) rate.
    values = list(rates.values())
    assert max(values) < 4 * min(values)

    # Worst-receiver tracking: one receiver behind a much lossier path.
    sim = Simulator()
    specs = [(0.05, None)] * 7 + [(0.05, periodic_loss(20))]
    session = MulticastTfrcSession(sim, specs, seed=3)
    session.start()
    sim.run(until=60.0)
    worst = session.bottleneck_receiver()
    assert worst.receiver_id.endswith("rx7")
    assert session.sender.rate < 2.0 * worst.calculated_rate()
    print(
        f"  heterogeneous group: sender {session.sender.rate / 1e3:.0f} kB/s, "
        f"bottleneck receiver allows {worst.calculated_rate() / 1e3:.0f} kB/s"
    )
