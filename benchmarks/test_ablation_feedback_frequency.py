"""Ablation: feedback frequency (once per RTT vs sparser).

Paper section 3's design goals require "the receiver should report
feedback to the sender at least once per round-trip time".  This ablation
quantifies what that buys: the Figure 20 persistent-congestion scenario is
re-run with the receiver reporting every 1, 2, and 4 RTTs, measuring how
many RTTs the sender needs to halve its rate.

Expected shape: response time grows as feedback thins -- the sender can
only react when told -- while the steady-state rate barely moves (the loss
estimate itself is unchanged).  Expedited (new-loss-event) reports are
still sent in all configurations, which is why the degradation is graceful
rather than proportional.
"""

from repro.experiments.fig20_halving import HalvingResult
from repro.experiments.common import run_single_tfrc_on_lossy_path
from repro.net.path import periodic_loss, scheduled_loss

INTERVALS = (1.0, 2.0, 4.0)


def run_halving_with_feedback_interval(
    feedback_interval_rtts, onset=10.0, duration=16.0, rtt=0.1
):
    model = scheduled_loss(
        [(0.0, periodic_loss(100)), (onset, periodic_loss(2))]
    )
    result = HalvingResult(onset=onset, rtt=rtt)

    def probe(sim, flow):
        result.times.append(sim.now)
        result.rates.append(flow.sender.rate)

    run_single_tfrc_on_lossy_path(
        loss_model=model,
        duration=duration,
        rtt=rtt,
        probe=probe,
        probe_interval=rtt / 2.0,
        feedback_interval_rtts=feedback_interval_rtts,
    )
    return result


def run_ablation():
    outcome = {}
    for interval in INTERVALS:
        result = run_halving_with_feedback_interval(interval)
        outcome[interval] = result.rtts_to_halve()
    return outcome


def test_ablation_feedback_frequency(once, benchmark):
    outcome = once(benchmark, run_ablation)
    print("\nFeedback-frequency ablation (RTTs to halve under persistent "
          "congestion):")
    for interval, rtts in sorted(outcome.items()):
        shown = f"{rtts:.1f}" if rtts is not None else "never"
        print(f"  report every {interval:.0f} RTT(s): {shown} RTTs to halve")

    # Every configuration still halves (expedited reports keep it alive).
    assert all(rtts is not None for rtts in outcome.values())
    # Once per RTT responds within the paper's band (3-8, we allow ~10).
    assert outcome[1.0] <= 10.0
    # Sparser feedback never responds *faster* than the paper's cadence
    # (ties allowed: expedited reports dominate the first reaction).
    assert outcome[4.0] >= outcome[1.0]