"""Mark every perf-trajectory benchmark ``slow`` (same policy as the
figure benchmarks one directory up: ``pytest -m "not slow"`` stays the
sub-minute smoke tier)."""

import os

import pytest

PERF_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    for item in items:
        if os.path.dirname(os.path.abspath(str(item.fspath))) == PERF_DIR:
            item.add_marker(pytest.mark.slow)
