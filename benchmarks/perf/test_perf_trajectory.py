"""Perf-trajectory benchmarks: the endpoint fast path earns its keep.

Two layers of assertion:

* every committed ``BENCH_PR<N>.json`` (the repo's perf trajectory, one
  file per PR, appended never overwritten) must be well-formed, and the
  newest must record a >= 1.5x fast/legacy speedup on the endpoint-heavy
  dumbbell at full scale -- the PR-2 acceptance number;
* a live measurement (skipped on shared CI runners, like the engine
  fast-path bench) must reproduce a healthy speedup on this machine.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.perf.bench import (
    check_against_baseline,
    find_baselines,
    latest_baseline,
    next_baseline_path,
    run_cell,
)

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
BENCH_FILE = latest_baseline(REPO_ROOT)

skip_timing_on_ci = pytest.mark.skipif(
    os.environ.get("CI", "").lower() in ("1", "true"),
    reason="wall-clock performance ratios are unreliable on shared CI runners",
)


class TestCommittedTrajectory:
    def test_bench_files_committed_and_well_formed(self):
        names = find_baselines(REPO_ROOT)
        assert names, (
            "no BENCH_PR<N>.json committed: regenerate with "
            "`tfrc-bench --suite all --isolate --output next`"
        )
        # The trajectory is append-only: PR 2 onwards must all be present.
        assert names[0] == "BENCH_PR2.json"
        for name in names:
            with open(os.path.join(REPO_ROOT, name)) as fh:
                report = json.load(fh)
            assert report["schema"] == "tfrc-bench/v1", name
            for scale in ("smoke", "full"):
                scenarios = report["suites"][scale]
                for scenario in (
                    "dumbbell_steady", "fig06_grid_cell", "onoff_churn",
                    "red_ecn",
                ):
                    cell = scenarios[scenario]
                    for mode in ("fast", "legacy"):
                        assert cell[mode]["events"] > 0, (name, scenario)
                        assert cell[mode]["wall_seconds"] > 0, (name, scenario)
                        assert cell[mode]["events_per_sec"] > 0, (name, scenario)
                    assert cell["speedup"] > 0, (name, scenario)

    def test_acceptance_speedup_on_endpoint_heavy_dumbbell(self):
        """PR-2 acceptance: >= 1.5x events/sec vs the PR-1 legacy path on
        the endpoint-heavy dumbbell, as recorded in the committed
        trajectory (speedup is the wall ratio over a byte-identical
        workload, i.e. the normalized events/sec ratio)."""
        with open(BENCH_FILE) as fh:
            report = json.load(fh)
        speedup = report["suites"]["full"]["dumbbell_steady"]["speedup"]
        assert speedup >= 1.5, (
            f"committed dumbbell_steady speedup {speedup:.2f}x < 1.5x"
        )

    def test_baselines_sort_by_pr_number_not_lexicographically(
        self, tmp_path
    ):
        """Regression: from PR 10 on, a lexicographic sort would place
        BENCH_PR10.json *before* BENCH_PR2.json, making `--check latest`
        gate against an ancient file and `--output next` overwrite it."""
        for n in (2, 3, 10, 11):
            (tmp_path / f"BENCH_PR{n}.json").write_text("{}")
        (tmp_path / "BENCH_PRx.json").write_text("{}")  # not a baseline
        root = str(tmp_path)
        assert find_baselines(root) == [
            "BENCH_PR2.json", "BENCH_PR3.json",
            "BENCH_PR10.json", "BENCH_PR11.json",
        ]
        assert latest_baseline(root).endswith("BENCH_PR11.json")
        assert next_baseline_path(root).endswith("BENCH_PR12.json")
        assert find_baselines(str(tmp_path / "missing")) == []

    def test_pr6_acceptance_vector_sweep(self):
        """PR-6 acceptance, pinned on the committed trajectory: the vector
        executor must clear 3x serial cells/sec on a single process over a
        supported grid of at least 64 cells."""
        pr6 = os.path.join(REPO_ROOT, "BENCH_PR6.json")
        assert os.path.exists(pr6), (
            "BENCH_PR6.json not committed: regenerate with "
            "`tfrc-bench --suite all --isolate --output next`"
        )
        with open(pr6) as fh:
            report = json.load(fh)
        for scale in ("smoke", "full"):
            sweep = report["suites"][scale]["vector_sweep"]
            assert sweep["cells"] >= 64, scale
            for executor in ("serial", "vector"):
                assert sweep[executor]["wall_seconds"] > 0, (scale, executor)
                assert sweep[executor]["cells_per_sec"] > 0, (scale, executor)
        full = report["suites"]["full"]["vector_sweep"]
        assert full["speedup"] >= 3.0, (
            f"committed vector_sweep speedup {full['speedup']:.2f}x < 3x"
        )

    def test_pr4_acceptance_network_layer_fast_path(self):
        """PR-4 acceptance, pinned file-vs-file (both committed on the
        same machine, so the comparison is stable anywhere): the network
        -layer fast path must lift the RED+ECN cell's fast-path events/sec
        by >= 1.15x over the PR-3 trajectory, and the new SACK-heavy
        recovery cell must be present with a healthy fast/legacy speedup.
        """
        pr3 = os.path.join(REPO_ROOT, "BENCH_PR3.json")
        pr4 = os.path.join(REPO_ROOT, "BENCH_PR4.json")
        assert os.path.exists(pr4), (
            "BENCH_PR4.json not committed: regenerate with "
            "`tfrc-bench --suite all --isolate --output next`"
        )
        with open(pr3) as fh:
            base = json.load(fh)
        with open(pr4) as fh:
            report = json.load(fh)
        for scale in ("smoke", "full"):
            before = base["suites"][scale]["red_ecn"]["fast"]["events_per_sec"]
            after = report["suites"][scale]["red_ecn"]["fast"]["events_per_sec"]
            assert after >= 1.15 * before, (
                f"{scale}/red_ecn fast path {after:,.0f} ev/s is not 1.15x "
                f"the PR-3 baseline {before:,.0f} ev/s"
            )
            sack = report["suites"][scale]["red_sack_recovery"]
            assert sack["speedup"] >= 1.15, (
                f"{scale}/red_sack_recovery speedup {sack['speedup']:.2f}x"
            )


class TestLiveSpeedup:
    @skip_timing_on_ci
    def test_endpoint_fastpath_speedup_live(self, capsys):
        """Re-measure the acceptance scenario on this machine."""
        fast = run_cell("dumbbell_steady", "full", True, repeats=2)
        legacy = run_cell("dumbbell_steady", "full", False, repeats=2)
        speedup = legacy["wall_seconds"] / fast["wall_seconds"]
        with capsys.disabled():
            print(
                f"\n[endpoint-fastpath] fast {fast['events_per_sec']:,.0f} "
                f"ev/s, legacy {legacy['events_per_sec']:,.0f} ev/s, "
                f"speedup {speedup:.2f}x"
            )
        assert speedup >= 1.5, (
            f"endpoint fast path only {speedup:.2f}x the legacy path"
        )


class TestRegressionGate:
    def test_check_against_baseline_flags_regressions(self):
        baseline = {
            "suites": {"smoke": {"dumbbell_steady": {"speedup": 1.6}}}
        }
        ok = {
            "suites": {"smoke": {"dumbbell_steady": {"speedup": 1.3}}}
        }
        bad = {
            "suites": {"smoke": {"dumbbell_steady": {"speedup": 1.1}}}
        }
        assert check_against_baseline(ok, baseline, tolerance=0.25) == []
        failures = check_against_baseline(bad, baseline, tolerance=0.25)
        assert len(failures) == 1
        assert "dumbbell_steady" in failures[0]

    def test_check_skips_unknown_scenarios_but_not_vacuously(self):
        baseline = {
            "suites": {
                "full": {
                    "other": {"speedup": 9.0},
                    "dumbbell_steady": {"speedup": 1.0},
                }
            }
        }
        report = {
            "suites": {
                "smoke": {"dumbbell_steady": {"speedup": 0.1}},
                "full": {"dumbbell_steady": {"speedup": 1.0}},
            }
        }
        # Baseline-only 'other' and baseline-less 'smoke' are skipped, but
        # the overlapping full/dumbbell_steady cell still gets compared.
        assert check_against_baseline(report, baseline) == []

    def test_check_fails_when_nothing_overlaps(self):
        """A gate that compared zero cells must not report a pass."""
        baseline = {"suites": {"full": {"other": {"speedup": 9.0}}}}
        report = {"suites": {"smoke": {"dumbbell_steady": {"speedup": 2.0}}}}
        failures = check_against_baseline(report, baseline)
        assert len(failures) == 1
        assert "zero cells" in failures[0]

    def test_smoke_suite_regression_vs_committed_baseline(self):
        """The CI gate, exercised in-process on the committed file."""
        with open(BENCH_FILE) as fh:
            baseline = json.load(fh)
        # The committed file compared against itself never regresses.
        assert check_against_baseline(baseline, baseline, tolerance=0.0) == []
