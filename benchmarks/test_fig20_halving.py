"""Figure 20 / Appendix A.2 bench: response to persistent congestion.

Drop every 100th packet, then every 2nd from t=10: the allowed rate must
halve within the paper's window of 3-8 round-trip times (the paper's Figure
20 shows exactly 5).
"""

from repro.experiments import fig20_halving as fig20


def test_fig20_halving(once, benchmark):
    result = once(benchmark, fig20.run)
    rtts = result.rtts_to_halve()
    print(f"\nFigure 20 reproduction: rate halves in {rtts:.1f} RTTs "
          "(paper: 5, range 3-8)")
    assert rtts is not None
    assert 3.0 <= rtts <= 8.5
    # The A.2 lower bound: with mild pre-congestion (p=0.01), halving cannot
    # happen in under ~5 RTTs.
    assert rtts >= 4.5
