"""Figure 7 bench: per-flow normalized throughput scatter at 15 Mb/s RED.

The paper's Figure 7 shows each flow of the 15 Mb/s column as a point:
means close to fair, TCP flows with visibly higher variance than TFRC
flows.
"""

import numpy as np

from repro.analysis.stats import jain_fairness_index
from repro.experiments import fig06_fairness_grid as fig06


def run_cells():
    """Two replicated 15 Mb/s cells ("typically" in the paper is a tendency
    across runs, so a single seed is too noisy to assert on)."""
    return [
        fig06.run_cell(
            link_bps=15e6, total_flows=32, queue_type="red",
            duration=80.0, seed=seed,
        )
        for seed in (0, 1)
    ]


def test_fig07_per_flow_variance(once, benchmark):
    cells = once(benchmark, run_cells)
    tcp = np.concatenate([cell.per_flow_tcp for cell in cells])
    tfrc = np.concatenate([cell.per_flow_tfrc for cell in cells])
    # Means near fair share.
    assert 0.5 < tcp.mean() < 1.5
    assert 0.5 < tfrc.mean() < 1.5
    # Paper: "Typically, the TCP flows have higher variance than the TFRC
    # flows" -- and replacing all flows with TCP "doesn't change [the
    # variance] greatly", so we assert a tendency, not a strict ordering.
    assert tcp.std() > tfrc.std() * 0.6
    # No flow is starved outright.
    assert tcp.min() > 0.05 and tfrc.min() > 0.05
    # Single-number summary: Jain's index across all flows of each type,
    # and across everything together (fairness of the whole allocation).
    jain_tcp = jain_fairness_index(tcp)
    jain_tfrc = jain_fairness_index(tfrc)
    jain_all = jain_fairness_index(np.concatenate([tcp, tfrc]))
    assert jain_all > 0.6  # the whole allocation is broadly fair
    assert jain_tfrc >= jain_tcp - 0.05  # TFRC at least as even as TCP
    print("\nFigure 7 reproduction (15 Mb/s, 32 flows, RED, 2 seeds):")
    print(f"  TCP : mean {tcp.mean():.2f} std {tcp.std():.2f} range [{tcp.min():.2f}, {tcp.max():.2f}]")
    print(f"  TFRC: mean {tfrc.mean():.2f} std {tfrc.std():.2f} range [{tfrc.min():.2f}, {tfrc.max():.2f}]")
    print(f"  Jain fairness: TCP {jain_tcp:.3f}, TFRC {jain_tfrc:.3f}, "
          f"all flows {jain_all:.3f}")
