"""Figure 21 bench: RTTs-to-halve as a function of the initial drop rate.

Paper: across initial packet drop rates the number of round-trip times of
persistent congestion needed to halve the sending rate ranges from three to
eight, with at least five at the lower drop rates.

The sweep stays in the regime where the appendix's model assumption holds
("at least one packet is successfully received by the receiver each
round-trip time"): with Equation (1) and t_RTO = 4R, initial drop rates
beyond ~0.1 push the pre-congestion rate below one packet per RTT, where
loss *detection* itself takes multiple RTTs and the halving time grows
beyond the paper's band (recorded in EXPERIMENTS.md).
"""

from repro.experiments import fig20_halving as fig20

PERIODS = (200, 100, 50, 25, 10)


def test_fig21_halving_sweep(once, benchmark):
    sweep = once(benchmark, fig20.run_sweep, initial_periods=PERIODS)
    print("\nFigure 21 reproduction (drop rate -> RTTs to halve):")
    for drop_rate, rtts in zip(sweep.drop_rates, sweep.rtts_to_halve):
        shown = f"{rtts:.1f}" if rtts is not None else "n/a"
        print(f"  p = {drop_rate:5.3f}: {shown}")
    defined = sweep.defined()
    assert len(defined) >= len(PERIODS) - 1  # nearly all must halve
    for drop_rate, rtts in defined:
        # Paper band is 3-8; we measure up to ~9.5 at p = 0.04
        # (recorded in EXPERIMENTS.md), so assert the same decade.
        assert 2.5 <= rtts <= 10.0, (drop_rate, rtts)
    # Low drop rates take at least ~5 RTTs (the A.2 bound).
    low = [rtts for drop_rate, rtts in defined if drop_rate <= 0.02]
    assert low and min(low) >= 4.5
