"""Figure 10 bench: coefficient of variation vs timescale.

Same scenario as the Figure 9 bench; asserts the paper's claim that TFRC's
send rate is smoother than TCP's "across almost any timescale that might be
important to an application".
"""

from repro.experiments import fig09_equivalence as fig09


def test_fig10_cov(once, benchmark):
    result = once(
        benchmark, fig09.run,
        runs=2, duration=60.0, measure_seconds=40.0, n_each=16,
    )
    print("\nFigure 10 reproduction (CoV by timescale):")
    print("  tau    CoV(TCP)  CoV(TFRC)")
    for tau in result.timescales:
        print(
            f"  {tau:5.1f}  {result.cov_tcp[tau][0]:8.2f}  "
            f"{result.cov_tfrc[tau][0]:9.2f}"
        )
    smoother = sum(
        result.cov_tfrc[tau][0] < result.cov_tcp[tau][0]
        for tau in result.timescales
    )
    assert smoother == len(result.timescales)
    # CoV decreases with timescale for both protocols (aggregation smooths).
    taus = result.timescales
    assert result.cov_tcp[taus[-1]][0] < result.cov_tcp[taus[0]][0]
    assert result.cov_tfrc[taus[-1]][0] < result.cov_tfrc[taus[0]][0]
